//! A simulated-annealing schedule refiner: the quality-reference
//! optimizer.
//!
//! The paper positions EAS as a fast heuristic for an NP-hard problem
//! (Sec. 4 cites Garey & Johnson). To quantify how much energy the
//! heuristic leaves on the table, this module anneals over the same
//! decision space the repair step uses — (PE assignment, per-PE order)
//! pairs re-timed exactly — with random task migrations and adjacent
//! swaps, a Metropolis acceptance rule on an energy-plus-lateness cost,
//! and geometric cooling. Warm-started from any schedule (normally the
//! EAS result), it is hundreds of times slower than EAS and serves as an
//! asymptotic quality bar in the ablation experiments, not as a
//! production scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::Platform;
use noc_schedule::{validate, Schedule, ScheduleStats};

use crate::limit::{ComputeBudget, Interrupt};
use crate::repair::RepairStats;
use crate::retime::{retime, OrderedAssignment};
use crate::scheduler::{ScheduleOutcome, Scheduler};
use crate::trace::{EventKind, TraceSink, Tracer};
use crate::{EasScheduler, SchedulerError};

/// Annealer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature as a *fraction of the initial cost* (e.g.
    /// `0.05` lets early moves worsen cost by a few percent).
    pub initial_temperature: f64,
    /// Geometric cooling factor applied per iteration (e.g. `0.9995`).
    pub cooling: f64,
    /// Cost penalty per tick of deadline tardiness, in nJ-equivalents.
    pub tardiness_penalty_nj: f64,
    /// Flat cost penalty per missed deadline, in nJ-equivalents.
    pub miss_penalty_nj: f64,
    /// Independent annealing chains, seeded `seed + i`. The chain with
    /// the lowest final cost wins (ties: lowest chain index), so the
    /// result only depends on the seeds, never on scheduling order.
    pub restarts: usize,
    /// Worker threads for running restart chains (`0` = all hardware
    /// threads). Results are identical for every value.
    pub threads: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed: 1,
            iterations: 5_000,
            initial_temperature: 0.05,
            cooling: 0.999,
            tardiness_penalty_nj: 10.0,
            miss_penalty_nj: 10_000.0,
            restarts: 1,
            threads: 1,
        }
    }
}

/// Simulated-annealing refinement of a warm-start schedule.
#[derive(Debug, Clone, Default)]
pub struct AnnealScheduler {
    config: AnnealConfig,
}

impl AnnealScheduler {
    /// Creates an annealer with the given parameters.
    #[must_use]
    pub fn new(config: AnnealConfig) -> Self {
        AnnealScheduler { config }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &AnnealConfig {
        &self.config
    }

    fn cost(&self, schedule: &Schedule, graph: &TaskGraph, platform: &Platform) -> f64 {
        let stats = ScheduleStats::compute(schedule, graph, platform);
        let misses = schedule.deadline_misses(graph);
        let tardiness: u64 = misses.iter().map(|(_, t)| t.ticks()).sum();
        stats.energy.total().as_nj()
            + misses.len() as f64 * self.config.miss_penalty_nj
            + tardiness as f64 * self.config.tardiness_penalty_nj
    }

    /// Refines `start` in place of running a scheduler from scratch.
    ///
    /// Runs [`AnnealConfig::restarts`] independent chains (seeded
    /// `seed + i`, fanned out over [`AnnealConfig::threads`] workers) and
    /// returns the best schedule found across all chains (never worse
    /// than `start` under the annealer's cost) together with the winning
    /// chain's accepted-move count. The winner is chosen by
    /// `(cost, chain index)`, so the outcome is deterministic for every
    /// thread count.
    #[must_use]
    pub fn refine(
        &self,
        start: Schedule,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> (Schedule, usize) {
        self.refine_budgeted(start, graph, platform, &ComputeBudget::unlimited())
            .expect("unlimited budget never interrupts")
    }

    /// Budgeted variant of [`refine`](AnnealScheduler::refine): the
    /// budget is polled once per chain iteration (every restart chain
    /// shares the same allowance). An interrupted refinement drops all
    /// chain state — the warm-start schedule is untouched.
    ///
    /// # Errors
    ///
    /// The [`Interrupt`] that fired in any chain.
    pub fn refine_budgeted(
        &self,
        start: Schedule,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
    ) -> Result<(Schedule, usize), Interrupt> {
        self.refine_traced(start, graph, platform, budget, &mut Tracer::off())
    }

    /// [`refine_budgeted`](AnnealScheduler::refine_budgeted) with
    /// per-chain tracing: one [`EventKind::AnnealChain`] per restart
    /// chain, emitted in chain-index order after every chain finishes —
    /// so the event stream is identical for every thread count.
    fn refine_traced(
        &self,
        start: Schedule,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
        tracer: &mut Tracer<'_>,
    ) -> Result<(Schedule, usize), Interrupt> {
        let restarts = self.config.restarts.max(1);
        if restarts == 1 {
            let (schedule, accepted, best_cost) =
                self.refine_chain(self.config.seed, &start, graph, platform, budget)?;
            if tracer.on() {
                tracer.emit(EventKind::AnnealChain {
                    chain: 0,
                    seed: self.config.seed,
                    accepted,
                    best_cost_nj: best_cost,
                });
            }
            return Ok((schedule, accepted));
        }
        let workers = noc_par::effective_threads(self.config.threads);
        let seeds: Vec<u64> = (0..restarts as u64)
            .map(|i| self.config.seed.wrapping_add(i))
            .collect();
        let chains = noc_par::par_map(workers, &seeds, |_, &seed| {
            self.refine_chain(seed, &start, graph, platform, budget)
        });
        let chains: Vec<(Schedule, usize, f64)> =
            chains.into_iter().collect::<Result<_, Interrupt>>()?;
        if tracer.on() {
            for (i, chain) in chains.iter().enumerate() {
                tracer.emit(EventKind::AnnealChain {
                    chain: i,
                    seed: seeds[i],
                    accepted: chain.1,
                    best_cost_nj: chain.2,
                });
            }
        }
        let mut win = 0;
        for (i, chain) in chains.iter().enumerate().skip(1) {
            if chain.2 < chains[win].2 {
                win = i;
            }
        }
        let (schedule, accepted, _) = chains.into_iter().nth(win).expect("winner exists");
        Ok((schedule, accepted))
    }

    /// One annealing chain: the original serial Metropolis loop, seeded
    /// explicitly. Returns `(best schedule, accepted moves, best cost)`.
    fn refine_chain(
        &self,
        seed: u64,
        start: &Schedule,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
    ) -> Result<(Schedule, usize, f64), Interrupt> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oa = OrderedAssignment::from_schedule(start, platform);
        let mut current = match retime(graph, platform, &oa) {
            Some(s) => s,
            None => return Ok((start.clone(), 0, self.cost(start, graph, platform))),
        };
        let mut current_cost = self.cost(&current, graph, platform);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut temperature = (current_cost * self.config.initial_temperature).max(1e-9);
        let mut accepted = 0usize;
        // Migration targets: only alive PEs (identical RNG stream to the
        // pre-fault code on pristine platforms, where all PEs are alive).
        let alive: Vec<PeId> = platform.alive_pes().collect();
        let pe_count = platform.tile_count();
        let task_count = graph.task_count();

        for _ in 0..self.config.iterations {
            budget.check()?;
            // Propose: 50% migration, 50% adjacent swap on one PE.
            let backup = oa.clone();
            if rng.random_bool(0.5) {
                let t = noc_ctg::task::TaskId::new(rng.random_range(0..task_count as u32));
                let dst = alive[rng.random_range(0..alive.len() as u32) as usize];
                if dst == oa.assignment[t.index()] {
                    continue;
                }
                let anchor = if oa.order[dst.index()].is_empty() {
                    0
                } else {
                    rng.random_range(0..=oa.order[dst.index()].len())
                };
                oa.migrate(t, dst, anchor);
            } else {
                let pe = rng.random_range(0..pe_count);
                let len = oa.order[pe].len();
                if len < 2 {
                    continue;
                }
                let i = rng.random_range(0..len - 1);
                let (a, b) = (oa.order[pe][i], oa.order[pe][i + 1]);
                oa.swap(a, b);
            }

            let candidate = retime(graph, platform, &oa);
            let accepted_move = match candidate {
                None => false, // ordering contradicts the DAG
                Some(cand) => {
                    let cand_cost = self.cost(&cand, graph, platform);
                    let delta = cand_cost - current_cost;
                    let take =
                        delta <= 0.0 || rng.random_range(0.0..1.0) < (-delta / temperature).exp();
                    if take {
                        current = cand;
                        current_cost = cand_cost;
                        if cand_cost < best_cost {
                            best = current.clone();
                            best_cost = cand_cost;
                        }
                    }
                    take
                }
            };
            if accepted_move {
                accepted += 1;
            } else {
                oa = backup;
            }
            temperature = (temperature * self.config.cooling).max(1e-9);
        }
        Ok((best, accepted, best_cost))
    }
}

impl Scheduler for AnnealScheduler {
    fn name(&self) -> &str {
        "anneal"
    }

    /// Runs full EAS as the warm start, then anneals.
    ///
    /// # Errors
    ///
    /// Propagates EAS errors and the final validation.
    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        self.schedule_with_budget(graph, platform, &ComputeBudget::unlimited())
    }

    fn schedule_with_budget(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        self.schedule_traced(graph, platform, budget, &mut crate::trace::NullSink)
    }

    fn schedule_traced(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
        sink: &mut dyn TraceSink,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        // The warm start traces its own budgeting/level/repair stages.
        let warm = EasScheduler::full().schedule_traced(graph, platform, budget, sink)?;
        let mut tracer = Tracer::new(sink);
        tracer.begin("anneal");
        let (schedule, _) =
            self.refine_traced(warm.schedule, graph, platform, budget, &mut tracer)?;
        tracer.poll("anneal", budget);
        tracer.end("anneal");
        tracer.begin("validate");
        let report = validate(&schedule, graph, platform)?;
        let stats = ScheduleStats::compute(&schedule, graph, platform);
        tracer.end("validate");
        Ok(ScheduleOutcome {
            schedule,
            report,
            stats,
            repair: RepairStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::prelude::*;
    use noc_platform::prelude::*;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .build()
            .unwrap()
    }

    fn small_config() -> AnnealConfig {
        AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn refinement_never_worsens_the_cost() {
        let p = platform();
        let g = MultimediaApp::AvDecoder.build(Clip::Foreman, &p).unwrap();
        let warm = EasScheduler::full().schedule(&g, &p).unwrap();
        let annealer = AnnealScheduler::new(small_config());
        let warm_cost = annealer.cost(&warm.schedule, &g, &p);
        let (refined, _) = annealer.refine(warm.schedule, &g, &p);
        let refined_cost = annealer.cost(&refined, &g, &p);
        assert!(refined_cost <= warm_cost + 1e-9);
        validate(&refined, &g, &p).expect("still valid");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let p = platform();
        let g = MultimediaApp::AvDecoder.build(Clip::Akiyo, &p).unwrap();
        let a = AnnealScheduler::new(small_config())
            .schedule(&g, &p)
            .unwrap();
        let b = AnnealScheduler::new(small_config())
            .schedule(&g, &p)
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn annealed_energy_at_most_eas_energy_when_feasible() {
        let p = platform();
        let g = MultimediaApp::AvEncoder.build(Clip::Foreman, &p).unwrap();
        let eas = EasScheduler::full().schedule(&g, &p).unwrap();
        let annealed = AnnealScheduler::new(small_config())
            .schedule(&g, &p)
            .unwrap();
        assert!(annealed.report.meets_deadlines());
        assert!(annealed.stats.energy.total().as_nj() <= eas.stats.energy.total().as_nj() + 1e-9);
    }

    #[test]
    fn scheduler_name() {
        assert_eq!(AnnealScheduler::default().name(), "anneal");
    }

    #[test]
    fn restart_chains_are_thread_count_invariant() {
        let p = platform();
        let g = MultimediaApp::AvDecoder.build(Clip::Akiyo, &p).unwrap();
        let warm = EasScheduler::full().schedule(&g, &p).unwrap().schedule;
        let cfg = AnnealConfig {
            iterations: 150,
            restarts: 4,
            ..AnnealConfig::default()
        };
        let (serial, serial_accepted) = AnnealScheduler::new(cfg).refine(warm.clone(), &g, &p);
        for threads in [2usize, 4, 8] {
            let par_cfg = AnnealConfig { threads, ..cfg };
            let (par, par_accepted) = AnnealScheduler::new(par_cfg).refine(warm.clone(), &g, &p);
            assert_eq!(par, serial, "threads {threads}");
            assert_eq!(par_accepted, serial_accepted, "threads {threads}");
        }
    }

    #[test]
    fn more_restarts_never_increase_the_cost() {
        let p = platform();
        let g = MultimediaApp::AvDecoder.build(Clip::Foreman, &p).unwrap();
        let warm = EasScheduler::full().schedule(&g, &p).unwrap().schedule;
        let one = AnnealConfig {
            iterations: 150,
            ..AnnealConfig::default()
        };
        let many = AnnealConfig {
            restarts: 3,
            threads: 2,
            ..one
        };
        let single = AnnealScheduler::new(one);
        let multi = AnnealScheduler::new(many);
        let (s1, _) = single.refine(warm.clone(), &g, &p);
        let (s3, _) = multi.refine(warm, &g, &p);
        // Chain 0 of the multi-restart run *is* the single run, so the
        // winner can only be at least as good.
        assert!(multi.cost(&s3, &g, &p) <= single.cost(&s1, &g, &p) + 1e-9);
    }
}
