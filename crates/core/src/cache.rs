//! Epoch-validated memoization of trial `F(i,k)` evaluations.
//!
//! The level scheduler recomputes the whole `ready × PEs` matrix of
//! `F(i,k)` values every round, yet a single commit only touches one PE
//! table and the link tables along the committed routes — most of the
//! matrix is unchanged from the previous round. [`TrialCache`] exploits
//! this: every `(task, PE)` cell stores the last [`Trial`] together with
//! a *resource-epoch stamp* summarizing the state of every table the
//! trial read. The [`crate::placer::Placer`] bumps a PE's epoch on every
//! committed execution slot and a link's epoch on every committed
//! reservation; since epochs are monotone non-decreasing, an unchanged
//! stamp (a sum of the relevant epochs) proves that *none* of the tables
//! the trial depends on has changed, so the cached value is exactly what
//! recomputation would produce. Hits are therefore invisible to the
//! scheduling decisions — the schedule is byte-identical with the cache
//! on or off, serial or parallel.

use crate::placer::Trial;
use crate::scheduler::CommModel;

#[derive(Debug, Clone, Copy)]
struct Entry {
    model: CommModel,
    stamp: u64,
    trial: Trial,
}

/// Per-`(task, PE)` memo of trial placements, validated by epoch stamps.
#[derive(Debug, Clone)]
pub struct TrialCache {
    pe_count: usize,
    entries: Vec<Option<Entry>>,
    hits: u64,
    misses: u64,
}

impl TrialCache {
    /// An empty cache for a `task_count × pe_count` trial matrix.
    #[must_use]
    pub fn new(task_count: usize, pe_count: usize) -> Self {
        TrialCache {
            pe_count,
            entries: vec![None; task_count * pe_count],
            hits: 0,
            misses: 0,
        }
    }

    fn slot(&self, task: usize, pe: usize) -> usize {
        task * self.pe_count + pe
    }

    /// Returns the cached trial for `(task, pe)` if one was stored under
    /// the same communication model and an identical epoch stamp.
    pub fn probe(&mut self, task: usize, pe: usize, model: CommModel, stamp: u64) -> Option<Trial> {
        let slot = self.slot(task, pe);
        match self.entries[slot] {
            Some(e) if e.model == model && e.stamp == stamp => {
                self.hits += 1;
                Some(e.trial)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `trial` for `(task, pe)` under `stamp`.
    pub fn store(&mut self, task: usize, pe: usize, model: CommModel, stamp: u64, trial: Trial) {
        let slot = self.slot(task, pe);
        self.entries[slot] = Some(Entry {
            model,
            stamp,
            trial,
        });
    }

    /// `(hits, misses)` counters since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::units::Time;

    fn trial(start: u64) -> Trial {
        Trial {
            start: Time::new(start),
            finish: Time::new(start + 10),
        }
    }

    #[test]
    fn probe_hits_only_on_matching_stamp_and_model() {
        let mut c = TrialCache::new(2, 3);
        assert_eq!(c.probe(1, 2, CommModel::Contention, 7), None);
        c.store(1, 2, CommModel::Contention, 7, trial(5));
        assert_eq!(c.probe(1, 2, CommModel::Contention, 7), Some(trial(5)));
        // A bumped epoch invalidates the entry.
        assert_eq!(c.probe(1, 2, CommModel::Contention, 8), None);
        // So does a different communication model.
        assert_eq!(c.probe(1, 2, CommModel::FixedDelay, 7), None);
        assert_eq!(c.stats(), (1, 3));
    }

    #[test]
    fn store_overwrites_previous_entry() {
        let mut c = TrialCache::new(1, 1);
        c.store(0, 0, CommModel::Contention, 1, trial(0));
        c.store(0, 0, CommModel::Contention, 2, trial(100));
        assert_eq!(c.probe(0, 0, CommModel::Contention, 1), None);
        assert_eq!(c.probe(0, 0, CommModel::Contention, 2), Some(trial(100)));
    }
}
