//! The Earliest-Deadline-First baseline scheduler.
//!
//! The paper compares EAS against "a standard Earliest Deadline First
//! (EDF) scheduler" (Sec. 6). This implementation is the natural
//! heterogeneous-NoC reading of that baseline: a non-preemptive list
//! scheduler that
//!
//! 1. prioritizes ready tasks by **effective deadline** (explicit
//!    deadlines propagated backwards through the DAG, see
//!    [`noc_ctg::analysis::effective_deadlines`]), and
//! 2. assigns the chosen task to the PE with the **earliest finish**
//!    `F(i,k)`, computed with the same contention-aware communication
//!    scheduler EAS uses — performance-driven and energy-blind.
//!
//! Using identical communication machinery keeps the Eq. 3 energy
//! comparison between EAS and EDF apples-to-apples.

use noc_ctg::analysis::effective_deadlines;
use noc_platform::tile::PeId;
use noc_platform::units::Time;

use crate::placer::Placer;
use crate::scheduler::CommModel;

/// Runs EDF list scheduling to completion, mutating `placer`.
pub fn edf_schedule(placer: &mut Placer<'_>) {
    let eff = effective_deadlines(placer.graph());
    let pes: Vec<PeId> = placer.platform().alive_pes().collect();
    while !placer.is_done() {
        // Earliest effective deadline among ready tasks (ties: task id).
        let &task = placer
            .ready_tasks()
            .iter()
            .min_by_key(|&&t| (eff[t.index()], t))
            .expect("DAG guarantees a ready task");
        // Fastest PE (ties: earlier start, then PE id).
        let mut best: Option<(Time, Time, PeId)> = None;
        for &k in &pes {
            let trial = placer.trial(task, k, CommModel::Contention);
            let key = (trial.finish, trial.start, k);
            if best.is_none_or(|b| (key.0, key.1, key.2.index()) < (b.0, b.1, b.2.index())) {
                best = Some(key);
            }
        }
        let (_, _, k) = best.expect("at least one PE");
        placer.commit(task, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_ctg::TaskGraph;
    use noc_platform::prelude::*;
    use noc_platform::units::Volume;
    use noc_schedule::validate;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    #[test]
    fn edf_picks_fastest_pe_not_cheapest() {
        let p = platform();
        let mut b = TaskGraph::builder("speed", 4);
        let t = b.add_task(
            Task::new(
                "t",
                vec![
                    Time::new(50),
                    Time::new(100),
                    Time::new(200),
                    Time::new(100),
                ],
                vec![
                    Energy::from_nj(100.0),
                    Energy::from_nj(60.0),
                    Energy::from_nj(10.0),
                    Energy::from_nj(60.0),
                ],
            )
            .with_deadline(Time::new(10_000)),
        );
        let g = b.build().unwrap();
        let mut placer = crate::placer::Placer::new(&g, &p).unwrap();
        edf_schedule(&mut placer);
        let s = placer.into_schedule();
        assert_eq!(s.task(t).pe, PeId::new(0), "EDF is performance-driven");
    }

    #[test]
    fn edf_orders_by_effective_deadline() {
        let p = platform();
        let mut b = TaskGraph::builder("order", 4);
        // Two independent tasks; the later-added one has the tighter
        // deadline and must be scheduled first (earlier start on the
        // common fastest PE).
        let loose = b.add_task(
            Task::uniform("loose", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(10_000)),
        );
        let tight = b.add_task(
            Task::uniform("tight", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(100)),
        );
        let g = b.build().unwrap();
        let mut placer = crate::placer::Placer::new(&g, &p).unwrap();
        edf_schedule(&mut placer);
        let s = placer.into_schedule();
        assert!(s.task(tight).finish <= Time::new(100), "tight deadline met");
        assert!(validate(&s, &g, &p).unwrap().meets_deadlines());
        assert_eq!(
            s.task(loose).start,
            Time::ZERO,
            "parallel PEs keep both early"
        );
    }

    #[test]
    fn edf_propagates_deadlines_to_ancestors() {
        let p = platform();
        let mut b = TaskGraph::builder("prop", 4);
        // An unconstrained feeder of a constrained sink must win against
        // an unconstrained independent task.
        let feeder = b.add_task(Task::uniform(
            "feeder",
            4,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        let free = b.add_task(Task::uniform(
            "free",
            4,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        let sink = b.add_task(
            Task::uniform("sink", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(250)),
        );
        b.add_edge(feeder, sink, Volume::from_bits(320)).unwrap();
        let g = b.build().unwrap();
        let mut placer = crate::placer::Placer::new(&g, &p).unwrap();
        edf_schedule(&mut placer);
        let s = placer.into_schedule();
        let report = validate(&s, &g, &p).unwrap();
        assert!(report.meets_deadlines());
        let _ = free;
    }

    #[test]
    fn edf_handles_chains_with_contention() {
        let p = platform();
        let mut b = TaskGraph::builder("chain", 4);
        let mut prev = None;
        for i in 0..8 {
            let t = b.add_task(Task::uniform(
                format!("t{i}"),
                4,
                Time::new(60),
                Energy::from_nj(2.0),
            ));
            if let Some(pr) = prev {
                b.add_edge(pr, t, Volume::from_bits(640)).unwrap();
            }
            prev = Some(t);
        }
        let g = b.build().unwrap();
        let mut placer = crate::placer::Placer::new(&g, &p).unwrap();
        edf_schedule(&mut placer);
        let s = placer.into_schedule();
        validate(&s, &g, &p).expect("valid");
    }
}
