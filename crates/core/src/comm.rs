//! The Fig. 3 communication scheduler.
//!
//! Given a task about to be placed on a destination PE, the scheduler
//! places each of the task's *receiving communication transactions* (the
//! paper's LCT) onto the schedule tables of its route's links:
//!
//! ```text
//! sort LCT by the finish time of its sender;
//! for each trans in LCT {
//!     path  = get_path(trans);
//!     dur   = trans.bandwidth();
//!     path.build_schedule_table();                 // merge link tables
//!     start = path.find_earliest(sender_ft, dur);  // honour contention
//!     for each link in path: link.update_schedule_table(start, dur);
//! }
//! ```
//!
//! The *data ready time* (DRT) of the task is the latest arrival among
//! its transactions (Eq. 4). Transfers that stay on one tile or carry no
//! data never enter the network and arrive at the producer's finish.

use noc_ctg::edge::EdgeId;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::Time;
use noc_platform::Platform;
use noc_schedule::{CommPlacement, ResourceTables, TaskPlacement};

use crate::scheduler::CommModel;

/// Result of scheduling one task's incoming transactions.
#[derive(Debug, Clone)]
pub struct IncomingSchedule {
    /// Latest arrival over all receiving transactions — the DRT of
    /// Eq. 4 (zero when the task has no predecessors).
    pub drt: Time,
    /// Placement per scheduled incoming edge, in LCT order.
    pub transactions: Vec<(EdgeId, CommPlacement)>,
}

/// Schedules all receiving transactions of `task` assuming it executes
/// on `dst_pe`, reserving link slots on `tables` (roll back via a
/// [`noc_schedule::resources::Mark`] for trial runs).
///
/// With [`CommModel::Contention`] each transaction starts at the
/// earliest slot where *every* link of its route is free (the paper's
/// scheduler). With [`CommModel::FixedDelay`] the network is assumed
/// idle — transactions notionally start right at the sender's finish and
/// **no link slots are reserved**; this is the naive model the paper
/// argues against and exists for the ablation study.
///
/// # Panics
///
/// Panics if any predecessor of `task` has no placement yet (callers
/// schedule in dependency order by construction).
#[must_use]
pub fn schedule_incoming(
    graph: &TaskGraph,
    platform: &Platform,
    tables: &mut ResourceTables,
    placements: &[Option<TaskPlacement>],
    task: TaskId,
    dst_pe: PeId,
    model: CommModel,
) -> IncomingSchedule {
    // LCT sorted by sender finish time (ties: edge id, for determinism).
    let mut lct: Vec<EdgeId> = graph.incoming(task).to_vec();
    lct.sort_by_key(|&e| {
        let src = graph.edge(e).src;
        let p = placements[src.index()]
            .as_ref()
            .expect("predecessor placed");
        (p.finish, e)
    });

    let mut drt = Time::ZERO;
    let mut transactions = Vec::with_capacity(lct.len());
    for e in lct {
        let edge = graph.edge(e);
        let sender = placements[edge.src.index()]
            .as_ref()
            .expect("predecessor placed");
        let src_tile = sender.pe.tile();
        let dst_tile = dst_pe.tile();
        let placement = if src_tile == dst_tile || edge.volume.is_zero() {
            CommPlacement::local(sender.finish)
        } else {
            let route = platform.route(src_tile, dst_tile);
            let duration = platform.transfer_duration(src_tile, dst_tile, edge.volume);
            let start = match model {
                CommModel::Contention => {
                    let s = tables.earliest_path_slot(route, sender.finish, duration);
                    tables.reserve_path(route, s, duration);
                    s
                }
                CommModel::FixedDelay => sender.finish,
            };
            CommPlacement::new(route.to_vec(), start, start + duration)
        };
        drt = drt.max(placement.finish);
        transactions.push((e, placement));
    }
    IncomingSchedule { drt, transactions }
}

/// The communication energy `Σ v(c) · e(r)` of `task`'s incoming data
/// edges if the task were placed on `dst_pe` — the energy the paper adds
/// to `E1`/`E2` when ranking PEs (footnote 2: sender placements are
/// already known).
///
/// # Panics
///
/// Panics if any predecessor of `task` has no placement yet.
#[must_use]
pub fn incoming_comm_energy(
    graph: &TaskGraph,
    platform: &Platform,
    placements: &[Option<TaskPlacement>],
    task: TaskId,
    dst_pe: PeId,
) -> noc_platform::units::Energy {
    graph
        .incoming(task)
        .iter()
        .map(|&e| {
            let edge = graph.edge(e);
            let sender = placements[edge.src.index()]
                .as_ref()
                .expect("predecessor placed");
            platform.transfer_energy(sender.pe.tile(), dst_pe.tile(), edge.volume)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    /// Two producers on tiles 0 and 2 feeding one consumer.
    fn fan_in_graph() -> TaskGraph {
        let mut b = TaskGraph::builder("fan", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(50), Energy::from_nj(1.0)));
        let d = b.add_task(Task::uniform("d", 4, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, d, Volume::from_bits(320)).unwrap(); // 10 ticks
        b.add_edge(c, d, Volume::from_bits(640)).unwrap(); // 20 ticks
        b.build().unwrap()
    }

    fn placements(p0: TaskPlacement, p1: TaskPlacement) -> Vec<Option<TaskPlacement>> {
        vec![Some(p0), Some(p1), None]
    }

    #[test]
    fn drt_is_latest_arrival() {
        let p = platform();
        let g = fan_in_graph();
        let mut tables = ResourceTables::new(&p);
        let placed = placements(
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
            TaskPlacement::new(PeId::new(2), Time::ZERO, Time::new(50)),
        );
        let inc = schedule_incoming(
            &g,
            &p,
            &mut tables,
            &placed,
            TaskId::new(2),
            PeId::new(3),
            CommModel::Contention,
        );
        // From tile 0 -> 3: starts at 100, 10 ticks -> 110.
        // From tile 2 -> 3: starts at 50, 20 ticks -> 70.
        assert_eq!(inc.drt, Time::new(110));
        assert_eq!(inc.transactions.len(), 2);
        // LCT order: c (finish 50) before a (finish 100).
        assert_eq!(inc.transactions[0].0, noc_ctg::edge::EdgeId::new(1));
    }

    #[test]
    fn local_and_zero_volume_arrive_instantly() {
        let p = platform();
        let mut b = TaskGraph::builder("l", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0)));
        let d = b.add_task(Task::uniform("d", 4, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, d, Volume::from_bits(320)).unwrap(); // will be local
        b.add_control_edge(c, d).unwrap(); // zero volume, remote
        let g = b.build().unwrap();
        let mut tables = ResourceTables::new(&p);
        let placed = placements(
            TaskPlacement::new(PeId::new(3), Time::ZERO, Time::new(100)),
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
        );
        let inc = schedule_incoming(
            &g,
            &p,
            &mut tables,
            &placed,
            TaskId::new(2),
            PeId::new(3),
            CommModel::Contention,
        );
        assert_eq!(inc.drt, Time::new(100));
        assert!(inc.transactions.iter().all(|(_, c)| c.is_local()));
        // Nothing reserved on any link.
        for l in 0..p.link_count() as u32 {
            assert!(tables.link_table(LinkId::new(l)).is_empty());
        }
    }

    #[test]
    fn contention_delays_second_transaction_on_shared_link() {
        let p = platform();
        // Producers on tile 0 and tile 0's neighbour... both transfers
        // share the link 0 -> 1 when going from tile 0 to tiles 1 and 3.
        let mut b = TaskGraph::builder("shared", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0)));
        let d = b.add_task(Task::uniform("d", 4, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, d, Volume::from_bits(320)).unwrap();
        b.add_edge(c, d, Volume::from_bits(320)).unwrap();
        let g = b.build().unwrap();
        let mut tables = ResourceTables::new(&p);
        // Both producers on tile 0, same finish time.
        let placed = placements(
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
        );
        let inc = schedule_incoming(
            &g,
            &p,
            &mut tables,
            &placed,
            TaskId::new(2),
            PeId::new(1),
            CommModel::Contention,
        );
        // Both use the single link 0->1 (10 ticks each): serialized.
        let starts: Vec<Time> = inc.transactions.iter().map(|(_, c)| c.start).collect();
        assert_eq!(starts, vec![Time::new(100), Time::new(110)]);
        assert_eq!(inc.drt, Time::new(120));
    }

    #[test]
    fn fixed_delay_ignores_contention_and_reserves_nothing() {
        let p = platform();
        let g = fan_in_graph();
        let mut tables = ResourceTables::new(&p);
        let mark = tables.checkpoint();
        let placed = placements(
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
        );
        let inc = schedule_incoming(
            &g,
            &p,
            &mut tables,
            &placed,
            TaskId::new(2),
            PeId::new(1),
            CommModel::FixedDelay,
        );
        // Both start at 100 even though they share the link.
        assert!(inc
            .transactions
            .iter()
            .all(|(_, c)| c.start == Time::new(100)));
        assert_eq!(mark, tables.checkpoint(), "fixed-delay must not reserve");
    }

    #[test]
    fn incoming_energy_prefers_closer_pes() {
        let p = platform();
        let g = fan_in_graph();
        let placed = placements(
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
            TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(50)),
        );
        let near = incoming_comm_energy(&g, &p, &placed, TaskId::new(2), PeId::new(0));
        let far = incoming_comm_energy(&g, &p, &placed, TaskId::new(2), PeId::new(3));
        assert!(near < far);
    }
}
