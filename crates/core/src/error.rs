use std::error::Error;
use std::fmt;

use noc_schedule::ScheduleError;

/// Errors produced by the schedulers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedulerError {
    /// The task graph's cost vectors target a different PE count than
    /// the platform provides.
    PeCountMismatch {
        /// PE count the graph's cost vectors cover.
        graph: usize,
        /// PE count of the platform.
        platform: usize,
    },
    /// Re-timing a (assignment, per-PE order) pair deadlocked: the order
    /// contradicts the dependency graph across PEs. Indicates an internal
    /// inconsistency when surfaced from a scheduler.
    RetimeDeadlock,
    /// The produced schedule failed its own validation — an internal
    /// scheduler bug surfaced as an error rather than a panic so batch
    /// experiment runs can continue.
    InvalidSchedule(ScheduleError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::PeCountMismatch { graph, platform } => write!(
                f,
                "task graph targets {graph} PEs but the platform has {platform}"
            ),
            SchedulerError::RetimeDeadlock => {
                write!(f, "per-PE execution order contradicts the dependency graph")
            }
            SchedulerError::InvalidSchedule(e) => {
                write!(f, "scheduler produced an invalid schedule: {e}")
            }
        }
    }
}

impl Error for SchedulerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedulerError::InvalidSchedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for SchedulerError {
    fn from(e: ScheduleError) -> Self {
        SchedulerError::InvalidSchedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedulerError::PeCountMismatch {
            graph: 4,
            platform: 16,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.source().is_none());
        let e = SchedulerError::from(ScheduleError::UnplacedTask(noc_ctg::task::TaskId::new(0)));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SchedulerError>();
    }
}
