use std::error::Error;
use std::fmt;

use noc_schedule::ScheduleError;

use crate::limit::Interrupt;

/// Errors produced by the schedulers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedulerError {
    /// The task graph's cost vectors target a different PE count than
    /// the platform provides.
    PeCountMismatch {
        /// PE count the graph's cost vectors cover.
        graph: usize,
        /// PE count of the platform.
        platform: usize,
    },
    /// Re-timing a (assignment, per-PE order) pair deadlocked: the order
    /// contradicts the dependency graph across PEs. Indicates an internal
    /// inconsistency when surfaced from a scheduler.
    RetimeDeadlock,
    /// The produced schedule failed its own validation — an internal
    /// scheduler bug surfaced as an error rather than a panic so batch
    /// experiment runs can continue.
    InvalidSchedule(ScheduleError),
    /// The run was cancelled through its [`CancelToken`] before a
    /// schedule was produced. No partial state escapes: re-running the
    /// same problem uninterrupted is byte-identical to a run that was
    /// never cancelled.
    ///
    /// [`CancelToken`]: crate::limit::CancelToken
    Interrupted,
    /// The [`ComputeBudget`] (wall-clock or step allowance) ran out
    /// before a schedule was produced. Callers may retry with a larger
    /// budget or fall back to a cheaper scheduler (e.g. EDF).
    ///
    /// [`ComputeBudget`]: crate::limit::ComputeBudget
    BudgetExhausted(Interrupt),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::PeCountMismatch { graph, platform } => write!(
                f,
                "task graph targets {graph} PEs but the platform has {platform}"
            ),
            SchedulerError::RetimeDeadlock => {
                write!(f, "per-PE execution order contradicts the dependency graph")
            }
            SchedulerError::InvalidSchedule(e) => {
                write!(f, "scheduler produced an invalid schedule: {e}")
            }
            SchedulerError::Interrupted => write!(f, "scheduling was cancelled"),
            SchedulerError::BudgetExhausted(cause) => {
                write!(f, "compute budget exhausted: {cause}")
            }
        }
    }
}

impl Error for SchedulerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedulerError::InvalidSchedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for SchedulerError {
    fn from(e: ScheduleError) -> Self {
        SchedulerError::InvalidSchedule(e)
    }
}

impl From<Interrupt> for SchedulerError {
    fn from(cause: Interrupt) -> Self {
        match cause {
            Interrupt::Cancelled => SchedulerError::Interrupted,
            Interrupt::WallClock | Interrupt::Steps => SchedulerError::BudgetExhausted(cause),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedulerError::PeCountMismatch {
            graph: 4,
            platform: 16,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.source().is_none());
        let e = SchedulerError::from(ScheduleError::UnplacedTask(noc_ctg::task::TaskId::new(0)));
        assert!(e.source().is_some());
    }

    #[test]
    fn interrupt_maps_to_typed_variants() {
        assert_eq!(
            SchedulerError::from(Interrupt::Cancelled),
            SchedulerError::Interrupted
        );
        assert_eq!(
            SchedulerError::from(Interrupt::Steps),
            SchedulerError::BudgetExhausted(Interrupt::Steps)
        );
        let e = SchedulerError::from(Interrupt::WallClock);
        assert!(e.to_string().contains("budget exhausted"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SchedulerError>();
    }
}
