//! Step 2 of EAS: level-based scheduling.
//!
//! Repeatedly, for every ready task `t_i` and every PE `p_k`, the
//! earliest finish `F(i,k)` is computed by trial-scheduling the task's
//! receiving transactions and the task itself (Eq. 4, tables restored
//! afterwards). Then:
//!
//! * if some task already busts its budgeted deadline
//!   (`min_F(i) >= BD_i`), the most-over-budget task is scheduled
//!   immediately on its fastest PE (urgency rule, Step 2.3);
//! * otherwise every task could still meet its budget somewhere; each
//!   task's budget-feasible PE list `L_i` is ranked by energy (execution
//!   plus incoming communication) and the task with the largest energy
//!   regret `δE = E2 − E1` — the one that would lose the most by not
//!   getting its favourite PE — is scheduled on its cheapest feasible PE
//!   (Step 2.4).

use noc_ctg::task::TaskId;
use noc_par::{effective_threads, RoundPool};
use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};
use noc_schedule::{ResourceTables, TaskPlacement};

use crate::budget::SlackBudgets;
use crate::limit::{ComputeBudget, Interrupt};
use crate::placer::{trial_eval, Placer, Trial};
use crate::scheduler::CommModel;
use crate::trace::{EventKind, Tracer};

/// Runs level-based scheduling to completion, mutating `placer` until
/// every task is placed. Serial trial evaluation (equivalent to
/// [`level_schedule_threads`] with one thread).
pub fn level_schedule(placer: &mut Placer<'_>, budgets: &SlackBudgets, model: CommModel) {
    level_schedule_budgeted(placer, budgets, model, &ComputeBudget::unlimited())
        .expect("unlimited budget never interrupts");
}

/// Like [`level_schedule`], but polls `budget` at every round boundary
/// (one placement committed per round) and stops early when it runs
/// out. On interrupt the placer holds only fully committed placements —
/// discarding it leaves no observable state, and an uninterrupted rerun
/// of the same problem is byte-identical.
///
/// # Errors
///
/// The [`Interrupt`] that fired.
pub fn level_schedule_budgeted(
    placer: &mut Placer<'_>,
    budgets: &SlackBudgets,
    model: CommModel,
    budget: &ComputeBudget,
) -> Result<(), Interrupt> {
    level_schedule_serial_traced(placer, budgets, model, budget, &mut Tracer::off())
}

/// Serial trial evaluation with tracing: the shared backend of
/// [`level_schedule_budgeted`] and the one-worker fast path of
/// [`level_schedule_threads_budgeted`].
fn level_schedule_serial_traced(
    placer: &mut Placer<'_>,
    budgets: &SlackBudgets,
    model: CommModel,
    budget: &ComputeBudget,
    tracer: &mut Tracer<'_>,
) -> Result<(), Interrupt> {
    level_loop(placer, budgets, budget, tracer, |placer, jobs| {
        jobs.iter()
            .map(|&(t, k)| match placer.cache_probe(t, k, model) {
                Some(trial) => (trial, true),
                None => {
                    let trial = placer.trial(t, k, model);
                    placer.cache_store(t, k, model, trial);
                    (trial, false)
                }
            })
            .collect()
    })
}

/// Read-only snapshot handed to the trial workers for one round: the
/// placer's resource tables and placements as of the round start. Each
/// worker clones the tables once and checkpoints/rolls back per trial,
/// exactly like the serial path, so per-job results are bit-identical.
struct TrialCtx {
    tables: ResourceTables,
    placements: Vec<Option<TaskPlacement>>,
    model: CommModel,
}

/// Like [`level_schedule`], but fans the per-round `F(i,k)` matrix out
/// over `threads` persistent workers (`0` = all hardware threads).
///
/// Determinism is a hard invariant: jobs are evaluated against an
/// immutable snapshot of the round's tables, results are reduced in
/// fixed `(task, PE)` index order, and the trial cache only returns
/// values that recomputation would reproduce — so the resulting schedule
/// is byte-identical to the serial one for every thread count.
pub fn level_schedule_threads(
    placer: &mut Placer<'_>,
    budgets: &SlackBudgets,
    model: CommModel,
    threads: usize,
) {
    level_schedule_threads_budgeted(
        placer,
        budgets,
        model,
        threads,
        &ComputeBudget::unlimited(),
        &mut Tracer::off(),
    )
    .expect("unlimited budget never interrupts");
}

/// Budgeted variant of [`level_schedule_threads`]: same determinism
/// contract, plus a [`ComputeBudget`] poll at every round boundary and
/// decision tracing into `tracer` (pass [`Tracer::off`] when untraced).
///
/// Trace events are emitted only from the round loop, after the
/// deterministic `(task, PE)` reduction — workers never record — so the
/// logical event stream is identical for every thread count.
///
/// # Errors
///
/// The [`Interrupt`] that fired.
pub fn level_schedule_threads_budgeted(
    placer: &mut Placer<'_>,
    budgets: &SlackBudgets,
    model: CommModel,
    threads: usize,
    budget: &ComputeBudget,
    tracer: &mut Tracer<'_>,
) -> Result<(), Interrupt> {
    let workers = effective_threads(threads);
    if workers <= 1 {
        return level_schedule_serial_traced(placer, budgets, model, budget, tracer);
    }
    let graph = placer.graph();
    let platform = placer.platform();
    std::thread::scope(|scope| {
        let pool: RoundPool<'_, TrialCtx, (TaskId, PeId), Trial> = RoundPool::new(
            scope,
            workers,
            move |ctx: &TrialCtx, jobs: &[(TaskId, PeId)]| {
                let mut tables = ctx.tables.clone();
                jobs.iter()
                    .map(|&(t, k)| {
                        trial_eval(
                            graph,
                            platform,
                            &mut tables,
                            &ctx.placements,
                            t,
                            k,
                            ctx.model,
                        )
                    })
                    .collect()
            },
        );
        level_loop(placer, budgets, budget, tracer, |placer, jobs| {
            // Cache hits are resolved inline; only stale cells go to the
            // pool, and their fresh values re-enter the cache. Hit/miss
            // flags depend only on committed epochs, not on worker
            // timing, so they are identical for every thread count.
            let mut out: Vec<Option<(Trial, bool)>> = jobs
                .iter()
                .map(|&(t, k)| placer.cache_probe(t, k, model).map(|trial| (trial, true)))
                .collect();
            let missing: Vec<(TaskId, PeId)> = jobs
                .iter()
                .zip(&out)
                .filter_map(|(&job, slot)| slot.is_none().then_some(job))
                .collect();
            if !missing.is_empty() {
                let ctx = TrialCtx {
                    tables: placer.tables().clone(),
                    placements: placer.placements().to_vec(),
                    model,
                };
                let fresh = pool.run_round(ctx, missing.clone());
                let mut fresh = fresh.into_iter().zip(missing);
                for slot in &mut out {
                    if slot.is_none() {
                        let (trial, (t, k)) = fresh.next().expect("one result per miss");
                        placer.cache_store(t, k, model, trial);
                        *slot = Some((trial, false));
                    }
                }
            }
            out.into_iter()
                .map(|slot| slot.expect("every job filled"))
                .collect()
        })
    })
}

/// The round loop shared by the serial and parallel entry points:
/// `eval_round` must return one ([`Trial`], cache-hit) pair per
/// `(task, PE)` job, in job order — everything downstream (urgency,
/// energy regret, commits, trace emission) is common code, which is
/// what makes the two paths bit-identical.
///
/// The budget is polled once per round, *before* any trial of the round
/// runs: an interrupt can therefore only land between fully committed
/// placements, never mid-commit.
fn level_loop<F>(
    placer: &mut Placer<'_>,
    budgets: &SlackBudgets,
    budget: &ComputeBudget,
    tracer: &mut Tracer<'_>,
    mut eval_round: F,
) -> Result<(), Interrupt>
where
    F: FnMut(&mut Placer<'_>, &[(TaskId, PeId)]) -> Vec<(Trial, bool)>,
{
    // Candidate PEs: dead ones (platform faults) are masked out.
    let pes: Vec<PeId> = placer.platform().alive_pes().collect();
    let mut round = 0usize;
    while !placer.is_done() {
        budget.check()?;
        let ready: Vec<TaskId> = placer.ready_tasks().to_vec();
        debug_assert!(!ready.is_empty(), "DAG guarantees progress");

        let span = tracer.on().then(|| format!("level:{round}"));
        if let Some(span) = &span {
            tracer.begin(span);
        }
        round += 1;

        // F(i,k) for the whole ready level, task-major in PE order.
        let jobs: Vec<(TaskId, PeId)> = ready
            .iter()
            .flat_map(|&t| pes.iter().map(move |&k| (t, k)))
            .collect();
        let trials = eval_round(placer, &jobs);
        debug_assert_eq!(trials.len(), jobs.len(), "one trial per job");
        if tracer.on() {
            for (&(t, k), &(trial, cache_hit)) in jobs.iter().zip(&trials) {
                tracer.emit(EventKind::Trial {
                    task: t.index(),
                    pe: k.index(),
                    start: trial.start.ticks(),
                    finish: trial.finish.ticks(),
                    cache_hit,
                });
            }
        }
        let finishes: Vec<Vec<Time>> = trials
            .chunks(pes.len())
            .map(|row| row.iter().map(|(t, _)| t.finish).collect())
            .collect();

        // Urgency rule: schedule the most-over-budget task ASAP.
        let mut urgent: Option<(usize, Time)> = None; // (ready idx, excess)
        for (i, &t) in ready.iter().enumerate() {
            let bd = budgets.budgeted_deadline(t);
            if bd.is_infinite() {
                continue;
            }
            let min_f = *finishes[i].iter().min().expect("at least one PE");
            if min_f >= bd {
                let excess = min_f - bd;
                if urgent.is_none_or(|(_, e)| excess > e) {
                    urgent = Some((i, excess));
                }
            }
        }
        if let Some((i, excess)) = urgent {
            let t = ready[i];
            let k = best_finish_pe(placer, &pes, &finishes[i], t);
            if tracer.on() {
                let j = pes.iter().position(|&p| p == k).expect("pe in list");
                let bd = budgets.budgeted_deadline(t);
                tracer.emit(EventKind::Select {
                    task: t.index(),
                    pe: k.index(),
                    rule: "urgency",
                    excess_ticks: Some(excess.ticks()),
                    regret_nj: None,
                    feasible: finishes[i].iter().filter(|&&f| f <= bd).count(),
                    energy_nj: placer.energy_for(t, k).as_nj(),
                    start: trials[i * pes.len() + j].0.start.ticks(),
                    finish: finishes[i][j].ticks(),
                });
            }
            placer.commit_traced(t, k, tracer);
            if let Some(span) = &span {
                tracer.end(span);
            }
            continue;
        }

        // Energy-regret rule: δE = E2 − E1 over the budget-feasible PEs.
        let mut best: Option<(usize, f64, PeId)> = None; // (ready idx, δE, E1's PE)
        for (i, &t) in ready.iter().enumerate() {
            let bd = budgets.budgeted_deadline(t);
            let mut e1: Option<(Energy, Time, PeId)> = None;
            let mut e2: Option<Energy> = None;
            for (j, &k) in pes.iter().enumerate() {
                if finishes[i][j] > bd {
                    continue; // not budget-feasible
                }
                let e = placer.energy_for(t, k);
                match e1 {
                    None => e1 = Some((e, finishes[i][j], k)),
                    Some((be, bf, bk)) => {
                        if (e, finishes[i][j], k.index()) < (be, bf, bk.index()) {
                            e2 = Some(be);
                            e1 = Some((e, finishes[i][j], k));
                        } else if e2.is_none_or(|s| e < s) {
                            e2 = Some(e);
                        }
                    }
                }
            }
            let (e1, _, k1) = match e1 {
                Some(v) => (v.0, v.1, v.2),
                // All PEs bust the budget, yet the urgency rule did not
                // fire: only possible when min_F == BD triggers urgency
                // first, so this branch is unreachable for finite BD; for
                // safety fall back to the fastest PE.
                None => {
                    let k = best_finish_pe(placer, &pes, &finishes[i], t);
                    (
                        placer.energy_for(t, k),
                        finishes[i][pes.iter().position(|&p| p == k).expect("pe in list")],
                        k,
                    )
                }
            };
            let delta = match e2 {
                Some(e2) => (e2 - e1).as_nj(),
                None => f64::INFINITY, // single feasible PE: must take it now
            };
            if best.is_none_or(|(_, d, _)| delta > d) {
                best = Some((i, delta, k1));
            }
        }
        let (i, delta, k) = best.expect("nonempty ready list");
        let t = ready[i];
        if tracer.on() {
            let j = pes.iter().position(|&p| p == k).expect("pe in list");
            let bd = budgets.budgeted_deadline(t);
            tracer.emit(EventKind::Select {
                task: t.index(),
                pe: k.index(),
                rule: "regret",
                excess_ticks: None,
                regret_nj: delta.is_finite().then_some(delta),
                feasible: finishes[i].iter().filter(|&&f| f <= bd).count(),
                energy_nj: placer.energy_for(t, k).as_nj(),
                start: trials[i * pes.len() + j].0.start.ticks(),
                finish: finishes[i][j].ticks(),
            });
        }
        placer.commit_traced(t, k, tracer);
        if let Some(span) = &span {
            tracer.end(span);
        }
    }
    Ok(())
}

/// The PE giving the earliest finish (ties: lower energy, then lower id).
fn best_finish_pe(placer: &Placer<'_>, pes: &[PeId], finishes: &[Time], t: TaskId) -> PeId {
    let mut best = (finishes[0], placer.energy_for(t, pes[0]), pes[0]);
    for (j, &k) in pes.iter().enumerate().skip(1) {
        let cand = (finishes[j], placer.energy_for(t, k), k);
        if (cand.0, cand.1, cand.2.index()) < (best.0, best.1, best.2.index()) {
            best = cand;
        }
    }
    best.2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::WeightFunction;
    use noc_ctg::task::Task;
    use noc_ctg::TaskGraph;
    use noc_platform::prelude::*;
    use noc_platform::units::Volume;
    use noc_schedule::validate;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    /// One task, cheap on PE2, fast on PE0, loose deadline: the energy
    /// rule must pick the cheap PE.
    #[test]
    fn loose_deadline_prefers_cheap_pe() {
        let p = platform();
        let mut b = TaskGraph::builder("cheap", 4);
        let t = b.add_task(
            Task::new(
                "t",
                vec![
                    Time::new(50),
                    Time::new(100),
                    Time::new(200),
                    Time::new(100),
                ],
                vec![
                    Energy::from_nj(100.0),
                    Energy::from_nj(60.0),
                    Energy::from_nj(10.0),
                    Energy::from_nj(60.0),
                ],
            )
            .with_deadline(Time::new(1_000)),
        );
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let mut placer = Placer::new(&g, &p).unwrap();
        level_schedule(&mut placer, &budgets, CommModel::Contention);
        let s = placer.into_schedule();
        assert_eq!(s.task(t).pe, PeId::new(2));
        assert!(validate(&s, &g, &p).unwrap().meets_deadlines());
    }

    /// Same task with a deadline only the fast PE can meet: the urgency /
    /// feasibility machinery must pick the fast PE.
    #[test]
    fn tight_deadline_forces_fast_pe() {
        let p = platform();
        let mut b = TaskGraph::builder("tight", 4);
        let t = b.add_task(
            Task::new(
                "t",
                vec![
                    Time::new(50),
                    Time::new(100),
                    Time::new(200),
                    Time::new(100),
                ],
                vec![
                    Energy::from_nj(100.0),
                    Energy::from_nj(60.0),
                    Energy::from_nj(10.0),
                    Energy::from_nj(60.0),
                ],
            )
            .with_deadline(Time::new(60)),
        );
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let mut placer = Placer::new(&g, &p).unwrap();
        level_schedule(&mut placer, &budgets, CommModel::Contention);
        let s = placer.into_schedule();
        assert_eq!(s.task(t).pe, PeId::new(0));
        assert!(validate(&s, &g, &p).unwrap().meets_deadlines());
    }

    /// A diamond with remote data: the result must always be a valid
    /// schedule (dependencies, link compatibility) whatever the choices.
    #[test]
    fn diamond_schedule_is_structurally_valid() {
        let p = platform();
        let mut b = TaskGraph::builder("diamond", 4);
        let mk = |n: &str| Task::uniform(n, 4, Time::new(100), Energy::from_nj(10.0));
        let a = b.add_task(mk("a"));
        let x = b.add_task(mk("x"));
        let y = b.add_task(mk("y"));
        let d = b.add_task(mk("d").with_deadline(Time::new(5_000)));
        b.add_edge(a, x, Volume::from_bits(640)).unwrap();
        b.add_edge(a, y, Volume::from_bits(640)).unwrap();
        b.add_edge(x, d, Volume::from_bits(640)).unwrap();
        b.add_edge(y, d, Volume::from_bits(640)).unwrap();
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let mut placer = Placer::new(&g, &p).unwrap();
        level_schedule(&mut placer, &budgets, CommModel::Contention);
        let s = placer.into_schedule();
        let report = validate(&s, &g, &p).expect("structurally valid");
        assert!(report.meets_deadlines());
    }

    /// Two urgent tasks: the one further over its budget is scheduled
    /// first (largest `min_F - BD`, Step 2.3).
    #[test]
    fn most_over_budget_task_goes_first() {
        let p = platform();
        let mut b = TaskGraph::builder("urgent", 4);
        // Both impossible budgets; `worse` exceeds its budget by more.
        let slightly = b.add_task(
            Task::uniform("slightly", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(90)),
        );
        let worse = b.add_task(
            Task::uniform("worse", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(10)),
        );
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let mut placer = Placer::new(&g, &p).unwrap();
        level_schedule(&mut placer, &budgets, CommModel::Contention);
        let s = placer.into_schedule();
        // Both start at 0 on different PEs, but `worse` must have been
        // committed first: with identical costs it gets the lowest
        // finish-optimal PE id.
        assert!(s.task(worse).pe.index() <= s.task(slightly).pe.index());
        assert_eq!(s.task(worse).start, Time::ZERO);
    }

    /// The parallel scheduler must commit the exact same placements as
    /// the serial one for every thread count (hard determinism).
    #[test]
    fn parallel_level_schedule_is_bit_identical_to_serial() {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .pe_mix(PeCatalog::date04().cycle_mix())
            .build()
            .unwrap();
        for seed in [0u64, 3, 9] {
            let g = noc_ctg::prelude::TgffGenerator::new(noc_ctg::prelude::TgffConfig::small(seed))
                .generate(&p)
                .unwrap();
            let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
            let mut serial = Placer::new(&g, &p).unwrap();
            level_schedule(&mut serial, &budgets, CommModel::Contention);
            let reference = serial.into_schedule();
            for threads in [2usize, 3, 8] {
                let mut par = Placer::new(&g, &p).unwrap();
                level_schedule_threads(&mut par, &budgets, CommModel::Contention, threads);
                assert_eq!(
                    par.into_schedule(),
                    reference,
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    /// With zero heterogeneity and no deadlines, the energy rule ties on
    /// energy everywhere; scheduling must still terminate and validate.
    #[test]
    fn homogeneous_graph_terminates() {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .pes(PeCatalog::homogeneous().mix_for(4))
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("homo", 4);
        let mut prev: Option<TaskId> = None;
        for i in 0..6 {
            let t = b.add_task(Task::uniform(
                format!("t{i}"),
                4,
                Time::new(50),
                Energy::from_nj(5.0),
            ));
            if let Some(pr) = prev {
                b.add_edge(pr, t, Volume::from_bits(320)).unwrap();
            }
            prev = Some(t);
        }
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let mut placer = Placer::new(&g, &p).unwrap();
        level_schedule(&mut placer, &budgets, CommModel::Contention);
        let s = placer.into_schedule();
        validate(&s, &g, &p).expect("valid");
        // A chain on identical PEs should stay local: zero comm cost.
        let stats = noc_schedule::ScheduleStats::compute(&s, &g, &p);
        assert_eq!(stats.avg_hops_per_packet, 1.0);
    }
}
