//! Deterministic re-timing of a fixed (assignment, per-PE order) pair.
//!
//! The search-and-repair moves (Step 3) change *where* tasks run (GTM)
//! or *in which order* they run on one PE (LTS), never the exact start
//! times — those are recomputed here by a list re-timing pass that
//! replays the Fig. 3 communication scheduler, so every candidate move is
//! evaluated on exact, contention-aware timing.

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::Time;
use noc_platform::Platform;
use noc_schedule::{CommPlacement, ResourceTables, Schedule, TaskPlacement};

use crate::comm::schedule_incoming;
use crate::scheduler::CommModel;

/// A schedule stripped to its decisions: per-task PE assignment and
/// per-PE execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedAssignment {
    /// `assignment[t]` — the PE of task `t`.
    pub assignment: Vec<PeId>,
    /// `order[k]` — tasks of PE `k` in execution order.
    pub order: Vec<Vec<TaskId>>,
}

impl OrderedAssignment {
    /// Extracts the decisions of an existing schedule.
    #[must_use]
    pub fn from_schedule(schedule: &Schedule, platform: &Platform) -> Self {
        let assignment: Vec<PeId> = schedule.task_placements().iter().map(|p| p.pe).collect();
        let order: Vec<Vec<TaskId>> = platform.pes().map(|pe| schedule.tasks_on(pe)).collect();
        OrderedAssignment { assignment, order }
    }

    /// Position of `t` within its PE's order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not in its assigned PE's order (corrupt state).
    #[must_use]
    pub fn position(&self, t: TaskId) -> usize {
        let pe = self.assignment[t.index()];
        self.order[pe.index()]
            .iter()
            .position(|&x| x == t)
            .expect("task present in its PE order")
    }

    /// Swaps the execution order of two tasks on the same PE (an LTS
    /// move).
    ///
    /// # Panics
    ///
    /// Panics if the tasks are assigned to different PEs.
    pub fn swap(&mut self, a: TaskId, b: TaskId) {
        let pe = self.assignment[a.index()];
        assert_eq!(pe, self.assignment[b.index()], "LTS swaps within one PE");
        let ia = self.position(a);
        let ib = self.position(b);
        self.order[pe.index()].swap(ia, ib);
    }

    /// Moves `t` to `dst` (a GTM move), inserting it into `dst`'s order
    /// before the first task currently ordered after `anchor_start`
    /// (pass the task's previous start time to keep the global shape).
    pub fn migrate(&mut self, t: TaskId, dst: PeId, anchor: usize) {
        let src = self.assignment[t.index()];
        let pos = self.position(t);
        self.order[src.index()].remove(pos);
        self.assignment[t.index()] = dst;
        let at = anchor.min(self.order[dst.index()].len());
        self.order[dst.index()].insert(at, t);
    }
}

/// Recomputes exact start/finish times for `oa`, replaying communication
/// scheduling in dependency order while honouring each PE's fixed
/// execution order.
///
/// Returns `None` if the order contradicts the dependency graph across
/// PEs (e.g. PE0 wants `a` before `b`, but `a` transitively depends on a
/// task queued after `b` elsewhere) — such candidate moves are simply
/// rejected by the repair loop.
#[must_use]
pub fn retime(graph: &TaskGraph, platform: &Platform, oa: &OrderedAssignment) -> Option<Schedule> {
    let n = graph.task_count();
    let mut tables = ResourceTables::new(platform);
    let mut placements: Vec<Option<TaskPlacement>> = vec![None; n];
    let mut comms: Vec<Option<CommPlacement>> = vec![None; graph.edge_count()];
    let mut unplaced_preds: Vec<usize> =
        graph.task_ids().map(|t| graph.incoming(t).len()).collect();
    let mut ptr = vec![0usize; oa.order.len()];
    let mut pe_avail = vec![Time::ZERO; oa.order.len()];
    let mut placed = 0usize;

    while placed < n {
        let mut progress = false;
        for pe_idx in 0..oa.order.len() {
            while ptr[pe_idx] < oa.order[pe_idx].len() {
                let t = oa.order[pe_idx][ptr[pe_idx]];
                if unplaced_preds[t.index()] > 0 {
                    break;
                }
                let pe = PeId::new(pe_idx as u32);
                let incoming = schedule_incoming(
                    graph,
                    platform,
                    &mut tables,
                    &placements,
                    t,
                    pe,
                    CommModel::Contention,
                );
                for (e, placement) in incoming.transactions {
                    comms[e.index()] = Some(placement);
                }
                let exec = graph.task(t).exec_time(pe);
                let start = incoming.drt.max(pe_avail[pe_idx]);
                pe_avail[pe_idx] = start + exec;
                placements[t.index()] = Some(TaskPlacement::new(pe, start, start + exec));
                placed += 1;
                progress = true;
                ptr[pe_idx] += 1;
                for s in graph.successors(t) {
                    unplaced_preds[s.index()] -= 1;
                }
            }
        }
        if !progress {
            return None; // cross-PE ordering deadlock
        }
    }

    let tasks = placements.into_iter().map(|p| p.expect("placed")).collect();
    let comms = comms.into_iter().map(|c| c.expect("placed")).collect();
    Some(Schedule::new(tasks, comms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};
    use noc_schedule::validate;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    /// a -> c, plus independent x; all uniform 100 ticks.
    fn graph() -> TaskGraph {
        let mut b = TaskGraph::builder("g", 4);
        let mk = |n: &str| Task::uniform(n, 4, Time::new(100), Energy::from_nj(1.0));
        let a = b.add_task(mk("a"));
        let c = b.add_task(mk("c"));
        let _x = b.add_task(mk("x"));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    fn oa(assignment: &[u32], order: &[&[u32]]) -> OrderedAssignment {
        OrderedAssignment {
            assignment: assignment.iter().map(|&k| PeId::new(k)).collect(),
            order: order
                .iter()
                .map(|q| q.iter().map(|&t| TaskId::new(t)).collect())
                .collect(),
        }
    }

    #[test]
    fn retime_produces_valid_schedule() {
        let p = platform();
        let g = graph();
        // a and x on PE0 (a first), c on PE1.
        let s = retime(&g, &p, &oa(&[0, 1, 0], &[&[0, 2], &[1], &[], &[]])).expect("feasible");
        let report = validate(&s, &g, &p).expect("valid");
        assert_eq!(report.makespan, Time::new(210)); // a 0-100, comm 100-110, c 110-210
        assert_eq!(s.task(TaskId::new(2)).start, Time::new(100)); // x after a on PE0
    }

    #[test]
    fn order_matters() {
        let p = platform();
        let g = graph();
        // x before a on PE0 delays the chain.
        let s = retime(&g, &p, &oa(&[0, 1, 0], &[&[2, 0], &[1], &[], &[]])).expect("feasible");
        assert_eq!(s.task(TaskId::new(0)).start, Time::new(100));
        assert_eq!(s.task(TaskId::new(1)).start, Time::new(210));
    }

    #[test]
    fn cross_pe_deadlock_returns_none() {
        let p = platform();
        // a -> c with c queued *before* a's co-resident dependent chain:
        // c on PE1 first, but PE1's queue also holds a's predecessor...
        // Construct: a on PE0, c on PE1; PE1 queue = [c_blocker, ...] where
        // c_blocker depends on c... simplest: chain a -> c and put both on
        // PE0 with c queued first.
        let g = graph();
        assert!(retime(&g, &p, &oa(&[0, 0, 1], &[&[1, 0], &[2], &[], &[]])).is_none());
    }

    #[test]
    fn round_trip_from_schedule_is_stable() {
        let p = platform();
        let g = graph();
        let oa0 = oa(&[0, 1, 0], &[&[0, 2], &[1], &[], &[]]);
        let s1 = retime(&g, &p, &oa0).unwrap();
        let oa1 = OrderedAssignment::from_schedule(&s1, &p);
        assert_eq!(oa0, oa1);
        let s2 = retime(&g, &p, &oa1).unwrap();
        assert_eq!(s1, s2, "retime must be a fixpoint on its own output");
    }

    #[test]
    fn swap_and_migrate_update_state() {
        let p = platform();
        let g = graph();
        let mut oa0 = oa(&[0, 1, 0], &[&[0, 2], &[1], &[], &[]]);
        oa0.swap(TaskId::new(0), TaskId::new(2));
        assert_eq!(oa0.order[0], vec![TaskId::new(2), TaskId::new(0)]);
        oa0.migrate(TaskId::new(2), PeId::new(3), 0);
        assert_eq!(oa0.assignment[2], PeId::new(3));
        assert_eq!(oa0.order[0], vec![TaskId::new(0)]);
        assert_eq!(oa0.order[3], vec![TaskId::new(2)]);
        let s = retime(&g, &p, &oa0).expect("feasible");
        validate(&s, &g, &p).expect("valid");
    }
}
