//! Dynamic-Level Scheduling (DLS) baseline.
//!
//! Sih & Lee's compile-time heuristic for interconnection-constrained
//! heterogeneous processors (IEEE TPDS 1993) is the second related-work
//! baseline the paper discusses (its ref. \[10\]): performance-driven like
//! EDF, but *communication-aware* in its priority function. At every
//! step it picks the (ready task, PE) pair maximizing the **dynamic
//! level**
//!
//! ```text
//! DL(t, p) = SL(t) − max(DA(t, p), TF(p)) + Δ(t, p)
//! ```
//!
//! where `SL(t)` is the static level (longest mean-exec path from `t` to
//! any sink — how much work still hangs below the task), `DA(t, p)` the
//! data-available time on `p` (our contention-aware DRT), `TF(p)` the
//! PE's free time, and `Δ(t, p) = M_t − r_t^p` rewards PEs that execute
//! the task faster than average.
//!
//! Comparing EAS to *both* EDF and DLS shows the energy gap is not an
//! artifact of a weak baseline: DLS produces shorter makespans than EDF
//! on communication-heavy graphs yet remains energy-blind.

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;

use crate::placer::Placer;
use crate::scheduler::CommModel;

/// Static levels: longest mean-execution path from each task to a sink,
/// inclusive of the task itself.
#[must_use]
pub fn static_levels(graph: &TaskGraph) -> Vec<f64> {
    let mut level = vec![0.0f64; graph.task_count()];
    for &t in graph.topological_order().iter().rev() {
        let below = graph
            .successors(t)
            .map(|s| level[s.index()])
            .fold(0.0f64, f64::max);
        level[t.index()] = below + graph.task(t).mean_exec_time();
    }
    level
}

/// Runs DLS list scheduling to completion, mutating `placer`.
pub fn dls_schedule(placer: &mut Placer<'_>) {
    let levels = static_levels(placer.graph());
    let pes: Vec<PeId> = placer.platform().alive_pes().collect();
    let means: Vec<f64> = {
        let graph = placer.graph();
        graph
            .task_ids()
            .map(|t| graph.task(t).mean_exec_time())
            .collect()
    };

    while !placer.is_done() {
        let ready: Vec<TaskId> = placer.ready_tasks().to_vec();
        let mut best: Option<(f64, TaskId, PeId)> = None;
        for &t in &ready {
            for &k in &pes {
                let trial = placer.trial(t, k, CommModel::Contention);
                let exec = placer.graph().task(t).exec_time(k).as_f64();
                let start = trial.start.as_f64();
                let delta = means[t.index()] - exec;
                let dl = levels[t.index()] - start + delta;
                let better = match best {
                    None => true,
                    // Ties: lower task id, then lower PE id (determinism).
                    Some((b, bt, bk)) => {
                        dl > b + 1e-9
                            || ((dl - b).abs() <= 1e-9 && (t, k.index()) < (bt, bk.index()))
                    }
                };
                if better {
                    best = Some((dl, t, k));
                }
            }
        }
        let (_, t, k) = best.expect("nonempty ready list");
        placer.commit(t, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Time, Volume};
    use noc_schedule::validate;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    #[test]
    fn static_levels_count_work_below() {
        let mut b = TaskGraph::builder("sl", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(200), Energy::from_nj(1.0)));
        let d = b.add_task(Task::uniform("d", 4, Time::new(50), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(8)).unwrap();
        b.add_edge(a, d, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let sl = static_levels(&g);
        assert_eq!(sl[c.index()], 200.0);
        assert_eq!(sl[d.index()], 50.0);
        assert_eq!(sl[a.index()], 300.0); // via c
    }

    #[test]
    fn dls_prefers_faster_pes() {
        let p = platform();
        let mut b = TaskGraph::builder("fast", 4);
        let t = b.add_task(Task::new(
            "t",
            vec![
                Time::new(50),
                Time::new(100),
                Time::new(200),
                Time::new(100),
            ],
            vec![Energy::from_nj(9.0); 4],
        ));
        let g = b.build().unwrap();
        let mut placer = Placer::new(&g, &p).unwrap();
        dls_schedule(&mut placer);
        let s = placer.into_schedule();
        assert_eq!(s.task(t).pe, PeId::new(0));
    }

    #[test]
    fn dls_respects_dependencies_and_contention() {
        let p = platform();
        let mut b = TaskGraph::builder("dag", 4);
        let mk = |n: &str| Task::uniform(n, 4, Time::new(80), Energy::from_nj(2.0));
        let a = b.add_task(mk("a"));
        let x = b.add_task(mk("x"));
        let y = b.add_task(mk("y"));
        let z = b.add_task(mk("z"));
        b.add_edge(a, x, Volume::from_bits(640)).unwrap();
        b.add_edge(a, y, Volume::from_bits(640)).unwrap();
        b.add_edge(x, z, Volume::from_bits(640)).unwrap();
        b.add_edge(y, z, Volume::from_bits(640)).unwrap();
        let g = b.build().unwrap();
        let mut placer = Placer::new(&g, &p).unwrap();
        dls_schedule(&mut placer);
        let s = placer.into_schedule();
        validate(&s, &g, &p).expect("valid");
    }

    #[test]
    fn dls_prioritizes_critical_chains() {
        // Two ready tasks: one heads a long chain (high SL), one is a
        // leaf. DLS must schedule the chain head first.
        let p = platform();
        let mut b = TaskGraph::builder("prio", 4);
        let mk = |n: &str, t: u64| Task::uniform(n, 4, Time::new(t), Energy::from_nj(1.0));
        let head = b.add_task(mk("head", 50));
        let leaf = b.add_task(mk("leaf", 50));
        let tail1 = b.add_task(mk("tail1", 300));
        let tail2 = b.add_task(mk("tail2", 300));
        b.add_edge(head, tail1, Volume::from_bits(8)).unwrap();
        b.add_edge(tail1, tail2, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let mut placer = Placer::new(&g, &p).unwrap();
        dls_schedule(&mut placer);
        let s = placer.into_schedule();
        // head should start at 0 on the fastest PE; the leaf may share
        // t=0 on another PE but never displaces head.
        assert_eq!(s.task(head).start, Time::ZERO);
        let _ = leaf;
    }
}
