//! Shared placement machinery: ready-list tracking, trial `F(i,k)`
//! evaluation with rollback, and commit.
//!
//! Both the EAS level scheduler and the EDF baseline are list schedulers
//! over this state: they differ only in *which* ready task they pick and
//! *which* PE they give it.

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};
use noc_platform::Platform;
use noc_schedule::{CommPlacement, ResourceTables, Schedule, TaskPlacement};

use crate::cache::TrialCache;
use crate::comm::{incoming_comm_energy, schedule_incoming};
use crate::scheduler::CommModel;
use crate::trace::{EventKind, Tracer};
use crate::SchedulerError;

/// Outcome of a trial placement: when the task would run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Execution start (after DRT and PE availability).
    pub start: Time,
    /// `F(i,k)` — the earliest finish of Eq. 4.
    pub finish: Time,
}

/// Computes `F(i,k)` against arbitrary resource tables: trial-schedules
/// `task`'s incoming transactions and the task itself on `pe`, then
/// restores the tables. This is the pure evaluation kernel shared by
/// [`Placer::trial`] and the parallel trial workers in [`crate::level`],
/// which run it against per-worker *clones* of the placer's tables.
///
/// # Panics
///
/// Panics if any predecessor of `task` has no placement in `placements`.
#[must_use]
pub fn trial_eval(
    graph: &TaskGraph,
    platform: &Platform,
    tables: &mut ResourceTables,
    placements: &[Option<TaskPlacement>],
    task: TaskId,
    pe: PeId,
    model: CommModel,
) -> Trial {
    let mark = tables.checkpoint();
    let incoming = schedule_incoming(graph, platform, tables, placements, task, pe, model);
    let exec = graph.task(task).exec_time(pe);
    let start = tables.earliest_pe_slot(pe, incoming.drt, exec);
    tables.rollback(mark);
    Trial {
        start,
        finish: start + exec,
    }
}

/// Incremental scheduling state over one graph and platform.
#[derive(Debug, Clone)]
pub struct Placer<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    tables: ResourceTables,
    placements: Vec<Option<TaskPlacement>>,
    comms: Vec<Option<CommPlacement>>,
    unplaced_preds: Vec<usize>,
    ready: Vec<TaskId>,
    placed_count: usize,
    /// Commit counters per PE / per link; a trial's epoch stamp sums the
    /// counters of every table it reads, so an unchanged stamp proves
    /// the cached result is still exact (see [`TrialCache`]).
    pe_epochs: Vec<u64>,
    link_epochs: Vec<u64>,
    cache: TrialCache,
}

impl<'a> Placer<'a> {
    /// Creates the initial state: nothing placed, sources ready.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::PeCountMismatch`] if the graph's cost vectors do
    /// not target the platform's PE count.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Result<Self, SchedulerError> {
        if graph.pe_count() != platform.tile_count() {
            return Err(SchedulerError::PeCountMismatch {
                graph: graph.pe_count(),
                platform: platform.tile_count(),
            });
        }
        let unplaced_preds: Vec<usize> =
            graph.task_ids().map(|t| graph.incoming(t).len()).collect();
        let ready: Vec<TaskId> = graph
            .task_ids()
            .filter(|t| unplaced_preds[t.index()] == 0)
            .collect();
        Ok(Placer {
            graph,
            platform,
            tables: ResourceTables::new(platform),
            placements: vec![None; graph.task_count()],
            comms: vec![None; graph.edge_count()],
            unplaced_preds,
            ready,
            placed_count: 0,
            pe_epochs: vec![0; platform.tile_count()],
            link_epochs: vec![0; platform.link_count()],
            cache: TrialCache::new(graph.task_count(), platform.tile_count()),
        })
    }

    /// The Ready Tasks List (RTL): unplaced tasks whose predecessors are
    /// all placed, ascending task id.
    #[must_use]
    pub fn ready_tasks(&self) -> &[TaskId] {
        &self.ready
    }

    /// `true` once every task is placed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.placed_count == self.graph.task_count()
    }

    /// The graph being scheduled (with the placer's full borrow
    /// lifetime, so callers can hold it across mutations of `self`).
    #[must_use]
    pub fn graph(&self) -> &'a TaskGraph {
        self.graph
    }

    /// The platform being scheduled onto (full borrow lifetime, like
    /// [`graph`](Self::graph)).
    #[must_use]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The current resource tables (for snapshotting into parallel trial
    /// workers).
    #[must_use]
    pub(crate) fn tables(&self) -> &ResourceTables {
        &self.tables
    }

    /// Current (partial) placements, task-id order.
    #[must_use]
    pub fn placements(&self) -> &[Option<TaskPlacement>] {
        &self.placements
    }

    /// Computes `F(i,k)`: trial-schedules `task`'s incoming transactions
    /// and the task itself on `pe`, then restores all schedule tables
    /// (Sec. 5 Step 2.2 — "the schedule tables of both links and the PEs
    /// will be restored every time a `F(i,k)` is calculated").
    ///
    /// # Panics
    ///
    /// Panics if `task` is not ready (has unplaced predecessors).
    #[must_use]
    pub fn trial(&mut self, task: TaskId, pe: PeId, model: CommModel) -> Trial {
        trial_eval(
            self.graph,
            self.platform,
            &mut self.tables,
            &self.placements,
            task,
            pe,
            model,
        )
    }

    /// The epoch stamp of a `(task, pe)` trial: the sum of the commit
    /// counters of every schedule table the trial reads — the PE's own
    /// table plus, under [`CommModel::Contention`], each link on the
    /// routes from the task's placed senders to `pe`'s tile. Epochs are
    /// monotone, so two equal stamps imply every summand (hence every
    /// table the trial depends on) is unchanged.
    fn trial_stamp(&self, task: TaskId, pe: PeId, model: CommModel) -> u64 {
        let mut stamp = self.pe_epochs[pe.index()];
        if model == CommModel::Contention {
            let dst_tile = pe.tile();
            for &e in self.graph.incoming(task) {
                let edge = self.graph.edge(e);
                let sender = self.placements[edge.src.index()]
                    .as_ref()
                    .expect("predecessor placed");
                let src_tile = sender.pe.tile();
                if src_tile == dst_tile || edge.volume.is_zero() {
                    continue;
                }
                for l in self.platform.route(src_tile, dst_tile) {
                    stamp += self.link_epochs[l.index()];
                }
            }
        }
        stamp
    }

    /// Cached variant of [`trial`](Self::trial): returns the memoized
    /// `F(i,k)` when the epoch stamp proves it is still exact, else
    /// recomputes and stores it. Results are always identical to
    /// [`trial`](Self::trial).
    #[must_use]
    pub fn cached_trial(&mut self, task: TaskId, pe: PeId, model: CommModel) -> Trial {
        if let Some(hit) = self.cache_probe(task, pe, model) {
            return hit;
        }
        let trial = self.trial(task, pe, model);
        self.cache_store(task, pe, model, trial);
        trial
    }

    /// Probes the trial cache without computing anything on a miss.
    pub(crate) fn cache_probe(
        &mut self,
        task: TaskId,
        pe: PeId,
        model: CommModel,
    ) -> Option<Trial> {
        let stamp = self.trial_stamp(task, pe, model);
        self.cache.probe(task.index(), pe.index(), model, stamp)
    }

    /// Stores an externally computed trial (from a parallel worker that
    /// evaluated it against a snapshot of the current tables).
    pub(crate) fn cache_store(&mut self, task: TaskId, pe: PeId, model: CommModel, trial: Trial) {
        let stamp = self.trial_stamp(task, pe, model);
        self.cache
            .store(task.index(), pe.index(), model, stamp, trial);
    }

    /// `(hits, misses)` of the trial cache since construction.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Commits `task` to `pe`: permanently reserves its incoming
    /// transactions' link slots (always contention-aware, so the final
    /// artifact is valid regardless of the trial model) and its PE slot,
    /// and updates the ready list.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not ready or was already placed.
    pub fn commit(&mut self, task: TaskId, pe: PeId) {
        self.commit_traced(task, pe, &mut Tracer::off());
    }

    /// Like [`commit`](Self::commit), recording the committed link-slot
    /// reservations (one [`CommReserve`](EventKind::CommReserve) per
    /// incoming transaction, in the deterministic LCT scheduling order)
    /// under a `comm` span.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not ready or was already placed.
    pub fn commit_traced(&mut self, task: TaskId, pe: PeId, tracer: &mut Tracer<'_>) {
        let pos = self
            .ready
            .iter()
            .position(|&t| t == task)
            .expect("committed task must be in the ready list");
        self.ready.remove(pos);

        tracer.begin("comm");
        let incoming = schedule_incoming(
            self.graph,
            self.platform,
            &mut self.tables,
            &self.placements,
            task,
            pe,
            CommModel::Contention,
        );
        for (e, placement) in incoming.transactions {
            if tracer.on() {
                let src = self.graph.edge(e).src;
                let sender_finish = self.placements[src.index()]
                    .as_ref()
                    .map_or(Time::ZERO, |p| p.finish);
                tracer.emit(EventKind::CommReserve {
                    edge: e.index(),
                    src: src.index(),
                    dst: task.index(),
                    start: placement.start.ticks(),
                    finish: placement.finish.ticks(),
                    hops: placement.route.len(),
                    wait_ticks: placement.start.saturating_sub(sender_finish).ticks(),
                });
            }
            // Every committed link reservation invalidates cached trials
            // whose routes cross it (local placements have empty routes).
            for l in &placement.route {
                self.link_epochs[l.index()] += 1;
            }
            self.comms[e.index()] = Some(placement);
        }
        tracer.end("comm");
        let exec = self.graph.task(task).exec_time(pe);
        let start = self.tables.earliest_pe_slot(pe, incoming.drt, exec);
        self.tables.reserve_pe(pe, start, exec);
        self.pe_epochs[pe.index()] += 1;
        self.placements[task.index()] = Some(TaskPlacement::new(pe, start, start + exec));
        self.placed_count += 1;

        for s in self.graph.successors(task) {
            self.unplaced_preds[s.index()] -= 1;
            if self.unplaced_preds[s.index()] == 0 {
                let at = self.ready.partition_point(|&t| t < s);
                self.ready.insert(at, s);
            }
        }
    }

    /// The energy cost the paper ranks PEs by: execution energy on `pe`
    /// plus incoming communication energy given the already-placed
    /// senders (footnote 2).
    ///
    /// # Panics
    ///
    /// Panics if `task` has unplaced predecessors.
    #[must_use]
    pub fn energy_for(&self, task: TaskId, pe: PeId) -> Energy {
        self.graph.task(task).exec_energy(pe)
            + incoming_comm_energy(self.graph, self.platform, &self.placements, task, pe)
    }

    /// Finalizes into a [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if not [`is_done`](Self::is_done).
    #[must_use]
    pub fn into_schedule(self) -> Schedule {
        assert!(self.is_done(), "cannot finalize a partial schedule");
        let tasks = self
            .placements
            .into_iter()
            .map(|p| p.expect("all tasks placed"))
            .collect();
        let comms = self
            .comms
            .into_iter()
            .map(|c| c.expect("all transactions placed"))
            .collect();
        Schedule::new(tasks, comms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::Volume;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    fn chain() -> TaskGraph {
        let mut b = TaskGraph::builder("chain", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(10.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(10.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sources_start_ready() {
        let p = platform();
        let g = chain();
        let placer = Placer::new(&g, &p).unwrap();
        assert_eq!(placer.ready_tasks(), &[TaskId::new(0)]);
        assert!(!placer.is_done());
    }

    #[test]
    fn pe_count_mismatch_is_rejected() {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(3, 3))
            .build()
            .unwrap();
        let g = chain(); // 4-PE vectors
        assert!(matches!(
            Placer::new(&g, &p),
            Err(SchedulerError::PeCountMismatch {
                graph: 4,
                platform: 9
            })
        ));
    }

    #[test]
    fn trial_is_side_effect_free() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        let t1 = placer.trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        let t2 = placer.trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        assert_eq!(t1, t2, "repeated trials must see identical tables");
        assert_eq!(t1.finish, Time::new(100));
    }

    #[test]
    fn commit_updates_ready_list_and_tables() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        assert_eq!(placer.ready_tasks(), &[TaskId::new(1)]);
        // Same PE is now busy until 100: remote comm (10 ticks) then exec.
        let remote = placer.trial(TaskId::new(1), PeId::new(1), CommModel::Contention);
        assert_eq!(remote.start, Time::new(110));
        // Local placement waits for the PE to free up but needs no comm.
        let local = placer.trial(TaskId::new(1), PeId::new(0), CommModel::Contention);
        assert_eq!(local.start, Time::new(100));
    }

    #[test]
    fn full_pipeline_yields_valid_schedule() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        placer.commit(TaskId::new(1), PeId::new(3));
        assert!(placer.is_done());
        let schedule = placer.into_schedule();
        let report = noc_schedule::validate(&schedule, &g, &p).expect("valid");
        assert!(report.meets_deadlines());
        // Wormhole transfer occupies all route links for one 10-tick
        // window: the packet arrives at 110 regardless of hop count.
        assert_eq!(schedule.task(TaskId::new(1)).start, Time::new(110));
    }

    #[test]
    fn energy_for_accounts_distance() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        let near = placer.energy_for(TaskId::new(1), PeId::new(0));
        let far = placer.energy_for(TaskId::new(1), PeId::new(3));
        assert!(far > near);
    }

    #[test]
    #[should_panic(expected = "ready list")]
    fn committing_unready_task_panics() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(1), PeId::new(0));
    }

    #[test]
    fn cached_trial_hits_when_tables_are_untouched() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        let first = placer.cached_trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        let second = placer.cached_trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        assert_eq!(first, second);
        let (hits, misses) = placer.cache_stats();
        assert_eq!((hits, misses), (1, 1), "second probe must be a hit");
    }

    #[test]
    fn commit_on_a_pe_invalidates_cached_trials_for_it() {
        let p = platform();
        // Two independent tasks: both ready from the start.
        let mut b = TaskGraph::builder("indep", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0)));
        let g = b.build().unwrap();
        let mut placer = Placer::new(&g, &p).unwrap();
        let before = placer.cached_trial(c, PeId::new(0), CommModel::Contention);
        assert_eq!(before.start, Time::ZERO);
        placer.commit(a, PeId::new(0));
        // The PE epoch bump must force a recomputation that sees the
        // occupied [0, 100) slot; a stale hit would return start 0.
        let after = placer.cached_trial(c, PeId::new(0), CommModel::Contention);
        assert_eq!(after.start, Time::new(100));
    }

    #[test]
    fn committed_route_reservation_invalidates_overlapping_trials() {
        let p = platform();
        // One producer fanning out to two consumers; both transfers leave
        // tile 0 over the shared link 0 -> 1.
        let mut b = TaskGraph::builder("fan", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0)));
        let d = b.add_task(Task::uniform("d", 4, Time::new(100), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap(); // 10 ticks
        b.add_edge(a, d, Volume::from_bits(320)).unwrap(); // 10 ticks
        let g = b.build().unwrap();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(a, PeId::new(0));
        // Trial c on tile 3: route 0->1->3, comm [100, 110), start 110.
        let before = placer.cached_trial(c, PeId::new(3), CommModel::Contention);
        assert_eq!(before.start, Time::new(110));
        // Committing d on tile 1 reserves link 0->1 for [100, 110). PE 3's
        // table is untouched — only the link epoch can invalidate c's
        // cached trial, whose transfer must now wait for the link.
        placer.commit(d, PeId::new(1));
        let after = placer.cached_trial(c, PeId::new(3), CommModel::Contention);
        assert_eq!(after.start, Time::new(120));
    }
}
