//! Shared placement machinery: ready-list tracking, trial `F(i,k)`
//! evaluation with rollback, and commit.
//!
//! Both the EAS level scheduler and the EDF baseline are list schedulers
//! over this state: they differ only in *which* ready task they pick and
//! *which* PE they give it.

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};
use noc_platform::Platform;
use noc_schedule::{CommPlacement, ResourceTables, Schedule, TaskPlacement};

use crate::comm::{incoming_comm_energy, schedule_incoming};
use crate::scheduler::CommModel;
use crate::SchedulerError;

/// Outcome of a trial placement: when the task would run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Execution start (after DRT and PE availability).
    pub start: Time,
    /// `F(i,k)` — the earliest finish of Eq. 4.
    pub finish: Time,
}

/// Incremental scheduling state over one graph and platform.
#[derive(Debug, Clone)]
pub struct Placer<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    tables: ResourceTables,
    placements: Vec<Option<TaskPlacement>>,
    comms: Vec<Option<CommPlacement>>,
    unplaced_preds: Vec<usize>,
    ready: Vec<TaskId>,
    placed_count: usize,
}

impl<'a> Placer<'a> {
    /// Creates the initial state: nothing placed, sources ready.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::PeCountMismatch`] if the graph's cost vectors do
    /// not target the platform's PE count.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Result<Self, SchedulerError> {
        if graph.pe_count() != platform.tile_count() {
            return Err(SchedulerError::PeCountMismatch {
                graph: graph.pe_count(),
                platform: platform.tile_count(),
            });
        }
        let unplaced_preds: Vec<usize> =
            graph.task_ids().map(|t| graph.incoming(t).len()).collect();
        let ready: Vec<TaskId> = graph
            .task_ids()
            .filter(|t| unplaced_preds[t.index()] == 0)
            .collect();
        Ok(Placer {
            graph,
            platform,
            tables: ResourceTables::new(platform),
            placements: vec![None; graph.task_count()],
            comms: vec![None; graph.edge_count()],
            unplaced_preds,
            ready,
            placed_count: 0,
        })
    }

    /// The Ready Tasks List (RTL): unplaced tasks whose predecessors are
    /// all placed, ascending task id.
    #[must_use]
    pub fn ready_tasks(&self) -> &[TaskId] {
        &self.ready
    }

    /// `true` once every task is placed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.placed_count == self.graph.task_count()
    }

    /// The graph being scheduled.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The platform being scheduled onto.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Current (partial) placements, task-id order.
    #[must_use]
    pub fn placements(&self) -> &[Option<TaskPlacement>] {
        &self.placements
    }

    /// Computes `F(i,k)`: trial-schedules `task`'s incoming transactions
    /// and the task itself on `pe`, then restores all schedule tables
    /// (Sec. 5 Step 2.2 — "the schedule tables of both links and the PEs
    /// will be restored every time a `F(i,k)` is calculated").
    ///
    /// # Panics
    ///
    /// Panics if `task` is not ready (has unplaced predecessors).
    #[must_use]
    pub fn trial(&mut self, task: TaskId, pe: PeId, model: CommModel) -> Trial {
        let mark = self.tables.checkpoint();
        let incoming = schedule_incoming(
            self.graph,
            self.platform,
            &mut self.tables,
            &self.placements,
            task,
            pe,
            model,
        );
        let exec = self.graph.task(task).exec_time(pe);
        let start = self.tables.earliest_pe_slot(pe, incoming.drt, exec);
        self.tables.rollback(mark);
        Trial { start, finish: start + exec }
    }

    /// Commits `task` to `pe`: permanently reserves its incoming
    /// transactions' link slots (always contention-aware, so the final
    /// artifact is valid regardless of the trial model) and its PE slot,
    /// and updates the ready list.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not ready or was already placed.
    pub fn commit(&mut self, task: TaskId, pe: PeId) {
        let pos = self
            .ready
            .iter()
            .position(|&t| t == task)
            .expect("committed task must be in the ready list");
        self.ready.remove(pos);

        let incoming = schedule_incoming(
            self.graph,
            self.platform,
            &mut self.tables,
            &self.placements,
            task,
            pe,
            CommModel::Contention,
        );
        for (e, placement) in incoming.transactions {
            self.comms[e.index()] = Some(placement);
        }
        let exec = self.graph.task(task).exec_time(pe);
        let start = self.tables.earliest_pe_slot(pe, incoming.drt, exec);
        self.tables.reserve_pe(pe, start, exec);
        self.placements[task.index()] = Some(TaskPlacement::new(pe, start, start + exec));
        self.placed_count += 1;

        for s in self.graph.successors(task) {
            self.unplaced_preds[s.index()] -= 1;
            if self.unplaced_preds[s.index()] == 0 {
                let at = self.ready.partition_point(|&t| t < s);
                self.ready.insert(at, s);
            }
        }
    }

    /// The energy cost the paper ranks PEs by: execution energy on `pe`
    /// plus incoming communication energy given the already-placed
    /// senders (footnote 2).
    ///
    /// # Panics
    ///
    /// Panics if `task` has unplaced predecessors.
    #[must_use]
    pub fn energy_for(&self, task: TaskId, pe: PeId) -> Energy {
        self.graph.task(task).exec_energy(pe)
            + incoming_comm_energy(self.graph, self.platform, &self.placements, task, pe)
    }

    /// Finalizes into a [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if not [`is_done`](Self::is_done).
    #[must_use]
    pub fn into_schedule(self) -> Schedule {
        assert!(self.is_done(), "cannot finalize a partial schedule");
        let tasks = self
            .placements
            .into_iter()
            .map(|p| p.expect("all tasks placed"))
            .collect();
        let comms = self
            .comms
            .into_iter()
            .map(|c| c.expect("all transactions placed"))
            .collect();
        Schedule::new(tasks, comms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::Volume;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    fn chain() -> TaskGraph {
        let mut b = TaskGraph::builder("chain", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(10.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(10.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sources_start_ready() {
        let p = platform();
        let g = chain();
        let placer = Placer::new(&g, &p).unwrap();
        assert_eq!(placer.ready_tasks(), &[TaskId::new(0)]);
        assert!(!placer.is_done());
    }

    #[test]
    fn pe_count_mismatch_is_rejected() {
        let p = Platform::builder().topology(TopologySpec::mesh(3, 3)).build().unwrap();
        let g = chain(); // 4-PE vectors
        assert!(matches!(
            Placer::new(&g, &p),
            Err(SchedulerError::PeCountMismatch { graph: 4, platform: 9 })
        ));
    }

    #[test]
    fn trial_is_side_effect_free() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        let t1 = placer.trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        let t2 = placer.trial(TaskId::new(0), PeId::new(0), CommModel::Contention);
        assert_eq!(t1, t2, "repeated trials must see identical tables");
        assert_eq!(t1.finish, Time::new(100));
    }

    #[test]
    fn commit_updates_ready_list_and_tables() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        assert_eq!(placer.ready_tasks(), &[TaskId::new(1)]);
        // Same PE is now busy until 100: remote comm (10 ticks) then exec.
        let remote = placer.trial(TaskId::new(1), PeId::new(1), CommModel::Contention);
        assert_eq!(remote.start, Time::new(110));
        // Local placement waits for the PE to free up but needs no comm.
        let local = placer.trial(TaskId::new(1), PeId::new(0), CommModel::Contention);
        assert_eq!(local.start, Time::new(100));
    }

    #[test]
    fn full_pipeline_yields_valid_schedule() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        placer.commit(TaskId::new(1), PeId::new(3));
        assert!(placer.is_done());
        let schedule = placer.into_schedule();
        let report = noc_schedule::validate(&schedule, &g, &p).expect("valid");
        assert!(report.meets_deadlines());
        // Wormhole transfer occupies all route links for one 10-tick
        // window: the packet arrives at 110 regardless of hop count.
        assert_eq!(schedule.task(TaskId::new(1)).start, Time::new(110));
    }

    #[test]
    fn energy_for_accounts_distance() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(0), PeId::new(0));
        let near = placer.energy_for(TaskId::new(1), PeId::new(0));
        let far = placer.energy_for(TaskId::new(1), PeId::new(3));
        assert!(far > near);
    }

    #[test]
    #[should_panic(expected = "ready list")]
    fn committing_unready_task_panics() {
        let p = platform();
        let g = chain();
        let mut placer = Placer::new(&g, &p).unwrap();
        placer.commit(TaskId::new(1), PeId::new(0));
    }
}
