//! Step 1 of EAS: budget slack allocation.
//!
//! Every task gets a weight `W_ti = VAR_ei · VAR_ri` — the product of the
//! variances of its energy and execution time across PEs. Intuitively, a
//! high-weight task's placement matters a lot, so it deserves more of the
//! path slack (freedom to wait for the *right* PE). For each
//! deadline-constrained task the longest mean-execution path from a
//! source is extracted, the path slack `d − Σ M` is split across the
//! path's tasks proportionally to their weights, and cumulative sums
//! yield per-task **budgeted deadlines** (BD). The worked example of the
//! paper's Fig. 2 is reproduced in this module's tests.

use noc_ctg::analysis::GraphAnalysis;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::units::Time;

use crate::scheduler::WeightFunction;

/// Per-task budgeted deadlines (Step 1 output).
///
/// Tasks on no deadline-constrained path keep [`Time::INFINITY`]; the
/// level scheduler then never treats them as urgent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackBudgets {
    bd: Vec<Time>,
}

impl SlackBudgets {
    /// Computes budgeted deadlines for `graph` under the given weight
    /// function (the paper's is [`WeightFunction::VarEnergyTimesVarTime`]),
    /// charging only mean execution times along paths (the paper's
    /// Fig. 2 model, where communication is not budgeted).
    ///
    /// For each deadline task the longest mean-exec path is charged; a
    /// task appearing on several constrained paths keeps its tightest
    /// budget, and a final backward relaxation
    /// `BD(t) ← min(BD(t), BD(succ) − M_succ)` propagates budgets to
    /// tasks that feed constrained work over non-critical arcs.
    #[must_use]
    pub fn compute(graph: &TaskGraph, weight_fn: WeightFunction) -> Self {
        Self::compute_inner(graph, weight_fn, |_| 0.0)
    }

    /// Like [`compute`](Self::compute), but additionally charges each
    /// path arc its worst-case transfer time `ceil(v / bandwidth)`.
    ///
    /// The pure Fig. 2 model budgets away *all* slack, so the last task
    /// of a path has zero margin for its incoming transfers and the level
    /// scheduler produces frequent tiny deadline misses; reserving the
    /// transfer time up front keeps budgets honest (see `DESIGN.md` §6).
    /// `bits_per_tick` is the platform link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_tick` is not positive.
    #[must_use]
    pub fn compute_with_comm(
        graph: &TaskGraph,
        weight_fn: WeightFunction,
        bits_per_tick: f64,
    ) -> Self {
        assert!(bits_per_tick > 0.0, "bandwidth must be positive");
        Self::compute_inner(graph, weight_fn, |volume_bits| {
            (volume_bits / bits_per_tick).ceil()
        })
    }

    fn compute_inner(
        graph: &TaskGraph,
        weight_fn: WeightFunction,
        comm_cost: impl Fn(f64) -> f64,
    ) -> Self {
        let n = graph.task_count();
        let analysis = GraphAnalysis::new(graph);
        let weights: Vec<f64> = graph
            .task_ids()
            .map(|t| weight_fn.weight(graph.task(t)).max(f64::MIN_POSITIVE))
            .collect();
        let mut bd = vec![Time::INFINITY; n];

        // Transfer-time charge of the arc a -> b (0.0 in the pure model).
        let arc_cost = |a: TaskId, b: TaskId| -> f64 {
            graph
                .outgoing(a)
                .iter()
                .find(|&&e| graph.edge(e).dst == b)
                .map_or(0.0, |&e| comm_cost(graph.edge(e).volume.as_f64()))
        };

        for td in graph.deadline_tasks() {
            let deadline = graph
                .task(td)
                .deadline()
                .expect("deadline_tasks yields constrained tasks");
            let path = analysis.longest_mean_path_to(td);
            let mut path_cost: f64 = path.iter().map(|&t| graph.task(t).mean_exec_time()).sum();
            for w in path.windows(2) {
                path_cost += arc_cost(w[0], w[1]);
            }
            let slack = (deadline.as_f64() - path_cost).max(0.0);
            let weight_sum: f64 = path.iter().map(|&t| weights[t.index()]).sum();

            let mut acc = 0.0f64;
            for (i, &t) in path.iter().enumerate() {
                if i > 0 {
                    acc += arc_cost(path[i - 1], t);
                }
                acc += graph.task(t).mean_exec_time();
                acc += slack * weights[t.index()] / weight_sum;
                let candidate = Time::new(acc.round() as u64);
                if candidate < bd[t.index()] {
                    bd[t.index()] = candidate;
                }
            }
            // The constrained task's own budget is exactly its deadline
            // (guards against rounding drift on long paths).
            if deadline < bd[td.index()] || slack == 0.0 {
                bd[td.index()] = deadline.min(bd[td.index()]);
            }
        }

        // Backward relaxation to tasks off the extracted paths.
        for &t in graph.topological_order().iter().rev() {
            for s in graph.successors(t) {
                let ds = bd[s.index()];
                if !ds.is_infinite() {
                    let m =
                        Time::new((graph.task(s).mean_exec_time() + arc_cost(t, s)).round() as u64);
                    let bound = ds.saturating_sub(m);
                    if bound < bd[t.index()] {
                        bd[t.index()] = bound;
                    }
                }
            }
        }

        SlackBudgets { bd }
    }

    /// All-infinite budgets for `graph` (budgeting disabled): the level
    /// scheduler then never sees an urgent task and degenerates to pure
    /// greedy energy minimization. Used by the ablation study.
    #[must_use]
    pub fn unbounded(graph: &TaskGraph) -> Self {
        SlackBudgets {
            bd: vec![Time::INFINITY; graph.task_count()],
        }
    }

    /// The budgeted deadline of `t` (`Time::INFINITY` if unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn budgeted_deadline(&self, t: TaskId) -> Time {
        self.bd[t.index()]
    }

    /// All budgets, task-id order.
    #[must_use]
    pub fn as_slice(&self) -> &[Time] {
        &self.bd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::units::{Energy, Volume};

    /// Builds a task whose mean exec time is `mean` and whose weight
    /// under `VarEnergyTimesVarTime` is proportional to `weight_knob`
    /// (via asymmetric 2-PE vectors).
    fn weighted_task(name: &str, mean: u64, spread: u64) -> Task {
        // times {mean-spread, mean+spread}: mean = mean, var = spread^2.
        let lo = Time::new(mean - spread);
        let hi = Time::new(mean + spread);
        let elo = Energy::from_nj((mean - spread) as f64);
        let ehi = Energy::from_nj((mean + spread) as f64);
        Task::new(name, vec![lo, hi], vec![elo, ehi])
    }

    /// The paper's Fig. 2 example: chain t1 -> t2 -> t3, means 300/200/400,
    /// weights 100/200/100, d(t3) = 1300 => BDs 400/800/1300.
    #[test]
    fn fig2_worked_example() {
        // weight = VAR_e * VAR_r = spread^4; choose spreads so the ratio
        // is 1:2:1 => spread2 = spread1 * 2^(1/4). Use explicit weights
        // instead via a custom weight function to keep the numbers exact.
        let mut b = TaskGraph::builder("fig2", 2);
        let t1 = b.add_task(weighted_task("t1", 300, 10));
        let t2 = b.add_task(weighted_task("t2", 200, 20));
        let t3 = b.add_task(weighted_task("t3", 400, 10).with_deadline(Time::new(1300)));
        b.add_edge(t1, t2, Volume::from_bits(8)).unwrap();
        b.add_edge(t2, t3, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();

        // spread 10 -> var 100; spread 20 -> var 400. With VAR_r alone the
        // weights are 100/400/100: slack 400 split 66.7/266.7/66.7.
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarTime);
        assert_eq!(budgets.budgeted_deadline(t1), Time::new(367));
        assert_eq!(budgets.budgeted_deadline(t2), Time::new(833));
        assert_eq!(budgets.budgeted_deadline(t3), Time::new(1300));

        // With uniform weights the slack splits evenly: 300+133, +200+134...
        let budgets = SlackBudgets::compute(&g, WeightFunction::Uniform);
        assert_eq!(budgets.budgeted_deadline(t1), Time::new(433));
        assert_eq!(budgets.budgeted_deadline(t2), Time::new(767));
        assert_eq!(budgets.budgeted_deadline(t3), Time::new(1300));
    }

    #[test]
    fn weights_shift_slack_toward_heavy_tasks() {
        let mut b = TaskGraph::builder("w", 2);
        let t1 = b.add_task(weighted_task("t1", 300, 10)); // light
        let t2 = b.add_task(weighted_task("t2", 200, 40)); // heavy (16x var)
        let t3 = b.add_task(weighted_task("t3", 400, 10).with_deadline(Time::new(1300)));
        b.add_edge(t1, t2, Volume::from_bits(8)).unwrap();
        b.add_edge(t2, t3, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let weighted = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        let uniform = SlackBudgets::compute(&g, WeightFunction::Uniform);
        // The heavy middle task gets a later budget than under uniform
        // weights (more slack allocated to it), the light first one an
        // earlier/equal budget.
        assert!(weighted.budgeted_deadline(t2) > uniform.budgeted_deadline(t2));
        assert!(weighted.budgeted_deadline(t1) <= uniform.budgeted_deadline(t1));
    }

    #[test]
    fn unconstrained_tasks_stay_infinite() {
        let mut b = TaskGraph::builder("u", 2);
        let a = b.add_task(weighted_task("a", 100, 5));
        let c = b.add_task(weighted_task("c", 100, 5));
        b.add_edge(a, c, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::VarEnergyTimesVarTime);
        assert!(budgets.budgeted_deadline(a).is_infinite());
        assert!(budgets.budgeted_deadline(c).is_infinite());
    }

    #[test]
    fn off_path_feeder_gets_relaxed_budget() {
        // a -> d (deadline), b -> d where b is NOT on the longest path.
        let mut b = TaskGraph::builder("o", 2);
        let a = b.add_task(weighted_task("a", 500, 5));
        let side = b.add_task(weighted_task("side", 100, 5));
        let d = b.add_task(weighted_task("d", 200, 5).with_deadline(Time::new(1000)));
        b.add_edge(a, d, Volume::from_bits(8)).unwrap();
        b.add_edge(side, d, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::Uniform);
        // side must still finish by BD(d) - M(d).
        let bd_d = budgets.budgeted_deadline(d);
        assert!(!budgets.budgeted_deadline(side).is_infinite());
        assert_eq!(budgets.budgeted_deadline(side), bd_d - Time::new(200));
    }

    #[test]
    fn infeasible_deadline_yields_zero_slack_budgets() {
        let mut b = TaskGraph::builder("tight", 2);
        let a = b.add_task(weighted_task("a", 300, 5));
        let d = b.add_task(weighted_task("d", 300, 5).with_deadline(Time::new(100)));
        b.add_edge(a, d, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::Uniform);
        // No slack to give: budgets are the bare cumulative means, capped
        // by the deadline on the constrained task.
        assert_eq!(budgets.budgeted_deadline(d), Time::new(100));
        assert_eq!(budgets.budgeted_deadline(a), Time::ZERO.max(Time::new(0)));
    }

    #[test]
    fn tightest_of_multiple_paths_wins() {
        // a feeds two deadline sinks; the tighter one constrains a.
        let mut b = TaskGraph::builder("m", 2);
        let a = b.add_task(weighted_task("a", 100, 5));
        let loose = b.add_task(weighted_task("loose", 100, 5).with_deadline(Time::new(2000)));
        let tight = b.add_task(weighted_task("tight", 100, 5).with_deadline(Time::new(250)));
        b.add_edge(a, loose, Volume::from_bits(8)).unwrap();
        b.add_edge(a, tight, Volume::from_bits(8)).unwrap();
        let g = b.build().unwrap();
        let budgets = SlackBudgets::compute(&g, WeightFunction::Uniform);
        // Via tight: slack 50, split evenly: BD(a) = 100 + 25 = 125.
        assert_eq!(budgets.budgeted_deadline(a), Time::new(125));
    }
}
