//! Structured decision tracing for the EAS pipeline.
//!
//! Every stage of the scheduler — slack budgeting, per-level `F(i,k)`
//! trials, PE selection, the Fig. 3 communication scheduler, LTS/GTM
//! repair and annealing — can emit [`Event`]s into a [`TraceSink`]
//! threaded through [`Scheduler::schedule_traced`]. Tracing is strictly
//! observational: a traced run commits the exact same placements as an
//! untraced one, so schedules stay byte-identical with tracing on or
//! off, and — because events are emitted centrally in the deterministic
//! `(round, task, PE)` reduction order — the logical event stream is
//! identical for every `--threads` value.
//!
//! Timestamps come in two flavours: every event carries a logical
//! sequence number (`seq`, assigned by the sink in emission order), and
//! sinks built with [`BufferSink::with_wall_clock`] additionally stamp
//! wall-clock microseconds (`wall_us`). JSONL exports of logical-only
//! traces are therefore deterministic; Chrome exports of wall-clock
//! traces carry real durations for profiling.
//!
//! Exporters: [`to_jsonl`] (one JSON object per line), [`to_chrome_trace`]
//! (Chrome trace-event JSON, loadable in Perfetto / `chrome://tracing`),
//! [`TraceSummary`] (per-stage durations and counters) and [`explain`]
//! (a per-task human-readable decision narrative).
//!
//! [`Scheduler::schedule_traced`]: crate::scheduler::Scheduler::schedule_traced

use serde::{Map, Serialize, Value};
use std::time::Instant;

/// One traced decision or span boundary.
///
/// The variant fields mirror what the corresponding pipeline stage knew
/// when it made the decision; see each variant's documentation for the
/// exact semantics. Serialized (manually, for a fixed field order) as a
/// flat JSON object with a `"type"` discriminator.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A named region of the pipeline opens. Top-level stages use plain
    /// names (`budgeting`, `level`, `repair`, `anneal`, `validate`);
    /// per-level rounds nest as `level:<round>` and each commit's
    /// communication scheduling as `comm`.
    SpanBegin {
        /// Span name; `:`-separated names are sub-spans.
        name: String,
    },
    /// The most recently opened span with this name closes.
    SpanEnd {
        /// Span name matching the corresponding [`EventKind::SpanBegin`].
        name: String,
    },
    /// Step 1 output for one task: its slack-budgeting weight and
    /// budgeted deadline.
    TaskBudget {
        /// Task index.
        task: usize,
        /// Task name from the graph.
        task_name: String,
        /// The weight `W` used to split path slack.
        weight: f64,
        /// Budgeted deadline in ticks; `None` when unconstrained.
        bd_ticks: Option<u64>,
    },
    /// One `F(i,k)` trial of the level scheduler.
    Trial {
        /// Task index.
        task: usize,
        /// Candidate PE index.
        pe: usize,
        /// Trial start tick.
        start: u64,
        /// `F(i,k)` finish tick.
        finish: u64,
        /// `true` when the epoch-stamped trial cache answered.
        cache_hit: bool,
    },
    /// A task was committed to a PE, with the rationale.
    Select {
        /// Task index.
        task: usize,
        /// Winning PE index.
        pe: usize,
        /// `"urgency"` (Step 2.3) or `"regret"` (Step 2.4).
        rule: &'static str,
        /// Urgency path: how far `min F` overshot the budget, in ticks.
        excess_ticks: Option<u64>,
        /// Regret path: `δE = E2 − E1` in nJ; `None` when only one PE
        /// was budget-feasible (the regret is effectively infinite).
        regret_nj: Option<f64>,
        /// Number of budget-feasible candidate PEs at decision time.
        feasible: usize,
        /// Energy of the chosen placement (execution + incoming comm).
        energy_nj: f64,
        /// Committed start tick.
        start: u64,
        /// Committed finish tick.
        finish: u64,
    },
    /// A committed link-slot reservation from the Fig. 3 communication
    /// scheduler (one per incoming transaction of the committed task).
    CommReserve {
        /// Edge index in the task graph.
        edge: usize,
        /// Producer task index.
        src: usize,
        /// Consumer task index (the task being committed).
        dst: usize,
        /// Transfer start tick.
        start: u64,
        /// Transfer finish tick.
        finish: u64,
        /// Route length in links (0 = same tile, no transfer).
        hops: usize,
        /// Ticks the transfer waited past the producer's finish for a
        /// common free slot on the route (link contention stall).
        wait_ticks: u64,
    },
    /// An accepted local task swap (LTS) in search-and-repair.
    LtsSwap {
        /// The critical task pulled earlier.
        task: usize,
        /// The non-critical task it swapped with.
        with: usize,
        /// Deadline misses after the swap.
        misses: usize,
        /// Total tardiness after the swap, in ticks.
        tardiness_ticks: u64,
        /// Candidate re-timings evaluated so far (accepted + rejected).
        trials: usize,
    },
    /// An accepted global task migration (GTM) in search-and-repair.
    GtmMove {
        /// The migrated critical task.
        task: usize,
        /// Destination PE index.
        to_pe: usize,
        /// Migration energy of the accepted destination, in nJ.
        energy_nj: f64,
        /// Deadline misses after the migration.
        misses: usize,
        /// Total tardiness after the migration, in ticks.
        tardiness_ticks: u64,
        /// Candidate re-timings evaluated so far (accepted + rejected).
        trials: usize,
    },
    /// Summary of one annealing chain (emitted in chain-index order
    /// after all chains finish, so the stream is thread-count
    /// invariant).
    AnnealChain {
        /// Chain index (0-based).
        chain: usize,
        /// The chain's RNG seed.
        seed: u64,
        /// Accepted Metropolis moves.
        accepted: usize,
        /// The chain's best cost, in nJ-equivalents.
        best_cost_nj: f64,
    },
    /// The warm-start-vs-reschedule decision of a delta run
    /// ([`crate::delta::repair_from_traced`]): emitted exactly once per
    /// delta request, before the repair (or fallback) pipeline runs.
    DeltaDecision {
        /// `true` when the prior schedule was rebased and repaired;
        /// `false` when the run fell back to a full reschedule.
        warm_start: bool,
        /// `"warm-start"` or a fallback reason (`"edit-storm"`,
        /// `"no-alive-pe"`, `"retime-deadlock"`).
        reason: &'static str,
        /// Number of edits in the sequence.
        edits: usize,
        /// Tasks in the union mask (affected region).
        mask_tasks: usize,
    },
    /// A compute-budget poll at a stage boundary.
    BudgetPoll {
        /// The stage that just finished.
        stage: &'static str,
        /// Budget steps consumed so far (see
        /// [`crate::limit::ComputeBudget::steps_used`]).
        steps: u64,
    },
}

impl EventKind {
    /// The `"type"` discriminator used in serialized events.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::TaskBudget { .. } => "task_budget",
            EventKind::Trial { .. } => "trial",
            EventKind::Select { .. } => "select",
            EventKind::CommReserve { .. } => "comm_reserve",
            EventKind::LtsSwap { .. } => "lts_swap",
            EventKind::GtmMove { .. } => "gtm_move",
            EventKind::AnnealChain { .. } => "anneal_chain",
            EventKind::DeltaDecision { .. } => "delta_decision",
            EventKind::BudgetPoll { .. } => "budget_poll",
        }
    }

    /// The event's payload fields as an ordered JSON object (without the
    /// `seq` / `wall_us` / `type` envelope).
    #[must_use]
    pub fn args(&self) -> Map {
        let mut m = Map::new();
        match self {
            EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
                m.insert("name", Value::String(name.clone()));
            }
            EventKind::TaskBudget {
                task,
                task_name,
                weight,
                bd_ticks,
            } => {
                m.insert("task", task.to_value());
                m.insert("task_name", Value::String(task_name.clone()));
                m.insert("weight", weight.to_value());
                m.insert("bd_ticks", bd_ticks.map_or(Value::Null, |b| b.to_value()));
            }
            EventKind::Trial {
                task,
                pe,
                start,
                finish,
                cache_hit,
            } => {
                m.insert("task", task.to_value());
                m.insert("pe", pe.to_value());
                m.insert("start", start.to_value());
                m.insert("finish", finish.to_value());
                m.insert("cache_hit", Value::Bool(*cache_hit));
            }
            EventKind::Select {
                task,
                pe,
                rule,
                excess_ticks,
                regret_nj,
                feasible,
                energy_nj,
                start,
                finish,
            } => {
                m.insert("task", task.to_value());
                m.insert("pe", pe.to_value());
                m.insert("rule", Value::String((*rule).to_owned()));
                m.insert(
                    "excess_ticks",
                    excess_ticks.map_or(Value::Null, |e| e.to_value()),
                );
                m.insert("regret_nj", regret_nj.map_or(Value::Null, |r| r.to_value()));
                m.insert("feasible", feasible.to_value());
                m.insert("energy_nj", energy_nj.to_value());
                m.insert("start", start.to_value());
                m.insert("finish", finish.to_value());
            }
            EventKind::CommReserve {
                edge,
                src,
                dst,
                start,
                finish,
                hops,
                wait_ticks,
            } => {
                m.insert("edge", edge.to_value());
                m.insert("src", src.to_value());
                m.insert("dst", dst.to_value());
                m.insert("start", start.to_value());
                m.insert("finish", finish.to_value());
                m.insert("hops", hops.to_value());
                m.insert("wait_ticks", wait_ticks.to_value());
            }
            EventKind::LtsSwap {
                task,
                with,
                misses,
                tardiness_ticks,
                trials,
            } => {
                m.insert("task", task.to_value());
                m.insert("with", with.to_value());
                m.insert("misses", misses.to_value());
                m.insert("tardiness_ticks", tardiness_ticks.to_value());
                m.insert("trials", trials.to_value());
            }
            EventKind::GtmMove {
                task,
                to_pe,
                energy_nj,
                misses,
                tardiness_ticks,
                trials,
            } => {
                m.insert("task", task.to_value());
                m.insert("to_pe", to_pe.to_value());
                m.insert("energy_nj", energy_nj.to_value());
                m.insert("misses", misses.to_value());
                m.insert("tardiness_ticks", tardiness_ticks.to_value());
                m.insert("trials", trials.to_value());
            }
            EventKind::AnnealChain {
                chain,
                seed,
                accepted,
                best_cost_nj,
            } => {
                m.insert("chain", chain.to_value());
                m.insert("seed", seed.to_value());
                m.insert("accepted", accepted.to_value());
                m.insert("best_cost_nj", best_cost_nj.to_value());
            }
            EventKind::DeltaDecision {
                warm_start,
                reason,
                edits,
                mask_tasks,
            } => {
                m.insert("warm_start", Value::Bool(*warm_start));
                m.insert("reason", Value::String((*reason).to_owned()));
                m.insert("edits", edits.to_value());
                m.insert("mask_tasks", mask_tasks.to_value());
            }
            EventKind::BudgetPoll { stage, steps } => {
                m.insert("stage", Value::String((*stage).to_owned()));
                m.insert("steps", steps.to_value());
            }
        }
        m
    }
}

/// A traced event with its timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical timestamp: emission index within the trace, assigned by
    /// the sink. Deterministic for every thread count.
    pub seq: u64,
    /// Wall-clock microseconds since the sink's origin, when the sink
    /// records wall time ([`BufferSink::with_wall_clock`]). Never set on
    /// logical-only sinks, so their exports are deterministic.
    pub wall_us: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("seq", self.seq.to_value());
        if let Some(w) = self.wall_us {
            m.insert("wall_us", w.to_value());
        }
        m.insert("type", Value::String(self.kind.type_name().to_owned()));
        for (k, v) in self.kind.args().iter() {
            m.insert(k.clone(), v.clone());
        }
        Value::Object(m)
    }
}

/// Destination for trace events.
///
/// The scheduler consults [`enabled`](TraceSink::enabled) once per run
/// and skips all event construction when it returns `false`, so a
/// disabled sink ([`NullSink`]) costs one branch per potential event.
pub trait TraceSink {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool;
    /// Records one event. The sink assigns the logical sequence number
    /// (and wall-clock stamp, if it keeps one).
    fn record(&mut self, kind: EventKind);
}

/// The disabled sink: recording is compiled down to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _kind: EventKind) {}
}

/// An in-memory sink collecting events in emission order.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Vec<Event>,
    origin: Option<Instant>,
}

impl BufferSink {
    /// A logical-timestamp-only sink: exports are deterministic.
    #[must_use]
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// A sink that additionally stamps wall-clock microseconds on every
    /// event (for Chrome-trace profiling and stage histograms). Wall
    /// stamps make exports nondeterministic; the *logical* stream is
    /// unaffected.
    #[must_use]
    pub fn with_wall_clock() -> Self {
        BufferSink {
            events: Vec::new(),
            origin: Some(Instant::now()),
        }
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, returning its events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl TraceSink for BufferSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, kind: EventKind) {
        let wall_us = self
            .origin
            .map(|o| u64::try_from(o.elapsed().as_micros()).unwrap_or(u64::MAX));
        self.events.push(Event {
            seq: self.events.len() as u64,
            wall_us,
            kind,
        });
    }
}

/// The handle the pipeline threads through its stages: a borrowed sink
/// plus a cached activity flag, so the hot paths pay one branch when
/// tracing is off.
pub struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
    active: bool,
}

impl<'a> Tracer<'a> {
    /// A tracer over `sink`; inactive when the sink is disabled.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        let active = sink.enabled();
        Tracer {
            sink: Some(sink),
            active,
        }
    }

    /// The always-off tracer used by the untraced entry points.
    #[must_use]
    pub fn off() -> Self {
        Tracer {
            sink: None,
            active: false,
        }
    }

    /// `true` when events will actually be recorded. Hot call sites
    /// guard event construction with this.
    #[inline]
    #[must_use]
    pub fn on(&self) -> bool {
        self.active
    }

    /// Records `kind` if the tracer is active.
    #[inline]
    pub fn emit(&mut self, kind: EventKind) {
        if self.active {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(kind);
            }
        }
    }

    /// Opens a span named `name`.
    pub fn begin(&mut self, name: &str) {
        if self.active {
            self.emit(EventKind::SpanBegin {
                name: name.to_owned(),
            });
        }
    }

    /// Closes the span named `name`.
    pub fn end(&mut self, name: &str) {
        if self.active {
            self.emit(EventKind::SpanEnd {
                name: name.to_owned(),
            });
        }
    }

    /// Records a budget poll for `stage` (call at stage boundaries).
    pub fn poll(&mut self, stage: &'static str, budget: &crate::limit::ComputeBudget) {
        if self.active {
            self.emit(EventKind::BudgetPoll {
                stage,
                steps: budget.steps_used(),
            });
        }
    }
}

/// Serializes events as JSON Lines (one compact object per line).
///
/// On a logical-only trace ([`BufferSink::new`]) the output is
/// byte-identical for every thread count.
#[must_use]
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&serde_json::to_string(event).expect("infallible"));
        out.push('\n');
    }
    out
}

/// Serializes events as Chrome trace-event JSON (the `traceEvents`
/// array format), loadable in Perfetto and `chrome://tracing`.
///
/// Spans become `B`/`E` duration events; everything else becomes an
/// instant event carrying its fields in `args`. Timestamps use the
/// wall-clock stamp when present, else the logical sequence number.
#[must_use]
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut trace_events = Vec::with_capacity(events.len());
    for event in events {
        let ts = event.wall_us.unwrap_or(event.seq);
        let (ph, name) = match &event.kind {
            EventKind::SpanBegin { name } => ("B", name.clone()),
            EventKind::SpanEnd { name } => ("E", name.clone()),
            other => ("i", other.type_name().to_owned()),
        };
        let mut m = Map::new();
        m.insert("name", Value::String(name));
        m.insert("cat", Value::String("noc".to_owned()));
        m.insert("ph", Value::String(ph.to_owned()));
        m.insert("ts", ts.to_value());
        m.insert("pid", 1u64.to_value());
        m.insert("tid", 1u64.to_value());
        if ph == "i" {
            m.insert("s", Value::String("t".to_owned()));
            let mut args = event.kind.args();
            args.insert("seq", event.seq.to_value());
            m.insert("args", Value::Object(args));
        }
        trace_events.push(Value::Object(m));
    }
    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(trace_events));
    root.insert("displayTimeUnit", Value::String("ms".to_owned()));
    serde_json::to_string(&Value::Object(root)).expect("infallible")
}

/// Aggregated per-stage durations and decision counters of one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events recorded.
    pub events: usize,
    /// `F(i,k)` trials evaluated.
    pub trials: u64,
    /// Trials answered by the epoch-stamped cache.
    pub cache_hits: u64,
    /// Commits decided by the urgency rule (Step 2.3).
    pub selects_urgency: u64,
    /// Commits decided by the energy-regret rule (Step 2.4).
    pub selects_regret: u64,
    /// Committed communication transactions (including local ones).
    pub comm_transactions: u64,
    /// Total ticks transfers stalled on link contention.
    pub contention_wait_ticks: u64,
    /// Accepted LTS swaps.
    pub lts_moves: u64,
    /// Accepted GTM migrations.
    pub gtm_moves: u64,
    /// Annealing chains run.
    pub anneal_chains: u64,
    /// Delta runs answered by a warm start (rebase + repair).
    pub delta_warm: u64,
    /// Delta runs that fell back to a full reschedule.
    pub delta_fallback: u64,
    /// Budget steps consumed at the last poll.
    pub budget_steps: u64,
    /// Wall-clock microseconds per top-level stage (spans whose name
    /// has no `:`), in first-open order. Empty on logical-only traces.
    pub stage_micros: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Computes the summary of an event stream.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        // Open spans: (name, begin wall stamp). Spans nest, so matching
        // the latest open entry with the same name is exact.
        let mut open: Vec<(&str, Option<u64>)> = Vec::new();
        for event in events {
            match &event.kind {
                EventKind::SpanBegin { name } => open.push((name, event.wall_us)),
                EventKind::SpanEnd { name } => {
                    let at = open.iter().rposition(|(n, _)| n == name);
                    if let Some(at) = at {
                        let (_, begin) = open.remove(at);
                        if name.contains(':') {
                            continue;
                        }
                        if let (Some(b), Some(e)) = (begin, event.wall_us) {
                            let micros = e.saturating_sub(b);
                            match s.stage_micros.iter_mut().find(|(n, _)| n == name) {
                                Some(slot) => slot.1 += micros,
                                None => s.stage_micros.push((name.clone(), micros)),
                            }
                        }
                    }
                }
                EventKind::Trial { cache_hit, .. } => {
                    s.trials += 1;
                    if *cache_hit {
                        s.cache_hits += 1;
                    }
                }
                EventKind::Select { rule, .. } => {
                    if *rule == "urgency" {
                        s.selects_urgency += 1;
                    } else {
                        s.selects_regret += 1;
                    }
                }
                EventKind::CommReserve { wait_ticks, .. } => {
                    s.comm_transactions += 1;
                    s.contention_wait_ticks += wait_ticks;
                }
                EventKind::LtsSwap { .. } => s.lts_moves += 1,
                EventKind::GtmMove { .. } => s.gtm_moves += 1,
                EventKind::AnnealChain { .. } => s.anneal_chains += 1,
                EventKind::DeltaDecision { warm_start, .. } => {
                    if *warm_start {
                        s.delta_warm += 1;
                    } else {
                        s.delta_fallback += 1;
                    }
                }
                EventKind::BudgetPoll { steps, .. } => s.budget_steps = *steps,
                EventKind::TaskBudget { .. } => {}
            }
        }
        s
    }
}

impl Serialize for TraceSummary {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("events", self.events.to_value());
        m.insert("trials", self.trials.to_value());
        m.insert("cache_hits", self.cache_hits.to_value());
        m.insert("selects_urgency", self.selects_urgency.to_value());
        m.insert("selects_regret", self.selects_regret.to_value());
        m.insert("comm_transactions", self.comm_transactions.to_value());
        m.insert(
            "contention_wait_ticks",
            self.contention_wait_ticks.to_value(),
        );
        m.insert("lts_moves", self.lts_moves.to_value());
        m.insert("gtm_moves", self.gtm_moves.to_value());
        m.insert("anneal_chains", self.anneal_chains.to_value());
        m.insert("delta_warm", self.delta_warm.to_value());
        m.insert("delta_fallback", self.delta_fallback.to_value());
        m.insert("budget_steps", self.budget_steps.to_value());
        let mut stages = Map::new();
        for (name, micros) in &self.stage_micros {
            stages.insert(name.clone(), micros.to_value());
        }
        m.insert("stage_micros", Value::Object(stages));
        Value::Object(m)
    }
}

/// Renders a per-task human-readable decision narrative of a trace.
///
/// `task` filters the narrative to one task index (placement, incoming
/// transfers and repair moves that touch it); `None` narrates the whole
/// run.
#[must_use]
pub fn explain(events: &[Event], task: Option<usize>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let wants = |t: usize| task.is_none_or(|f| f == t);
    // Task names and budgets from the budgeting stage.
    let mut names: Vec<(usize, String, f64, Option<u64>)> = Vec::new();
    for event in events {
        if let EventKind::TaskBudget {
            task,
            task_name,
            weight,
            bd_ticks,
        } = &event.kind
        {
            names.push((*task, task_name.clone(), *weight, *bd_ticks));
        }
    }
    let name_of = |t: usize| -> String {
        names
            .iter()
            .find(|(i, ..)| *i == t)
            .map_or_else(|| format!("t{t}"), |(_, n, ..)| format!("t{t} \"{n}\""))
    };
    let summary = TraceSummary::from_events(events);
    let _ = writeln!(
        out,
        "schedule narrative: {} trials ({} cache hits), {} commits, \
         {} transactions ({} ticks contention wait), {} LTS + {} GTM moves",
        summary.trials,
        summary.cache_hits,
        summary.selects_urgency + summary.selects_regret,
        summary.comm_transactions,
        summary.contention_wait_ticks,
        summary.lts_moves,
        summary.gtm_moves,
    );
    for (t, n, weight, bd) in &names {
        if !wants(*t) {
            continue;
        }
        let bd = bd.map_or_else(|| "unconstrained".to_owned(), |b| format!("BD {b}"));
        let _ = writeln!(out, "budget: t{t} \"{n}\" weight {weight:.4}, {bd}");
    }
    for event in events {
        match &event.kind {
            EventKind::Select {
                task: t,
                pe,
                rule,
                excess_ticks,
                regret_nj,
                feasible,
                energy_nj,
                start,
                finish,
            } if wants(*t) => {
                let why = if *rule == "urgency" {
                    format!(
                        "urgent: every PE busts its budget, over by {} ticks at best",
                        excess_ticks.unwrap_or(0)
                    )
                } else {
                    match regret_nj {
                        Some(d) => {
                            format!("energy regret dE {d:.3} nJ over {feasible} feasible PEs")
                        }
                        None => "only budget-feasible PE".to_owned(),
                    }
                };
                let _ = writeln!(
                    out,
                    "place: {} -> pe{pe} [{start}, {finish}) — {why}; energy {energy_nj:.3} nJ",
                    name_of(*t)
                );
            }
            EventKind::CommReserve {
                edge,
                src,
                dst,
                start,
                finish,
                hops,
                wait_ticks,
            } if wants(*dst) && *hops > 0 => {
                let stall = if *wait_ticks > 0 {
                    format!(", stalled {wait_ticks} ticks on contention")
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  comm: edge {edge} from {} over {hops} links [{start}, {finish}){stall}",
                    name_of(*src)
                );
            }
            EventKind::LtsSwap {
                task: t,
                with,
                misses,
                tardiness_ticks,
                ..
            } if wants(*t) || wants(*with) => {
                let _ = writeln!(
                    out,
                    "repair: LTS swap {} before {} -> {misses} misses, {tardiness_ticks} ticks tardy",
                    name_of(*t),
                    name_of(*with)
                );
            }
            EventKind::GtmMove {
                task: t,
                to_pe,
                energy_nj,
                misses,
                tardiness_ticks,
                ..
            } if wants(*t) => {
                let _ = writeln!(
                    out,
                    "repair: GTM migrate {} -> pe{to_pe} ({energy_nj:.3} nJ) -> {misses} misses, {tardiness_ticks} ticks tardy",
                    name_of(*t)
                );
            }
            EventKind::AnnealChain {
                chain,
                seed,
                accepted,
                best_cost_nj,
            } => {
                let _ = writeln!(
                    out,
                    "anneal: chain {chain} (seed {seed}) accepted {accepted} moves, best cost {best_cost_nj:.3} nJ"
                );
            }
            EventKind::DeltaDecision {
                warm_start,
                reason,
                edits,
                mask_tasks,
            } => {
                let what = if *warm_start {
                    "warm start: prior schedule rebased and repaired"
                } else {
                    "full reschedule: warm start rejected"
                };
                let _ = writeln!(
                    out,
                    "delta: {what} ({reason}) — {edits} edits touching {mask_tasks} tasks"
                );
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mut sink = BufferSink::new();
        sink.record(EventKind::SpanBegin {
            name: "level".to_owned(),
        });
        sink.record(EventKind::Trial {
            task: 0,
            pe: 1,
            start: 0,
            finish: 10,
            cache_hit: false,
        });
        sink.record(EventKind::Trial {
            task: 0,
            pe: 2,
            start: 0,
            finish: 12,
            cache_hit: true,
        });
        sink.record(EventKind::Select {
            task: 0,
            pe: 1,
            rule: "regret",
            excess_ticks: None,
            regret_nj: Some(2.5),
            feasible: 2,
            energy_nj: 4.0,
            start: 0,
            finish: 10,
        });
        sink.record(EventKind::CommReserve {
            edge: 0,
            src: 1,
            dst: 0,
            start: 0,
            finish: 5,
            hops: 2,
            wait_ticks: 3,
        });
        sink.record(EventKind::SpanEnd {
            name: "level".to_owned(),
        });
        sink.into_events()
    }

    #[test]
    fn sink_assigns_monotone_logical_timestamps() {
        let events = sample_events();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.wall_us, None, "logical sink never stamps wall time");
        }
    }

    #[test]
    fn null_sink_is_disabled_and_tracer_skips_it() {
        assert!(!NullSink.enabled());
        let mut sink = NullSink;
        let mut tracer = Tracer::new(&mut sink);
        assert!(!tracer.on());
        tracer.begin("level");
        tracer.emit(EventKind::SpanEnd {
            name: "level".to_owned(),
        });
        // Nothing to observe: NullSink has no storage. The off() tracer
        // behaves identically.
        assert!(!Tracer::off().on());
    }

    #[test]
    fn wall_clock_sink_stamps_micros() {
        let mut sink = BufferSink::with_wall_clock();
        sink.record(EventKind::SpanBegin {
            name: "x".to_owned(),
        });
        assert!(sink.events()[0].wall_us.is_some());
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            let obj = v.as_object().expect("object");
            assert!(obj.get("seq").is_some());
            assert!(obj.get("type").is_some());
        }
    }

    #[test]
    fn chrome_trace_parses_and_pairs_spans() {
        let text = to_chrome_trace(&sample_events());
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let events = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| {
                e.as_object()
                    .and_then(|o| o.get("ph"))
                    .and_then(Value::as_str)
                    .expect("ph")
            })
            .collect();
        assert_eq!(phases, ["B", "i", "i", "i", "i", "E"]);
    }

    #[test]
    fn summary_counts_decisions() {
        let s = TraceSummary::from_events(&sample_events());
        assert_eq!(s.events, 6);
        assert_eq!(s.trials, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.selects_regret, 1);
        assert_eq!(s.selects_urgency, 0);
        assert_eq!(s.comm_transactions, 1);
        assert_eq!(s.contention_wait_ticks, 3);
        assert!(s.stage_micros.is_empty(), "no wall stamps, no durations");
    }

    #[test]
    fn summary_durations_come_from_wall_stamps() {
        let mk = |seq: u64, wall: u64, kind: EventKind| Event {
            seq,
            wall_us: Some(wall),
            kind,
        };
        let events = vec![
            mk(
                0,
                100,
                EventKind::SpanBegin {
                    name: "level".to_owned(),
                },
            ),
            mk(
                1,
                110,
                EventKind::SpanBegin {
                    name: "level:0".to_owned(),
                },
            ),
            mk(
                2,
                150,
                EventKind::SpanEnd {
                    name: "level:0".to_owned(),
                },
            ),
            mk(
                3,
                400,
                EventKind::SpanEnd {
                    name: "level".to_owned(),
                },
            ),
        ];
        let s = TraceSummary::from_events(&events);
        // Sub-spans (name contains ':') are rolled into their stage.
        assert_eq!(s.stage_micros, vec![("level".to_owned(), 300)]);
    }

    #[test]
    fn explain_narrates_and_filters_by_task() {
        let full = explain(&sample_events(), None);
        assert!(full.contains("place: t0 -> pe1"));
        assert!(full.contains("stalled 3 ticks"));
        let other = explain(&sample_events(), Some(7));
        assert!(!other.contains("place:"));
    }
}
