//! # noc-eas
//!
//! **Energy-Aware Scheduling (EAS)** of communication transactions and
//! computation tasks onto heterogeneous Network-on-Chip architectures
//! under real-time constraints — a from-scratch reproduction of
//! Hu & Marculescu, DATE 2004.
//!
//! Given a [`noc_ctg::TaskGraph`] (Def. 1) and a
//! [`noc_platform::Platform`] (whose precomputed ACG is Def. 2), the
//! schedulers in this crate produce a static, non-preemptive
//! [`noc_schedule::Schedule`] assigning every task to a PE and every
//! communication transaction to link time slots, minimizing the Eq. 3
//! energy subject to deadlines:
//!
//! * [`EasScheduler`] — the paper's three-step heuristic:
//!   1. **slack budgeting** ([`budget`]): weights `W = VAR_e · VAR_r`
//!      distribute path slack into per-task budgeted deadlines,
//!   2. **level-based scheduling** ([`level`]): contention-aware trial
//!      placement using the Fig. 3 communication scheduler ([`comm`]),
//!      choosing by urgency or by the energy-regret `δE = E2 − E1`,
//!   3. **search & repair** ([`repair`]): local task swapping and global
//!      task migration until deadline misses disappear (Fig. 4).
//! * [`EdfScheduler`] — the paper's baseline: an energy-blind,
//!   performance-driven earliest-deadline-first list scheduler sharing
//!   the same communication machinery.
//!
//! # Example
//!
//! ```
//! use noc_eas::prelude::*;
//! use noc_ctg::prelude::*;
//! use noc_platform::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder()
//!     .topology(TopologySpec::mesh(2, 2))
//!     .build()?;
//! let graph = MultimediaApp::AvEncoder.build(Clip::Foreman, &platform)?;
//!
//! let eas = EasScheduler::new(EasConfig::default());
//! let outcome = eas.schedule(&graph, &platform)?;
//! assert!(outcome.report.meets_deadlines());
//!
//! let edf = EdfScheduler::new();
//! let baseline = edf.schedule(&graph, &platform)?;
//! // EAS optimizes energy; EDF optimizes speed.
//! assert!(outcome.stats.energy.total() <= baseline.stats.energy.total());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod budget;
pub mod cache;
pub mod comm;
pub mod delta;
pub mod dls;
pub mod edf;
mod error;
pub mod level;
pub mod limit;
pub mod mapping;
pub mod placer;
pub mod repair;
pub mod retime;
pub mod scheduler;
pub mod trace;

pub use error::SchedulerError;
pub use scheduler::{
    DlsScheduler, EasConfig, EasScheduler, EdfScheduler, ScheduleOutcome, Scheduler, WeightFunction,
};

/// Convenient glob import of the most commonly used scheduler types.
pub mod prelude {
    pub use crate::anneal::{AnnealConfig, AnnealScheduler};
    pub use crate::budget::SlackBudgets;
    pub use crate::delta::{
        apply_edits, apply_platform_edits, repair_from, repair_from_traced, AppliedEdits,
        DeltaOutcome, EdgeRef, Edit,
    };
    pub use crate::limit::{CancelToken, ComputeBudget, Interrupt};
    pub use crate::mapping::MapThenScheduleScheduler;
    pub use crate::scheduler::{
        CommModel, DlsScheduler, EasConfig, EasScheduler, EdfScheduler, ScheduleOutcome, Scheduler,
        WeightFunction,
    };
    pub use crate::trace::{BufferSink, NullSink, TraceSink, TraceSummary, Tracer};
    pub use crate::SchedulerError;
}
