//! Mapping-then-scheduling baseline (two-phase decomposition).
//!
//! Before the paper's co-scheduling approach, the usual NoC flow — and
//! the authors' own earlier work (energy-aware *mapping* under
//! performance constraints, the paper's ref. \[13\]) — decomposed the
//! problem: first assign tasks to PEs minimizing an energy objective
//! under a load-balance constraint, then order execution on the fixed
//! assignment. This module implements that decomposition so the benefit
//! of the paper's *concurrent* communication/computation scheduling can
//! be measured directly:
//!
//! 1. **Mapping phase**: tasks are visited in descending total
//!    communication volume; each is greedily placed on the PE minimizing
//!    `exec_energy + Σ transfer_energy(placed neighbours)`, subject to a
//!    load cap of `balance_factor ×` the average load (keeping the
//!    mapping schedulable at all).
//! 2. **Scheduling phase**: with `M()` frozen, tasks are ordered by
//!    effective deadline and re-timed with the exact Fig. 3
//!    communication scheduler (shared with every other scheduler here).
//!
//! The phase split is the point: the mapping phase cannot see contention
//! or slack, so it under-uses fast PEs near deadlines — exactly the gap
//! the paper's integrated EAS closes.

use noc_ctg::analysis::effective_deadlines;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::Energy;
use noc_platform::Platform;
use noc_schedule::{validate, ScheduleStats};

use crate::repair::RepairStats;
use crate::retime::{retime, OrderedAssignment};
use crate::scheduler::{ScheduleOutcome, Scheduler};
use crate::SchedulerError;

/// The two-phase mapping-then-scheduling baseline; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct MapThenScheduleScheduler {
    /// Load cap multiplier over the average per-PE mean execution load.
    balance_factor: f64,
}

impl MapThenScheduleScheduler {
    /// Creates the baseline with the default load balance factor (1.5).
    #[must_use]
    pub fn new() -> Self {
        MapThenScheduleScheduler {
            balance_factor: 1.5,
        }
    }

    /// Overrides the load-balance cap.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1.0`.
    #[must_use]
    pub fn with_balance_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "balance factor below 1.0 is unsatisfiable");
        self.balance_factor = factor;
        self
    }

    /// Phase 1: the greedy energy-aware mapping.
    fn map(&self, graph: &TaskGraph, platform: &Platform) -> Vec<PeId> {
        let n = graph.task_count();
        let pe_count = platform.tile_count();
        let total_mean: f64 = graph
            .task_ids()
            .map(|t| graph.task(t).mean_exec_time())
            .sum();
        let load_cap = (total_mean / pe_count as f64) * self.balance_factor;

        // Order tasks by descending adjacent communication volume
        // (heavy communicators are placed first so their neighbours can
        // cluster around them), ties by id.
        let mut order: Vec<TaskId> = graph.task_ids().collect();
        let comm_weight = |t: TaskId| -> u64 {
            graph
                .incoming(t)
                .iter()
                .chain(graph.outgoing(t))
                .map(|&e| graph.edge(e).volume.bits())
                .sum()
        };
        order.sort_by_key(|&t| (std::cmp::Reverse(comm_weight(t)), t));

        let mut assignment: Vec<Option<PeId>> = vec![None; n];
        let mut load = vec![0.0f64; pe_count];
        for t in order {
            let mut best: Option<(Energy, usize, PeId)> = None;
            for k in platform.alive_pes() {
                // Hard cap unless every PE is capped (then fall through).
                let capped = load[k.index()] + graph.task(t).mean_exec_time() > load_cap;
                let mut energy = graph.task(t).exec_energy(k);
                for &e in graph.incoming(t) {
                    let edge = graph.edge(e);
                    if let Some(src_pe) = assignment[edge.src.index()] {
                        energy += platform.transfer_energy(src_pe.tile(), k.tile(), edge.volume);
                    }
                }
                for &e in graph.outgoing(t) {
                    let edge = graph.edge(e);
                    if let Some(dst_pe) = assignment[edge.dst.index()] {
                        energy += platform.transfer_energy(k.tile(), dst_pe.tile(), edge.volume);
                    }
                }
                let key = (energy, usize::from(capped), k);
                // Prefer uncapped PEs, then lower energy, then lower id —
                // encoded as (capped, energy, id) lexicographic.
                let better = match best {
                    None => true,
                    Some((be, bc, bk)) => {
                        (usize::from(capped), energy, k.index()) < (bc, be, bk.index())
                    }
                };
                if better {
                    best = Some((key.0, key.1, k));
                }
            }
            let (_, _, k) = best.expect("at least one PE");
            assignment[t.index()] = Some(k);
            load[k.index()] += graph.task(t).mean_exec_time();
        }
        assignment
            .into_iter()
            .map(|a| a.expect("all mapped"))
            .collect()
    }
}

impl Default for MapThenScheduleScheduler {
    fn default() -> Self {
        MapThenScheduleScheduler::new()
    }
}

impl Scheduler for MapThenScheduleScheduler {
    fn name(&self) -> &str {
        "map-then-schedule"
    }

    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        if graph.pe_count() != platform.tile_count() {
            return Err(SchedulerError::PeCountMismatch {
                graph: graph.pe_count(),
                platform: platform.tile_count(),
            });
        }
        let assignment = self.map(graph, platform);

        // Phase 2: per-PE order by (effective deadline, topological
        // position) — a deadline-monotonic list on the frozen mapping.
        let eff = effective_deadlines(graph);
        let topo_pos = {
            let mut pos = vec![0usize; graph.task_count()];
            for (i, &t) in graph.topological_order().iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        let mut order: Vec<Vec<TaskId>> = vec![Vec::new(); platform.tile_count()];
        for &t in graph.topological_order() {
            order[assignment[t.index()].index()].push(t);
        }
        for queue in &mut order {
            queue.sort_by_key(|&t| (eff[t.index()], topo_pos[t.index()]));
        }
        let oa = OrderedAssignment { assignment, order };
        let schedule = retime(graph, platform, &oa).ok_or(SchedulerError::RetimeDeadlock)?;
        let report = validate(&schedule, graph, platform)?;
        let stats = ScheduleStats::compute(&schedule, graph, platform);
        Ok(ScheduleOutcome {
            schedule,
            report,
            stats,
            repair: RepairStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EasScheduler, EdfScheduler};
    use noc_ctg::prelude::*;
    use noc_platform::prelude::*;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn produces_valid_schedules() {
        let p = platform();
        for seed in 0..4u64 {
            let g = TgffGenerator::new(TgffConfig::small(seed))
                .generate(&p)
                .unwrap();
            let out = MapThenScheduleScheduler::new()
                .schedule(&g, &p)
                .expect("schedules");
            validate(&out.schedule, &g, &p).expect("valid");
        }
    }

    #[test]
    fn mapping_clusters_heavy_communicators() {
        // Two tasks exchanging a huge volume end up co-located (or at
        // least adjacent) by the greedy mapping.
        let p = platform();
        let mut b = TaskGraph::builder("pair", 16);
        let synth = noc_ctg::costs::CostSynthesizer::new(p.pe_classes());
        let (t1, e1) = synth.vectors(100.0, 0.5);
        let (t2, e2) = synth.vectors(100.0, 0.5);
        let a = b.add_task(Task::new("a", t1, e1));
        let c = b.add_task(Task::new("c", t2, e2));
        b.add_edge(a, c, Volume::from_bits(1 << 20)).unwrap();
        let g = b.build().unwrap();
        let out = MapThenScheduleScheduler::new().schedule(&g, &p).unwrap();
        let d = p
            .coord(out.schedule.task(a).pe.tile())
            .manhattan(p.coord(out.schedule.task(c).pe.tile()));
        assert!(d <= 1, "heavy communicators should cluster, distance {d}");
    }

    #[test]
    fn beats_edf_on_energy_but_not_eas() {
        let p = platform();
        let mut better_than_edf = 0;
        let mut eas_wins = 0;
        for seed in 0..4u64 {
            let g = TgffGenerator::new(TgffConfig::small(seed))
                .generate(&p)
                .unwrap();
            let two_phase = MapThenScheduleScheduler::new().schedule(&g, &p).unwrap();
            let edf = EdfScheduler::new().schedule(&g, &p).unwrap();
            let eas = EasScheduler::full().schedule(&g, &p).unwrap();
            if two_phase.stats.energy.total() < edf.stats.energy.total() {
                better_than_edf += 1;
            }
            if eas.stats.energy.total() <= two_phase.stats.energy.total() {
                eas_wins += 1;
            }
        }
        assert!(
            better_than_edf >= 3,
            "energy-aware mapping should usually beat EDF"
        );
        assert!(
            eas_wins >= 3,
            "co-scheduling should match or beat the two-phase split"
        );
    }

    #[test]
    fn balance_factor_guard() {
        let s = MapThenScheduleScheduler::new().with_balance_factor(2.0);
        assert_eq!(s.name(), "map-then-schedule");
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn rejects_sub_unit_balance() {
        let _ = MapThenScheduleScheduler::new().with_balance_factor(0.5);
    }
}
