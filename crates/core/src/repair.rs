//! Step 3 of EAS: the search-and-repair procedure (Fig. 4).
//!
//! When the energy-first level schedule misses deadlines, two kinds of
//! greedy moves fix it:
//!
//! * **LTS — local task swapping**: reorder a *critical* task (a missed
//!   task or one of its ancestors) before a non-critical task on the
//!   same PE. Energy-neutral by construction (assignments unchanged).
//! * **GTM — global task migration**: move a critical task to another
//!   PE, trying destinations in increasing order of the energy increase
//!   it would cause, accepting the first move that reduces misses.
//!
//! "Reduces the deadline misses" is made precise as a lexicographic
//! decrease of `(miss count, total tardiness)`; since both components
//! are well-founded, the greedy procedure always converges (the paper's
//! convergence remark).

use noc_ctg::analysis::GraphAnalysis;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};
use noc_platform::Platform;
use noc_schedule::Schedule;

use crate::comm::incoming_comm_energy;
use crate::limit::{ComputeBudget, Interrupt};
use crate::retime::{retime, OrderedAssignment};
use crate::trace::{EventKind, Tracer};

/// Counters describing one repair run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Accepted local task swaps.
    pub lts_accepted: usize,
    /// Accepted global task migrations.
    pub gtm_accepted: usize,
    /// Candidate re-timings evaluated (accepted + rejected).
    pub trials: usize,
}

/// Upper bound on candidate evaluations per repair run, guarding batch
/// experiments against pathological graphs. Generously above anything
/// the paper-scale benchmarks need.
pub const MAX_REPAIR_TRIALS: usize = 500_000;

type Badness = (usize, Time);

fn badness(schedule: &Schedule, graph: &TaskGraph) -> Badness {
    let misses = schedule.deadline_misses(graph);
    let tardiness: Time = misses.iter().map(|(_, t)| *t).sum();
    (misses.len(), tardiness)
}

/// Critical tasks: every task that misses its deadline plus all their
/// ancestors (the paper notes a critical task "may not necessarily have
/// a specified deadline, but it causes one of its descendant tasks to
/// miss its deadline"). Ascending id.
fn critical_tasks(graph: &TaskGraph, schedule: &Schedule) -> Vec<TaskId> {
    let analysis = GraphAnalysis::new(graph);
    let missed: Vec<TaskId> = schedule
        .deadline_misses(graph)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let mut critical = vec![false; graph.task_count()];
    for &m in &missed {
        critical[m.index()] = true;
        for a in analysis.ancestors_of(m) {
            critical[a.index()] = true;
        }
    }
    critical
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| TaskId::new(i as u32))
        .collect()
}

/// Runs search and repair on `schedule`, returning the repaired schedule
/// (or the best-effort result if misses cannot be fully fixed) together
/// with run statistics.
///
/// The input schedule is first *rebased* through [`retime`] so all
/// candidate moves are compared on identical re-timing semantics; if the
/// input already meets every deadline it is returned unchanged.
#[must_use]
pub fn search_and_repair(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: Schedule,
) -> (Schedule, RepairStats) {
    search_and_repair_threads(graph, platform, schedule, 1)
}

/// [`search_and_repair`] with GTM candidate re-timings fanned out over
/// `threads` workers (`0` = all hardware threads).
///
/// Destinations are still tried in the serial order (increasing
/// migration energy); they are evaluated in blocks of `threads`
/// candidates and the *first improving candidate in that order* is the
/// one accepted, with [`RepairStats::trials`] counting exactly the
/// candidates the serial scan would have evaluated — so the repaired
/// schedule **and** the statistics are byte-identical to the serial run
/// for every thread count.
#[must_use]
pub fn search_and_repair_threads(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: Schedule,
    threads: usize,
) -> (Schedule, RepairStats) {
    search_and_repair_threads_budgeted(
        graph,
        platform,
        schedule,
        threads,
        &ComputeBudget::unlimited(),
    )
    .expect("unlimited budget never interrupts")
}

/// Budgeted variant of [`search_and_repair_threads`]: the budget is
/// polled before every LTS candidate re-timing and every GTM candidate
/// block. All candidate state lives in clones; an interrupt simply
/// drops the partially repaired schedule, so no reservation or ordering
/// change survives it.
///
/// # Errors
///
/// The [`Interrupt`] that fired.
pub fn search_and_repair_threads_budgeted(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: Schedule,
    threads: usize,
    budget: &ComputeBudget,
) -> Result<(Schedule, RepairStats), Interrupt> {
    search_and_repair_traced(
        graph,
        platform,
        schedule,
        threads,
        budget,
        &mut Tracer::off(),
    )
}

/// Traced variant of [`search_and_repair_threads_budgeted`]: every
/// *accepted* move is recorded — [`EventKind::LtsSwap`] /
/// [`EventKind::GtmMove`] with the post-move badness and trial count —
/// in acceptance order, which is serial-identical for every thread
/// count. Rejected candidates are deliberately not traced (there can be
/// hundreds of thousands); the `trials` counter carries their cost.
///
/// # Errors
///
/// The [`Interrupt`] that fired.
pub fn search_and_repair_traced(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: Schedule,
    threads: usize,
    budget: &ComputeBudget,
    tracer: &mut Tracer<'_>,
) -> Result<(Schedule, RepairStats), Interrupt> {
    let workers = noc_par::effective_threads(threads);
    let mut stats = RepairStats::default();
    if badness(&schedule, graph).0 == 0 {
        return Ok((schedule, stats));
    }

    let mut oa = OrderedAssignment::from_schedule(&schedule, platform);
    let mut current = match retime(graph, platform, &oa) {
        Some(s) => s,
        None => return Ok((schedule, stats)), // cannot rebase: keep original
    };
    let mut best = badness(&current, graph);
    if best.0 == 0 {
        return Ok((current, stats));
    }

    loop {
        // --- LTS mode: swap critical tasks earlier on their own PE. ---
        let mut lts_improved = true;
        'lts: while lts_improved && best.0 > 0 && stats.trials < MAX_REPAIR_TRIALS {
            lts_improved = false;
            let crit = critical_tasks(graph, &current);
            let is_crit = {
                let mut v = vec![false; graph.task_count()];
                for &c in &crit {
                    v[c.index()] = true;
                }
                v
            };
            for &t1 in &crit {
                let pe = oa.assignment[t1.index()];
                let pos1 = oa.position(t1);
                // Try to pull t1 before each earlier non-critical task.
                for pos2 in 0..pos1 {
                    let t2 = oa.order[pe.index()][pos2];
                    if is_crit[t2.index()] {
                        continue;
                    }
                    budget.check()?;
                    oa.swap(t1, t2);
                    stats.trials += 1;
                    let candidate = retime(graph, platform, &oa);
                    let improved = candidate.as_ref().is_some_and(|c| badness(c, graph) < best);
                    if improved {
                        current = candidate.expect("checked");
                        best = badness(&current, graph);
                        stats.lts_accepted += 1;
                        if tracer.on() {
                            tracer.emit(EventKind::LtsSwap {
                                task: t1.index(),
                                with: t2.index(),
                                misses: best.0,
                                tardiness_ticks: best.1.ticks(),
                                trials: stats.trials,
                            });
                        }
                        lts_improved = true;
                        continue 'lts; // restart with fresh critical set
                    }
                    oa.swap(t1, t2); // roll back
                    if stats.trials >= MAX_REPAIR_TRIALS {
                        break 'lts;
                    }
                }
            }
        }
        if best.0 == 0 || stats.trials >= MAX_REPAIR_TRIALS {
            break;
        }

        // --- GTM mode: migrate one critical task, cheapest energy first. ---
        let crit = critical_tasks(graph, &current);
        let mut migrated = false;
        'gtm: for &t in &crit {
            let src = oa.assignment[t.index()];
            // Dead PEs are masked out of the candidate destinations, so
            // repair on a faulted platform never re-strands a task.
            let mut destinations: Vec<(Energy, PeId)> = platform
                .alive_pes()
                .filter(|&k| k != src)
                .map(|k| (migration_energy(graph, platform, &current, t, k), k))
                .collect();
            destinations.sort_by(|a, b| {
                (a.0, a.1.index())
                    .partial_cmp(&(b.0, b.1.index()))
                    .expect("finite energies")
            });
            let old_start = current.task(t).start;
            // Evaluate destinations in blocks of `workers` candidates.
            // Each candidate re-times a *clone* of the current ordered
            // assignment, so workers never share mutable state; accepting
            // the first improving candidate in sorted order (and charging
            // `trials` for exactly the candidates a serial scan would
            // have evaluated) keeps results and stats serial-identical.
            let mut next = 0;
            while next < destinations.len() {
                budget.check()?;
                let budget_left = MAX_REPAIR_TRIALS - stats.trials;
                if budget_left == 0 {
                    break 'gtm;
                }
                let block_end = destinations
                    .len()
                    .min(next + workers)
                    .min(next + budget_left);
                let block = &destinations[next..block_end];
                let evals: Vec<Option<(Schedule, Badness)>> =
                    noc_par::par_map(workers, block, |_, &(_, dst)| {
                        let mut trial_oa = oa.clone();
                        // Insert keeping the destination queue sorted by
                        // current start times.
                        let anchor = trial_oa.order[dst.index()]
                            .iter()
                            .position(|&x| current.task(x).start > old_start)
                            .unwrap_or(trial_oa.order[dst.index()].len());
                        trial_oa.migrate(t, dst, anchor);
                        retime(graph, platform, &trial_oa).map(|c| {
                            let b = badness(&c, graph);
                            (c, b)
                        })
                    });
                let accepted = evals
                    .iter()
                    .position(|e| e.as_ref().is_some_and(|(_, b)| *b < best));
                match accepted {
                    Some(j) => {
                        stats.trials += j + 1;
                        let dst = block[j].1;
                        let anchor = oa.order[dst.index()]
                            .iter()
                            .position(|&x| current.task(x).start > old_start)
                            .unwrap_or(oa.order[dst.index()].len());
                        oa.migrate(t, dst, anchor);
                        let (cand, b) = evals.into_iter().nth(j).flatten().expect("improving");
                        current = cand;
                        best = b;
                        stats.gtm_accepted += 1;
                        if tracer.on() {
                            tracer.emit(EventKind::GtmMove {
                                task: t.index(),
                                to_pe: dst.index(),
                                energy_nj: block[j].0.as_nj(),
                                misses: best.0,
                                tardiness_ticks: best.1.ticks(),
                                trials: stats.trials,
                            });
                        }
                        migrated = true;
                        break 'gtm;
                    }
                    None => {
                        stats.trials += block.len();
                        next = block_end;
                    }
                }
            }
        }
        if !migrated {
            break; // Fig. 4: no critical task helps — give up.
        }
    }

    Ok((current, stats))
}

/// Masked-resource re-repair: adapts a schedule built for a pristine
/// platform to `platform`'s fault set instead of discarding it.
///
/// Tasks assigned to dead PEs are first *evacuated* (ascending task id)
/// to the alive PE with the lowest migration energy (ties: lowest PE
/// id), inserted into the destination queue at the position matching
/// their original start time. The evacuated assignment is re-timed on
/// the faulted platform — whose fault-aware routes already detour
/// around dead links, so the Fig. 3 link tables only ever reserve
/// surviving links — and then handed to
/// [`search_and_repair_threads`], which masks dead PEs out of its GTM
/// candidate list. The combined pass re-runs the paper's Step 3 with
/// failed resources masked, recovering deadlines where slack permits.
///
/// Returns `None` when the evacuated order cannot be re-timed (a
/// cross-PE ordering deadlock); callers should fall back to scheduling
/// from scratch on the faulted platform.
#[must_use]
pub fn repair_with_faults(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
    threads: usize,
) -> Option<(Schedule, RepairStats)> {
    let mut oa = OrderedAssignment::from_schedule(schedule, platform);
    let stranded: Vec<TaskId> = graph
        .task_ids()
        .filter(|t| !platform.pe_alive(oa.assignment[t.index()]))
        .collect();
    for t in stranded {
        let old_start = schedule.task(t).start;
        let mut dests: Vec<(Energy, PeId)> = platform
            .alive_pes()
            .map(|k| (migration_energy(graph, platform, schedule, t, k), k))
            .collect();
        dests.sort_by(|a, b| {
            (a.0, a.1.index())
                .partial_cmp(&(b.0, b.1.index()))
                .expect("finite energies")
        });
        let dst = dests.first()?.1;
        let anchor = oa.order[dst.index()]
            .iter()
            .position(|&x| schedule.task(x).start > old_start)
            .unwrap_or(oa.order[dst.index()].len());
        oa.migrate(t, dst, anchor);
    }
    let rebased = retime(graph, platform, &oa)?;
    Some(search_and_repair_threads(graph, platform, rebased, threads))
}

/// The energy of task `t` if migrated to `k` under the current
/// placements: execution energy plus incoming and outgoing transfer
/// energy (all neighbours are placed in a complete schedule).
fn migration_energy(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
    t: TaskId,
    k: PeId,
) -> Energy {
    let placements: Vec<Option<noc_schedule::TaskPlacement>> = schedule
        .task_placements()
        .iter()
        .copied()
        .map(Some)
        .collect();
    let incoming = incoming_comm_energy(graph, platform, &placements, t, k);
    let outgoing: Energy = graph
        .outgoing(t)
        .iter()
        .map(|&e| {
            let edge = graph.edge(e);
            let consumer = schedule.task(edge.dst).pe.tile();
            platform.transfer_energy(k.tile(), consumer, edge.volume)
        })
        .sum();
    graph.task(t).exec_energy(k) + incoming + outgoing
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_schedule::validate;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    /// Two independent tasks on one PE: `late` has a deadline of 100 but
    /// is queued second. LTS must swap it first.
    #[test]
    fn lts_swaps_critical_task_earlier() {
        let p = platform();
        let mut b = TaskGraph::builder("lts", 4);
        let filler = b.add_task(Task::uniform(
            "filler",
            4,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        let late = b.add_task(
            Task::uniform("late", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(100)),
        );
        let g = b.build().unwrap();
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(0), PeId::new(0)],
            order: vec![vec![filler, late], vec![], vec![], vec![]],
        };
        let bad = retime(&g, &p, &oa).unwrap();
        assert_eq!(bad.deadline_misses(&g).len(), 1);
        let (fixed, stats) = search_and_repair(&g, &p, bad);
        assert!(fixed.deadline_misses(&g).is_empty());
        assert!(stats.lts_accepted >= 1);
        assert_eq!(stats.gtm_accepted, 0, "swap suffices, no migration needed");
        validate(&fixed, &g, &p).expect("valid");
        // LTS is energy-neutral.
        let s = noc_schedule::ScheduleStats::compute(&fixed, &g, &p);
        assert!((s.energy.total().as_nj() - 2.0).abs() < 1e-9);
    }

    /// Two deadline tasks overloading one PE: swapping cannot fix both,
    /// a migration must move one away.
    #[test]
    fn gtm_migrates_when_swapping_cannot_help() {
        let p = platform();
        let mut b = TaskGraph::builder("gtm", 4);
        let t0 = b.add_task(
            Task::uniform("t0", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(110)),
        );
        let t1 = b.add_task(
            Task::uniform("t1", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(110)),
        );
        let g = b.build().unwrap();
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(0), PeId::new(0)],
            order: vec![vec![t0, t1], vec![], vec![], vec![]],
        };
        let bad = retime(&g, &p, &oa).unwrap();
        assert_eq!(bad.deadline_misses(&g).len(), 1);
        let (fixed, stats) = search_and_repair(&g, &p, bad);
        assert!(fixed.deadline_misses(&g).is_empty());
        assert!(stats.gtm_accepted >= 1);
        validate(&fixed, &g, &p).expect("valid");
        // The two tasks now sit on different PEs.
        assert_ne!(fixed.task(t0).pe, fixed.task(t1).pe);
    }

    #[test]
    fn already_feasible_schedule_is_returned_unchanged() {
        let p = platform();
        let mut b = TaskGraph::builder("ok", 4);
        let t = b.add_task(
            Task::uniform("t", 4, Time::new(10), Energy::from_nj(1.0))
                .with_deadline(Time::new(100)),
        );
        let g = b.build().unwrap();
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(2)],
            order: vec![vec![], vec![], vec![t], vec![]],
        };
        let good = retime(&g, &p, &oa).unwrap();
        let (same, stats) = search_and_repair(&g, &p, good.clone());
        assert_eq!(same, good);
        assert_eq!(stats, RepairStats::default());
    }

    /// An unfixable graph (deadline shorter than any execution time)
    /// terminates gracefully with the misses intact.
    #[test]
    fn impossible_deadline_terminates() {
        let p = platform();
        let mut b = TaskGraph::builder("doom", 4);
        let t = b.add_task(
            Task::uniform("t", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(10)),
        );
        let g = b.build().unwrap();
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(0)],
            order: vec![vec![t], vec![], vec![], vec![]],
        };
        let bad = retime(&g, &p, &oa).unwrap();
        let (out, _) = search_and_repair(&g, &p, bad);
        assert_eq!(out.deadline_misses(&g).len(), 1);
    }

    /// Parallel GTM evaluation must reproduce the serial repair exactly —
    /// same schedule, same accept/trial counters — on workloads that
    /// actually exercise migrations.
    #[test]
    fn parallel_repair_is_bit_identical_to_serial() {
        use crate::scheduler::Scheduler;
        use noc_ctg::prelude::{TgffConfig, TgffGenerator};
        let p = Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .pe_mix(PeCatalog::date04().cycle_mix())
            .build()
            .unwrap();
        for seed in [2u64, 5] {
            let mut cfg = TgffConfig::small(seed);
            cfg.deadline_laxity = 0.95; // provoke misses so GTM runs
            let g = TgffGenerator::new(cfg).generate(&p).unwrap();
            let base = crate::EasScheduler::base()
                .schedule(&g, &p)
                .unwrap()
                .schedule;
            let (serial, serial_stats) = search_and_repair(&g, &p, base.clone());
            assert!(
                serial_stats.trials > 0,
                "seed {seed}: workload must exercise repair"
            );
            for threads in [2usize, 4, 7] {
                let (par, par_stats) = search_and_repair_threads(&g, &p, base.clone(), threads);
                assert_eq!(par, serial, "seed {seed} threads {threads}");
                assert_eq!(par_stats, serial_stats, "seed {seed} threads {threads}");
            }
        }
    }

    /// A schedule struck by a PE fault is evacuated, re-timed on the
    /// faulted platform and repaired — never placing anything on the
    /// dead PE.
    #[test]
    fn repair_with_faults_evacuates_dead_pes() {
        use crate::scheduler::Scheduler;
        let pristine = platform();
        let mut b = TaskGraph::builder("fault", 4);
        let mk = |n: &str| {
            Task::uniform(n, 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(1_000))
        };
        let a = b.add_task(mk("a"));
        let c = b.add_task(mk("c"));
        let d = b.add_task(mk("d"));
        b.add_edge(a, c, noc_platform::units::Volume::from_bits(320))
            .unwrap();
        let g = b.build().unwrap();
        let schedule = crate::EasScheduler::full()
            .schedule(&g, &pristine)
            .unwrap()
            .schedule;

        // Kill the PE hosting task `a` (corner kills keep 2x2 connected).
        let dead = schedule.task(a).pe;
        let faulted = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .faults(FaultSet::parse(&format!("tile:{}", dead.index())).unwrap())
            .build()
            .unwrap();
        let (repaired, _) =
            repair_with_faults(&g, &faulted, &schedule, 1).expect("evacuation re-times");
        for t in [a, c, d] {
            assert_ne!(repaired.task(t).pe, dead, "task {t} still on dead PE");
        }
        validate(&repaired, &g, &faulted).expect("valid on the faulted platform");
        // Deterministic: a second run reproduces the schedule exactly.
        let (again, _) = repair_with_faults(&g, &faulted, &schedule, 1).unwrap();
        assert_eq!(again, repaired);
    }

    /// Link faults alone re-time the schedule onto detour routes.
    #[test]
    fn repair_with_faults_handles_link_faults() {
        use crate::scheduler::Scheduler;
        let pristine = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .pe_mix(PeCatalog::date04().cycle_mix())
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("linkfault", 4);
        let a = b.add_task(
            Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(2_000)),
        );
        let c = b.add_task(
            Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(2_000)),
        );
        b.add_edge(a, c, noc_platform::units::Volume::from_bits(640))
            .unwrap();
        let g = b.build().unwrap();
        let schedule = crate::EasScheduler::full()
            .schedule(&g, &pristine)
            .unwrap()
            .schedule;
        let faulted = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .pe_mix(PeCatalog::date04().cycle_mix())
            .faults(FaultSet::parse("link:0-1").unwrap())
            .build()
            .unwrap();
        let (repaired, _) = repair_with_faults(&g, &faulted, &schedule, 1).expect("re-times");
        validate(&repaired, &g, &faulted).expect("valid with detour routes");
    }

    /// GTM prefers the energetically cheapest destination that fixes the
    /// miss.
    #[test]
    fn gtm_tries_cheap_destinations_first() {
        // Heterogeneous energies: moving to PE1 is cheaper than PE2/PE3.
        let p = platform();
        let mut b = TaskGraph::builder("cheap", 4);
        let t0 = b.add_task(
            Task::new(
                "t0",
                vec![Time::new(100); 4],
                vec![
                    Energy::from_nj(1.0),
                    Energy::from_nj(2.0),
                    Energy::from_nj(50.0),
                    Energy::from_nj(50.0),
                ],
            )
            .with_deadline(Time::new(110)),
        );
        let t1 = b.add_task(
            Task::new(
                "t1",
                vec![Time::new(100); 4],
                vec![
                    Energy::from_nj(1.0),
                    Energy::from_nj(2.0),
                    Energy::from_nj(50.0),
                    Energy::from_nj(50.0),
                ],
            )
            .with_deadline(Time::new(110)),
        );
        let g = b.build().unwrap();
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(0), PeId::new(0)],
            order: vec![vec![t0, t1], vec![], vec![], vec![]],
        };
        let bad = retime(&g, &p, &oa).unwrap();
        let (fixed, _) = search_and_repair(&g, &p, bad);
        assert!(fixed.deadline_misses(&g).is_empty());
        // One stays on PE0, the migrated one went to the cheap PE1.
        let pes: Vec<PeId> = vec![fixed.task(t0).pe, fixed.task(t1).pe];
        assert!(pes.contains(&PeId::new(0)));
        assert!(pes.contains(&PeId::new(1)));
    }
}
