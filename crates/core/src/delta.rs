//! Incremental (delta) scheduling: repair a prior schedule under a
//! typed edit sequence instead of rescheduling from scratch.
//!
//! The paper's search-and-repair machinery (Step 3, Fig. 4) operates on
//! *any* valid (assignment, order) pair — which makes it a natural
//! warm-start engine: when a task graph or platform changes slightly,
//! the prior schedule is rebased onto the edited problem (surviving
//! tasks keep their PE and relative order; added or stranded tasks are
//! inserted cheapest-PE-first, mirroring the GTM destination rule) and
//! LTS/GTM repair fixes whatever the edits broke. The affected region
//! of each edit is captured as a *mask* — the dependency cone whose
//! timing can shift — reported for observability and used to decide
//! when a warm start is no longer worth it.
//!
//! Fallback rules (each reported via [`EventKind::DeltaDecision`] and
//! [`DeltaOutcome::reason`]):
//!
//! * `edit-storm` — the edit sequence is as large as the edited graph
//!   itself (`edits >= task_count`); rebasing would preserve nothing
//!   worth keeping, so schedule from scratch.
//! * `no-alive-pe` — a task must be (re)placed but no PE is alive.
//! * `retime-deadlock` — the rebased order contradicts the edited
//!   dependency graph across PEs; rather than heuristically untangling
//!   it, schedule from scratch.
//!
//! Determinism: rebasing is a pure function of (prior schedule, edits)
//! — candidate destinations are ordered by `(energy, pe index)` exactly
//! like GTM — and the repair that follows is the byte-deterministic
//! parallel repair, so `repair_from` output is identical for every
//! thread count.

use serde::{Deserialize, Serialize};

use noc_ctg::analysis::GraphAnalysis;
use noc_ctg::task::{Task, TaskId};
use noc_ctg::TaskGraph;
use noc_platform::fault::FaultSet;
use noc_platform::routing::RoutingSpec;
use noc_platform::tile::{PeId, TileId};
use noc_platform::topology::Link;
use noc_platform::units::{Energy, Time, Volume};
use noc_platform::Platform;
use noc_schedule::{validate, Schedule, ScheduleStats};

use crate::limit::ComputeBudget;
use crate::repair::search_and_repair_traced;
use crate::retime::{retime, OrderedAssignment};
use crate::scheduler::{EasConfig, EasScheduler, ScheduleOutcome, Scheduler};
use crate::trace::{EventKind, NullSink, TraceSink, Tracer};
use crate::SchedulerError;

/// Warm start accepted: the prior schedule was rebased and repaired.
pub const REASON_WARM_START: &str = "warm-start";
/// Fallback: the edit sequence is as large as the edited graph.
pub const REASON_EDIT_STORM: &str = "edit-storm";
/// Fallback: a task needed (re)placement but no PE is alive.
pub const REASON_NO_ALIVE_PE: &str = "no-alive-pe";
/// Fallback: the rebased per-PE order deadlocks against the edited
/// dependency graph.
pub const REASON_RETIME_DEADLOCK: &str = "retime-deadlock";

/// An edge endpoint for [`Edit::AddTask`]: the *prior-graph* task index
/// on the other side, and the transfer volume (`bits == 0` is a pure
/// control dependency).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Prior-graph task index of the existing endpoint.
    pub task: u32,
    /// Transfer volume in bits; `0` makes it a control edge.
    pub bits: u64,
}

/// One typed change against a prior (graph, platform) pair.
///
/// All task/edge references use **prior-graph indices** — the indices
/// the caller's prior schedule talks about — even when earlier edits in
/// the same sequence removed tasks (edits never re-index each other).
/// Tasks added by the sequence are not addressable by later edits.
/// PE and tile references use platform indices; links are edited as
/// *channels* (both directions at once), matching the `link:a-b` fault
/// spec syntax.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Edit {
    /// Add a task with per-PE cost vectors and optional deadline,
    /// wired to existing tasks via `edges_in` (prior task → new) and
    /// `edges_out` (new → prior task).
    AddTask {
        /// Task name in the edited graph.
        name: String,
        /// Per-PE execution times in ticks (must match the PE count).
        exec_times: Vec<u64>,
        /// Per-PE execution energies in nJ (must match the PE count).
        exec_energies: Vec<f64>,
        /// Absolute deadline in ticks; `None` leaves it unconstrained.
        #[serde(default)]
        deadline: Option<u64>,
        /// Incoming dependencies from prior tasks.
        #[serde(default)]
        edges_in: Vec<EdgeRef>,
        /// Outgoing dependencies to prior tasks.
        #[serde(default)]
        edges_out: Vec<EdgeRef>,
    },
    /// Remove a task and every edge incident to it.
    RemoveTask {
        /// Prior-graph task index.
        task: u32,
    },
    /// Replace a task's per-PE cost vectors (times and energies).
    SetExecTime {
        /// Prior-graph task index.
        task: u32,
        /// New per-PE execution times in ticks.
        exec_times: Vec<u64>,
        /// New per-PE execution energies in nJ.
        exec_energies: Vec<f64>,
    },
    /// Change (or clear) a task's deadline.
    SetDeadline {
        /// Prior-graph task index.
        task: u32,
        /// New absolute deadline in ticks; `None` clears it.
        #[serde(default)]
        deadline: Option<u64>,
    },
    /// Change the volume of an existing edge (`0` turns it into a
    /// control edge).
    SetEdgeVolume {
        /// Prior-graph producer task index.
        src: u32,
        /// Prior-graph consumer task index.
        dst: u32,
        /// New volume in bits.
        bits: u64,
    },
    /// Mark a PE's tile failed (its tasks must evacuate).
    FailPe {
        /// PE index.
        pe: u32,
    },
    /// Clear a tile failure previously set on `pe`'s tile.
    RestorePe {
        /// PE index.
        pe: u32,
    },
    /// Fail the channel between two adjacent tiles (both directions).
    FailLink {
        /// One endpoint tile index.
        from: u32,
        /// The other endpoint tile index.
        to: u32,
    },
    /// Restore the channel between two adjacent tiles.
    RestoreLink {
        /// One endpoint tile index.
        from: u32,
        /// The other endpoint tile index.
        to: u32,
    },
}

impl Edit {
    /// `true` when the edit changes the platform rather than the graph.
    #[must_use]
    pub fn is_platform_edit(&self) -> bool {
        matches!(
            self,
            Edit::FailPe { .. }
                | Edit::RestorePe { .. }
                | Edit::FailLink { .. }
                | Edit::RestoreLink { .. }
        )
    }
}

/// The result of applying an edit sequence to a prior graph.
#[derive(Debug, Clone)]
pub struct AppliedEdits {
    /// The edited task graph.
    pub graph: TaskGraph,
    /// `id_map[old.index()]` — the new id of a surviving prior task,
    /// `None` when the sequence removed it.
    pub id_map: Vec<Option<TaskId>>,
    /// New ids of tasks added by the sequence, in edit order (they
    /// follow all surviving prior tasks).
    pub added: Vec<TaskId>,
    /// The edit sequence itself (mask computation re-walks it).
    pub edits: Vec<Edit>,
}

/// Working model of one prior task while edits are applied.
struct TaskDraft {
    name: String,
    exec_times: Vec<Time>,
    exec_energies: Vec<Energy>,
    deadline: Option<Time>,
}

fn cost_vectors(
    exec_times: &[u64],
    exec_energies: &[f64],
    pe_count: usize,
) -> Result<(Vec<Time>, Vec<Energy>), String> {
    if exec_times.len() != pe_count || exec_energies.len() != pe_count {
        return Err(format!(
            "cost vectors must cover {pe_count} PEs (got {} times, {} energies)",
            exec_times.len(),
            exec_energies.len()
        ));
    }
    if let Some(e) = exec_energies.iter().find(|e| !e.is_finite() || **e < 0.0) {
        return Err(format!(
            "execution energies must be finite and >= 0 (got {e})"
        ));
    }
    Ok((
        exec_times.iter().map(|&t| Time::new(t)).collect(),
        exec_energies.iter().map(|&e| Energy::from_nj(e)).collect(),
    ))
}

/// Applies `edits` to `prior`, producing the edited graph plus the
/// old-id → new-id mapping. Edits apply in sequence; all indices refer
/// to the *prior* graph (see [`Edit`]).
///
/// # Errors
///
/// A human-readable message when an edit references a task or edge that
/// does not exist (or was removed by an earlier edit in the sequence),
/// when cost vectors do not match the PE count, or when the edited
/// graph fails structural validation (cycle, duplicate edge, ...).
pub fn apply_edits(prior: &TaskGraph, edits: &[Edit]) -> Result<AppliedEdits, String> {
    let n = prior.task_count();
    let pe_count = prior.pe_count();
    let mut drafts: Vec<Option<TaskDraft>> = prior
        .tasks()
        .iter()
        .map(|t| {
            Some(TaskDraft {
                name: t.name().to_owned(),
                exec_times: t.exec_times().to_vec(),
                exec_energies: t.exec_energies().to_vec(),
                deadline: t.deadline(),
            })
        })
        .collect();
    // Edge volumes by prior (src, dst), kept sorted for determinism.
    let mut edge_volume: std::collections::BTreeMap<(u32, u32), Volume> = prior
        .edges()
        .iter()
        .map(|e| ((e.src.index() as u32, e.dst.index() as u32), e.volume))
        .collect();
    struct AddDraft {
        task: Task,
        edges_in: Vec<(u32, Volume)>,
        edges_out: Vec<(u32, Volume)>,
    }
    let mut adds: Vec<AddDraft> = Vec::new();

    let prior_task = |drafts: &[Option<TaskDraft>], t: u32| -> Result<(), String> {
        if (t as usize) >= n {
            return Err(format!(
                "edit references task {t} but the prior graph has {n} tasks"
            ));
        }
        if drafts[t as usize].is_none() {
            return Err(format!(
                "edit references task {t}, removed earlier in the sequence"
            ));
        }
        Ok(())
    };

    for edit in edits {
        match edit {
            Edit::AddTask {
                name,
                exec_times,
                exec_energies,
                deadline,
                edges_in,
                edges_out,
            } => {
                let (times, energies) = cost_vectors(exec_times, exec_energies, pe_count)?;
                let mut task = Task::new(name.clone(), times, energies);
                if let Some(d) = deadline {
                    task = task.with_deadline(Time::new(*d));
                }
                for r in edges_in.iter().chain(edges_out.iter()) {
                    prior_task(&drafts, r.task)?;
                }
                adds.push(AddDraft {
                    task,
                    edges_in: edges_in
                        .iter()
                        .map(|r| (r.task, Volume::from_bits(r.bits)))
                        .collect(),
                    edges_out: edges_out
                        .iter()
                        .map(|r| (r.task, Volume::from_bits(r.bits)))
                        .collect(),
                });
            }
            Edit::RemoveTask { task } => {
                prior_task(&drafts, *task)?;
                drafts[*task as usize] = None;
                edge_volume.retain(|&(s, d), _| s != *task && d != *task);
                for add in &mut adds {
                    add.edges_in.retain(|&(t, _)| t != *task);
                    add.edges_out.retain(|&(t, _)| t != *task);
                }
            }
            Edit::SetExecTime {
                task,
                exec_times,
                exec_energies,
            } => {
                prior_task(&drafts, *task)?;
                let (times, energies) = cost_vectors(exec_times, exec_energies, pe_count)?;
                let draft = drafts[*task as usize].as_mut().expect("checked");
                draft.exec_times = times;
                draft.exec_energies = energies;
            }
            Edit::SetDeadline { task, deadline } => {
                prior_task(&drafts, *task)?;
                drafts[*task as usize].as_mut().expect("checked").deadline =
                    deadline.map(Time::new);
            }
            Edit::SetEdgeVolume { src, dst, bits } => {
                prior_task(&drafts, *src)?;
                prior_task(&drafts, *dst)?;
                match edge_volume.get_mut(&(*src, *dst)) {
                    Some(v) => *v = Volume::from_bits(*bits),
                    None => {
                        return Err(format!("no edge {src} -> {dst} in the prior graph"));
                    }
                }
            }
            // Platform edits are handled by `apply_platform_edits`.
            Edit::FailPe { .. }
            | Edit::RestorePe { .. }
            | Edit::FailLink { .. }
            | Edit::RestoreLink { .. } => {}
        }
    }

    // Rebuild: surviving prior tasks in ascending prior id, then the
    // added tasks in edit order.
    let mut builder = TaskGraph::builder(prior.name(), pe_count);
    let mut id_map: Vec<Option<TaskId>> = vec![None; n];
    for (old, draft) in drafts.into_iter().enumerate() {
        if let Some(d) = draft {
            let mut task = Task::new(d.name, d.exec_times, d.exec_energies);
            if let Some(dl) = d.deadline {
                task = task.with_deadline(dl);
            }
            id_map[old] = Some(builder.add_task(task));
        }
    }
    let mut added = Vec::with_capacity(adds.len());
    for add in &adds {
        added.push(builder.add_task(add.task.clone()));
    }
    let map = |t: u32, id_map: &[Option<TaskId>]| id_map[t as usize].expect("survivor");
    for (&(s, d), &v) in &edge_volume {
        builder
            .add_edge(map(s, &id_map), map(d, &id_map), v)
            .map_err(|e| e.to_string())?;
    }
    for (i, add) in adds.iter().enumerate() {
        for &(t, v) in &add.edges_in {
            builder
                .add_edge(map(t, &id_map), added[i], v)
                .map_err(|e| e.to_string())?;
        }
        for &(t, v) in &add.edges_out {
            builder
                .add_edge(added[i], map(t, &id_map), v)
                .map_err(|e| e.to_string())?;
        }
    }
    let graph = builder.build().map_err(|e| e.to_string())?;
    Ok(AppliedEdits {
        graph,
        id_map,
        added,
        edits: edits.to_vec(),
    })
}

/// Applies the *platform* edits of a sequence (`FailPe` / `RestorePe` /
/// `FailLink` / `RestoreLink`) to `prior`, rebuilding it with the
/// edited fault set. Graph edits in the sequence are ignored here.
///
/// # Errors
///
/// A message when an edit references a tile outside the platform, or
/// when the platform uses an explicit routing table (tables cannot be
/// rebuilt from their name, so delta edits are limited to the named
/// routing policies).
pub fn apply_platform_edits(prior: &Platform, edits: &[Edit]) -> Result<Platform, String> {
    if !edits.iter().any(Edit::is_platform_edit) {
        return Ok(prior.clone());
    }
    let tiles = prior.tile_count() as u32;
    let check_tile = |t: u32| -> Result<TileId, String> {
        if (t as usize) < prior.tile_count() {
            Ok(TileId::new(t))
        } else {
            Err(format!(
                "edit references tile {t} but the platform has {tiles} tiles"
            ))
        }
    };
    let mut failed_tiles: Vec<TileId> = prior.faults().failed_tiles().to_vec();
    let mut failed_links: Vec<Link> = prior.faults().failed_links().to_vec();
    for edit in edits {
        match edit {
            Edit::FailPe { pe } => {
                let tile = check_tile(*pe)?;
                if !failed_tiles.contains(&tile) {
                    failed_tiles.push(tile);
                }
            }
            Edit::RestorePe { pe } => {
                let tile = check_tile(*pe)?;
                failed_tiles.retain(|&t| t != tile);
            }
            Edit::FailLink { from, to } => {
                let (a, b) = (check_tile(*from)?, check_tile(*to)?);
                for link in [Link::new(a, b), Link::new(b, a)] {
                    if !failed_links.contains(&link) {
                        failed_links.push(link);
                    }
                }
            }
            Edit::RestoreLink { from, to } => {
                let (a, b) = (check_tile(*from)?, check_tile(*to)?);
                failed_links.retain(|&l| l != Link::new(a, b) && l != Link::new(b, a));
            }
            _ => {}
        }
    }
    let routing = match prior.routing_name() {
        "xy" => RoutingSpec::Xy,
        "yx" => RoutingSpec::Yx,
        "shortest-path" => RoutingSpec::ShortestPath,
        other => {
            return Err(format!(
                "platform edits require a named routing policy, not '{other}'"
            ));
        }
    };
    let mut faults = FaultSet::new();
    for tile in failed_tiles {
        faults.fail_tile(tile);
    }
    for link in failed_links {
        faults.fail_link(link);
    }
    Platform::builder()
        .topology(prior.topology().clone())
        .routing(routing)
        .pes(prior.pe_classes().to_vec())
        .energy_model(*prior.energy_model())
        .link_bandwidth(prior.link_bandwidth())
        .faults(faults)
        .build()
        .map_err(|e| e.to_string())
}

impl AppliedEdits {
    /// The *mask* of one edit: the new-graph tasks whose timing the
    /// edit can move, as an ascending task-id list.
    ///
    /// * `AddTask` — the new task and its dependency cone (descendants).
    /// * `RemoveTask` — the removed task's surviving prior successors
    ///   and their cones (their inputs changed).
    /// * `SetExecTime` — the task and its cone.
    /// * `SetDeadline` — the task alone (timing is unchanged; only its
    ///   criticality moves).
    /// * `SetEdgeVolume` — the producer, the consumer and its cone.
    /// * `FailPe` — every surviving task the prior schedule ran on that
    ///   PE, with their cones (they must evacuate).
    /// * `RestorePe` — empty (capacity only grows).
    /// * `FailLink` / `RestoreLink` — every task, conservatively: route
    ///   changes can move any transfer's contention.
    ///
    /// `edit_index` addresses into [`AppliedEdits::edits`]; `prior` and
    /// `prior_schedule` are the graph and schedule the edits were
    /// applied against.
    ///
    /// # Panics
    ///
    /// Panics when `edit_index` is out of range, or when `prior` /
    /// `prior_schedule` do not match the graph the edits were applied
    /// to.
    #[must_use]
    pub fn edit_mask(
        &self,
        edit_index: usize,
        prior: &TaskGraph,
        prior_schedule: &Schedule,
    ) -> Vec<TaskId> {
        let analysis = GraphAnalysis::new(&self.graph);
        self.mask_with(&analysis, edit_index, prior, prior_schedule)
    }

    fn mask_with(
        &self,
        analysis: &GraphAnalysis,
        edit_index: usize,
        prior: &TaskGraph,
        prior_schedule: &Schedule,
    ) -> Vec<TaskId> {
        let edit = &self.edits[edit_index];
        let mut hit = vec![false; self.graph.task_count()];
        let cone = |t: TaskId, hit: &mut Vec<bool>| {
            hit[t.index()] = true;
            for x in self.graph.task_ids() {
                if analysis.is_ancestor(t, x) {
                    hit[x.index()] = true;
                }
            }
        };
        let mapped = |t: u32| self.id_map.get(t as usize).copied().flatten();
        match edit {
            Edit::AddTask { .. } => {
                let nth = self.edits[..edit_index]
                    .iter()
                    .filter(|e| matches!(e, Edit::AddTask { .. }))
                    .count();
                cone(self.added[nth], &mut hit);
            }
            Edit::RemoveTask { task } => {
                // The removed task's prior successors lost an input (and
                // the PE it ran on gained a gap): their cones can move.
                for s in prior.successors(TaskId::new(*task)) {
                    if let Some(new) = mapped(s.index() as u32) {
                        cone(new, &mut hit);
                    }
                }
                let pe = prior_schedule.task(TaskId::new(*task)).pe;
                for (old, new) in self.id_map.iter().enumerate() {
                    if let Some(new) = new {
                        if prior_schedule.task(TaskId::new(old as u32)).pe == pe {
                            cone(*new, &mut hit);
                        }
                    }
                }
            }
            Edit::SetExecTime { task, .. } => {
                if let Some(t) = mapped(*task) {
                    cone(t, &mut hit);
                }
            }
            Edit::SetDeadline { task, .. } => {
                if let Some(t) = mapped(*task) {
                    hit[t.index()] = true;
                }
            }
            Edit::SetEdgeVolume { src, dst, .. } => {
                if let Some(s) = mapped(*src) {
                    hit[s.index()] = true;
                }
                if let Some(d) = mapped(*dst) {
                    cone(d, &mut hit);
                }
            }
            Edit::FailPe { pe } => {
                let pe = PeId::new(*pe);
                for (old, new) in self.id_map.iter().enumerate() {
                    if let Some(new) = new {
                        if prior_schedule.task(TaskId::new(old as u32)).pe == pe {
                            cone(*new, &mut hit);
                        }
                    }
                }
            }
            Edit::RestorePe { .. } => {}
            Edit::FailLink { .. } | Edit::RestoreLink { .. } => {
                hit.iter_mut().for_each(|h| *h = true);
            }
        }
        hit.iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(i, _)| TaskId::new(i as u32))
            .collect()
    }

    /// The union of every edit's mask (ascending, deduplicated): the
    /// full affected region of the sequence.
    ///
    /// # Panics
    ///
    /// Panics when `prior` / `prior_schedule` do not match the graph
    /// the edits were applied to.
    #[must_use]
    pub fn mask(&self, prior: &TaskGraph, prior_schedule: &Schedule) -> Vec<TaskId> {
        let analysis = GraphAnalysis::new(&self.graph);
        let mut hit = vec![false; self.graph.task_count()];
        for i in 0..self.edits.len() {
            for t in self.mask_with(&analysis, i, prior, prior_schedule) {
                hit[t.index()] = true;
            }
        }
        hit.iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(i, _)| TaskId::new(i as u32))
            .collect()
    }
}

/// The result of a delta-scheduling run.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The repaired (or rescheduled) schedule with its validation
    /// report, statistics and repair counters.
    pub outcome: ScheduleOutcome,
    /// `true` when the prior schedule was warm-started (rebased and
    /// repaired); `false` when the run fell back to a full reschedule.
    pub warm_start: bool,
    /// Why: [`REASON_WARM_START`] or one of the fallback reasons.
    pub reason: &'static str,
    /// Number of edits applied.
    pub edits: usize,
    /// Size of the union mask (affected-region tasks).
    pub mask_tasks: usize,
}

/// Untraced, unbudgeted [`repair_from_traced`].
///
/// # Errors
///
/// See [`repair_from_traced`].
pub fn repair_from(
    prior: &TaskGraph,
    prior_schedule: &Schedule,
    platform: &Platform,
    applied: &AppliedEdits,
    threads: usize,
) -> Result<DeltaOutcome, SchedulerError> {
    repair_from_traced(
        prior,
        prior_schedule,
        platform,
        applied,
        threads,
        &ComputeBudget::unlimited(),
        &mut NullSink,
    )
}

/// Repairs `prior_schedule` under `applied` edits on the (possibly
/// edited) `platform`, falling back to a full [`EasScheduler`] run when
/// the warm start is invalid (see the module docs for the rules).
/// Either way a [`EventKind::DeltaDecision`] trace event records the
/// choice, so `explain` can narrate it.
///
/// `prior_schedule` must be a schedule of the graph the edits were
/// applied to; `platform` must be the *edited* platform (see
/// [`apply_platform_edits`]).
///
/// # Errors
///
/// [`SchedulerError`] from the repair or fallback pipeline — budget
/// exhaustion, cancellation, or an invalid result schedule.
///
/// # Panics
///
/// Panics if `prior_schedule` does not cover the prior graph
/// (`id_map` length mismatch).
pub fn repair_from_traced(
    prior: &TaskGraph,
    prior_schedule: &Schedule,
    platform: &Platform,
    applied: &AppliedEdits,
    threads: usize,
    budget: &ComputeBudget,
    sink: &mut dyn TraceSink,
) -> Result<DeltaOutcome, SchedulerError> {
    assert_eq!(
        prior_schedule.task_count(),
        applied.id_map.len(),
        "prior schedule must cover the prior graph"
    );
    let graph = &applied.graph;
    let mask = applied.mask(prior, prior_schedule);
    let plan = plan_warm_start(prior_schedule, platform, applied);
    let (warm_start, reason) = match &plan {
        Ok(_) => (true, REASON_WARM_START),
        Err(reason) => (false, *reason),
    };
    {
        let mut tracer = Tracer::new(sink);
        tracer.emit(EventKind::DeltaDecision {
            warm_start,
            reason,
            edits: applied.edits.len(),
            mask_tasks: mask.len(),
        });
    }
    let outcome = match plan {
        Ok(rebased) => {
            let mut tracer = Tracer::new(sink);
            tracer.begin("repair");
            let (schedule, repair) =
                search_and_repair_traced(graph, platform, rebased, threads, budget, &mut tracer)?;
            tracer.poll("repair", budget);
            tracer.end("repair");
            tracer.begin("validate");
            let report = validate(&schedule, graph, platform)?;
            let stats = ScheduleStats::compute(&schedule, graph, platform);
            tracer.end("validate");
            ScheduleOutcome {
                schedule,
                report,
                stats,
                repair,
            }
        }
        Err(_) => EasScheduler::new(EasConfig::default().with_threads(threads))
            .schedule_traced(graph, platform, budget, sink)?,
    };
    Ok(DeltaOutcome {
        outcome,
        warm_start,
        reason,
        edits: applied.edits.len(),
        mask_tasks: mask.len(),
    })
}

/// Rebases the prior schedule onto the edited problem: survivors keep
/// their PE and relative order, added tasks are inserted cheapest-PE
/// first before their first descendant, stranded tasks (on failed PEs)
/// evacuate to the cheapest alive PE anchored near their prior start.
fn plan_warm_start(
    prior_schedule: &Schedule,
    platform: &Platform,
    applied: &AppliedEdits,
) -> Result<Schedule, &'static str> {
    let graph = &applied.graph;
    if applied.edits.len() >= graph.task_count() {
        return Err(REASON_EDIT_STORM);
    }
    let analysis = GraphAnalysis::new(graph);
    let n = graph.task_count();
    // Prior start times keyed by new id (added tasks have none).
    let mut prior_start: Vec<Option<Time>> = vec![None; n];
    let mut assignment: Vec<Option<PeId>> = vec![None; n];
    for (old, new) in applied.id_map.iter().enumerate() {
        if let Some(new) = new {
            let placement = prior_schedule.task(TaskId::new(old as u32));
            assignment[new.index()] = Some(placement.pe);
            prior_start[new.index()] = Some(placement.start);
        }
    }
    let mut order: Vec<Vec<TaskId>> = platform
        .pes()
        .map(|pe| {
            prior_schedule
                .tasks_on(pe)
                .into_iter()
                .filter_map(|old| applied.id_map[old.index()])
                .collect()
        })
        .collect();

    let place = |t: TaskId, assignment: &[Option<PeId>]| -> Result<PeId, &'static str> {
        let mut best: Option<(Energy, PeId)> = None;
        for k in platform.alive_pes() {
            let e = attach_energy(graph, platform, assignment, t, k);
            let better = match best {
                None => true,
                Some((be, bk)) => {
                    (e, k.index()).partial_cmp(&(be, bk.index())) == Some(std::cmp::Ordering::Less)
                }
            };
            if better {
                best = Some((e, k));
            }
        }
        best.map(|(_, k)| k).ok_or(REASON_NO_ALIVE_PE)
    };

    // Added tasks, ascending new id: cheapest alive PE, anchored before
    // their first already-queued descendant (so dependencies can order).
    for &a in &applied.added {
        let dst = place(a, &assignment)?;
        assignment[a.index()] = Some(dst);
        let queue = &mut order[dst.index()];
        let anchor = queue
            .iter()
            .position(|&x| analysis.is_ancestor(a, x))
            .unwrap_or(queue.len());
        queue.insert(anchor, a);
    }

    // Stranded survivors (their prior PE is now dead): evacuate
    // ascending new id, anchored near their prior start time.
    let stranded: Vec<TaskId> = graph
        .task_ids()
        .filter(|t| {
            let pe = assignment[t.index()].expect("every task assigned");
            !platform.pe_alive(pe)
        })
        .collect();
    for t in stranded {
        let src = assignment[t.index()].expect("assigned");
        order[src.index()].retain(|&x| x != t);
        assignment[t.index()] = None;
        let dst = place(t, &assignment)?;
        assignment[t.index()] = Some(dst);
        let old_start = prior_start[t.index()].unwrap_or(Time::INFINITY);
        let queue = &mut order[dst.index()];
        let anchor = queue
            .iter()
            .position(|&x| prior_start[x.index()].unwrap_or(Time::INFINITY) > old_start)
            .unwrap_or(queue.len());
        queue.insert(anchor, t);
    }

    let oa = OrderedAssignment {
        assignment: assignment
            .into_iter()
            .map(|p| p.expect("every task assigned"))
            .collect(),
        order,
    };
    retime(graph, platform, &oa).ok_or(REASON_RETIME_DEADLOCK)
}

/// Energy of attaching `t` to PE `k` given the partial assignment:
/// execution energy plus transfer energy of every already-assigned
/// neighbor — the same cost shape as the GTM destination ordering.
fn attach_energy(
    graph: &TaskGraph,
    platform: &Platform,
    assignment: &[Option<PeId>],
    t: TaskId,
    k: PeId,
) -> Energy {
    let mut total = graph.task(t).exec_energy(k);
    for &e in graph.incoming(t) {
        let edge = graph.edge(e);
        if let Some(src) = assignment[edge.src.index()] {
            total += platform.transfer_energy(src.tile(), k.tile(), edge.volume);
        }
    }
    for &e in graph.outgoing(t) {
        let edge = graph.edge(e);
        if let Some(dst) = assignment[edge.dst.index()] {
            total += platform.transfer_energy(k.tile(), dst.tile(), edge.volume);
        }
    }
    total
}
