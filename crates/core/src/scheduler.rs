//! Public scheduler API: configurations, outcomes and the [`Scheduler`]
//! trait.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_ctg::task::Task;
use noc_ctg::TaskGraph;
use noc_platform::Platform;
use noc_schedule::{validate, Schedule, ScheduleStats, ValidationReport};

use crate::budget::SlackBudgets;
use crate::edf::edf_schedule;
use crate::level::level_schedule_threads_budgeted;
use crate::limit::ComputeBudget;
use crate::placer::Placer;
use crate::repair::{search_and_repair_traced, RepairStats};
use crate::trace::{EventKind, NullSink, TraceSink, Tracer};
use crate::SchedulerError;

/// How communication delay is modelled during `F(i,k)` estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommModel {
    /// Contention-aware: transactions occupy link schedule tables and
    /// wait for a common free slot (the paper's Fig. 3 scheduler).
    #[default]
    Contention,
    /// Naive fixed delay proportional to volume, ignoring the network
    /// state — the assumption the paper criticizes in related work.
    /// Trial estimates use it; committed schedules are always
    /// materialized contention-aware so they stay valid. Exists for the
    /// ablation study.
    FixedDelay,
}

/// The task weight used by slack budgeting (Step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WeightFunction {
    /// The paper's weight `W = VAR_e · VAR_r`.
    #[default]
    VarEnergyTimesVarTime,
    /// Energy variance only (ablation).
    VarEnergy,
    /// Execution-time variance only (ablation).
    VarTime,
    /// Mean execution time (ablation: longer tasks get more slack).
    MeanTime,
    /// Equal weights (ablation: uniform slack split).
    Uniform,
}

impl WeightFunction {
    /// Evaluates the weight of one task.
    #[must_use]
    pub fn weight(self, task: &Task) -> f64 {
        match self {
            WeightFunction::VarEnergyTimesVarTime => {
                task.exec_energy_variance() * task.exec_time_variance()
            }
            WeightFunction::VarEnergy => task.exec_energy_variance(),
            WeightFunction::VarTime => task.exec_time_variance(),
            WeightFunction::MeanTime => task.mean_exec_time(),
            WeightFunction::Uniform => 1.0,
        }
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WeightFunction::VarEnergyTimesVarTime => "var-e*var-r",
            WeightFunction::VarEnergy => "var-e",
            WeightFunction::VarTime => "var-r",
            WeightFunction::MeanTime => "mean-time",
            WeightFunction::Uniform => "uniform",
        }
    }
}

/// Configuration of the [`EasScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EasConfig {
    /// Step 1 weight function (paper: `VAR_e · VAR_r`).
    pub weight_function: WeightFunction,
    /// Run the Step 3 search-and-repair pass (paper's full EAS). With
    /// `false` this is the paper's **EAS-base**.
    pub search_and_repair: bool,
    /// Communication model for trial placements (ablation knob).
    pub comm_model: CommModel,
    /// Use slack budgeting. With `false` every budget is infinite and
    /// Step 2 degenerates to pure greedy energy minimization (ablation).
    pub budgeting: bool,
    /// Worker threads for trial `F(i,k)` evaluation and GTM candidate
    /// re-timing (`0` = all hardware threads, `1` = serial). The
    /// schedule is byte-identical for every value — parallelism only
    /// changes wall-clock time, never results.
    pub threads: usize,
}

impl Default for EasConfig {
    /// The paper's full EAS.
    fn default() -> Self {
        EasConfig {
            weight_function: WeightFunction::VarEnergyTimesVarTime,
            search_and_repair: true,
            comm_model: CommModel::Contention,
            budgeting: true,
            threads: 1,
        }
    }
}

impl EasConfig {
    /// EAS without search-and-repair (the paper's EAS-base).
    #[must_use]
    pub fn base() -> Self {
        EasConfig {
            search_and_repair: false,
            ..EasConfig::default()
        }
    }

    /// Same configuration with a different thread count (`0` = all
    /// hardware threads).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Everything a scheduling run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// The (validated) schedule artifact.
    pub schedule: Schedule,
    /// Structural validation outcome, including deadline misses.
    pub report: ValidationReport,
    /// Energy / makespan / hops statistics.
    pub stats: ScheduleStats,
    /// Search-and-repair counters (zeroes for schedulers that do not
    /// repair).
    pub repair: RepairStats,
}

/// A static scheduler for CTGs on NoC platforms.
pub trait Scheduler {
    /// Short name for reports (e.g. `"eas"`, `"edf"`).
    fn name(&self) -> &str;

    /// Produces a validated schedule for `graph` on `platform`.
    ///
    /// # Errors
    ///
    /// * [`SchedulerError::PeCountMismatch`] on graph/platform mismatch,
    /// * [`SchedulerError::InvalidSchedule`] if (due to an internal bug)
    ///   the produced schedule fails validation.
    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError>;

    /// Like [`schedule`](Scheduler::schedule), bounded by a
    /// [`ComputeBudget`] polled at the scheduler's coarse checkpoints.
    ///
    /// The default implementation ignores the budget — appropriate for
    /// the cheap polynomial baselines (EDF, DLS), whose runtime is
    /// bounded by construction. Schedulers with unbounded search
    /// (EAS repair, annealing) override it and stop early with clean
    /// state: no partial placement or link reservation survives an
    /// interrupt, so an uninterrupted rerun is byte-identical to a run
    /// that never had a budget.
    ///
    /// # Errors
    ///
    /// Everything [`schedule`](Scheduler::schedule) returns, plus
    /// [`SchedulerError::Interrupted`] /
    /// [`SchedulerError::BudgetExhausted`] when the budget fires.
    fn schedule_with_budget(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        let _ = budget;
        self.schedule(graph, platform)
    }

    /// Like [`schedule_with_budget`](Scheduler::schedule_with_budget),
    /// emitting decision [`trace`](crate::trace) events into `sink`.
    ///
    /// Tracing is strictly observational: the returned outcome is
    /// byte-identical to an untraced run, for every thread count. The
    /// default implementation ignores the sink — appropriate for
    /// baselines with no interesting decision structure; the EAS family
    /// overrides it with full pipeline instrumentation.
    ///
    /// # Errors
    ///
    /// Everything [`schedule_with_budget`](Scheduler::schedule_with_budget)
    /// returns.
    fn schedule_traced(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
        sink: &mut dyn TraceSink,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        let _ = sink;
        self.schedule_with_budget(graph, platform, budget)
    }
}

/// The paper's Energy-Aware Scheduler.
#[derive(Debug, Clone, Default)]
pub struct EasScheduler {
    config: EasConfig,
    name: String,
}

impl EasScheduler {
    /// Creates a scheduler with the given configuration.
    #[must_use]
    pub fn new(config: EasConfig) -> Self {
        let name = if config.search_and_repair {
            "eas"
        } else {
            "eas-base"
        };
        EasScheduler {
            config,
            name: name.to_owned(),
        }
    }

    /// The paper's full EAS (budgeting + level scheduling + repair).
    #[must_use]
    pub fn full() -> Self {
        EasScheduler::new(EasConfig::default())
    }

    /// The paper's EAS-base (no search-and-repair).
    #[must_use]
    pub fn base() -> Self {
        EasScheduler::new(EasConfig::base())
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &EasConfig {
        &self.config
    }
}

impl Scheduler for EasScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        self.schedule_with_budget(graph, platform, &ComputeBudget::unlimited())
    }

    fn schedule_with_budget(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        self.schedule_traced(graph, platform, budget, &mut NullSink)
    }

    fn schedule_traced(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        budget: &ComputeBudget,
        sink: &mut dyn TraceSink,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        let mut tracer = Tracer::new(sink);
        // Step 1: slack budgeting (communication-aware: see DESIGN.md §6).
        tracer.begin("budgeting");
        let budgets = if self.config.budgeting {
            SlackBudgets::compute_with_comm(
                graph,
                self.config.weight_function,
                platform.link_bandwidth(),
            )
        } else {
            SlackBudgets::unbounded(graph)
        };
        if tracer.on() {
            for t in graph.task_ids() {
                let task = graph.task(t);
                let bd = budgets.budgeted_deadline(t);
                tracer.emit(EventKind::TaskBudget {
                    task: t.index(),
                    task_name: task.name().to_owned(),
                    weight: self.config.weight_function.weight(task),
                    bd_ticks: (!bd.is_infinite()).then(|| bd.ticks()),
                });
            }
        }
        tracer.poll("budgeting", budget);
        tracer.end("budgeting");
        // Step 2: level-based scheduling. An interrupt drops the placer —
        // trial evaluation always rolls its table checkpoints back and
        // only committed placements live in it, so nothing escapes.
        let mut placer = Placer::new(graph, platform)?;
        tracer.begin("level");
        level_schedule_threads_budgeted(
            &mut placer,
            &budgets,
            self.config.comm_model,
            self.config.threads,
            budget,
            &mut tracer,
        )?;
        tracer.poll("level", budget);
        tracer.end("level");
        let mut schedule = placer.into_schedule();
        // Step 3: search and repair.
        let mut repair = RepairStats::default();
        if self.config.search_and_repair {
            tracer.begin("repair");
            let (repaired, stats) = search_and_repair_traced(
                graph,
                platform,
                schedule,
                self.config.threads,
                budget,
                &mut tracer,
            )?;
            schedule = repaired;
            repair = stats;
            tracer.poll("repair", budget);
            tracer.end("repair");
        }
        tracer.begin("validate");
        let report = validate(&schedule, graph, platform)?;
        let stats = ScheduleStats::compute(&schedule, graph, platform);
        tracer.end("validate");
        Ok(ScheduleOutcome {
            schedule,
            report,
            stats,
            repair,
        })
    }
}

impl fmt::Display for EasScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.config.weight_function.name())
    }
}

/// The Dynamic-Level Scheduling baseline of Sih & Lee (see
/// [`crate::dls`]): communication-aware but energy-blind.
#[derive(Debug, Clone, Default)]
pub struct DlsScheduler;

impl DlsScheduler {
    /// Creates the baseline scheduler.
    #[must_use]
    pub fn new() -> Self {
        DlsScheduler
    }
}

impl Scheduler for DlsScheduler {
    fn name(&self) -> &str {
        "dls"
    }

    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        let mut placer = Placer::new(graph, platform)?;
        crate::dls::dls_schedule(&mut placer);
        let schedule = placer.into_schedule();
        let report = validate(&schedule, graph, platform)?;
        let stats = ScheduleStats::compute(&schedule, graph, platform);
        Ok(ScheduleOutcome {
            schedule,
            report,
            stats,
            repair: RepairStats::default(),
        })
    }
}

/// The EDF baseline scheduler (see [`crate::edf`]).
#[derive(Debug, Clone, Default)]
pub struct EdfScheduler;

impl EdfScheduler {
    /// Creates the baseline scheduler.
    #[must_use]
    pub fn new() -> Self {
        EdfScheduler
    }
}

impl Scheduler for EdfScheduler {
    fn name(&self) -> &str {
        "edf"
    }

    fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        let mut placer = Placer::new(graph, platform)?;
        edf_schedule(&mut placer);
        let schedule = placer.into_schedule();
        let report = validate(&schedule, graph, platform)?;
        let stats = ScheduleStats::compute(&schedule, graph, platform);
        Ok(ScheduleOutcome {
            schedule,
            report,
            stats,
            repair: RepairStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::prelude::*;
    use noc_platform::prelude::*;

    fn platform(n: u16) -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(n, n))
            .build()
            .unwrap()
    }

    #[test]
    fn eas_beats_edf_on_random_graph_energy() {
        let p = platform(4);
        let g = TgffGenerator::new(TgffConfig::small(11))
            .generate(&p)
            .unwrap();
        let eas = EasScheduler::full().schedule(&g, &p).expect("eas");
        let edf = EdfScheduler::new().schedule(&g, &p).expect("edf");
        assert!(
            eas.stats.energy.total() < edf.stats.energy.total(),
            "EAS {} should beat EDF {}",
            eas.stats.energy.total(),
            edf.stats.energy.total()
        );
    }

    #[test]
    fn eas_meets_deadlines_on_multimedia_apps() {
        for app in [MultimediaApp::AvEncoder, MultimediaApp::AvDecoder] {
            let p = platform(2);
            let g = app.build(Clip::Foreman, &p).unwrap();
            let out = EasScheduler::full().schedule(&g, &p).expect("schedules");
            assert!(
                out.report.meets_deadlines(),
                "{app}: {:?}",
                out.report.deadline_misses
            );
        }
    }

    #[test]
    fn eas_base_vs_eas_names() {
        assert_eq!(EasScheduler::base().name(), "eas-base");
        assert_eq!(EasScheduler::full().name(), "eas");
        assert_eq!(EdfScheduler::new().name(), "edf");
    }

    #[test]
    fn repair_never_worsens_misses() {
        let p = platform(4);
        for seed in 0..4 {
            let mut cfg = TgffConfig::small(seed);
            cfg.deadline_laxity = 0.95; // very tight: provoke misses
            let g = TgffGenerator::new(cfg).generate(&p).unwrap();
            let base = EasScheduler::base().schedule(&g, &p).expect("base");
            let full = EasScheduler::full().schedule(&g, &p).expect("full");
            assert!(
                full.report.deadline_misses.len() <= base.report.deadline_misses.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mismatched_platform_is_rejected() {
        let p4 = platform(2);
        let p9 = platform(3);
        let g = MultimediaApp::AvEncoder.build(Clip::Akiyo, &p4).unwrap();
        assert!(matches!(
            EasScheduler::full().schedule(&g, &p9),
            Err(SchedulerError::PeCountMismatch { .. })
        ));
        assert!(matches!(
            EdfScheduler::new().schedule(&g, &p9),
            Err(SchedulerError::PeCountMismatch { .. })
        ));
    }

    #[test]
    fn weight_function_names_are_distinct() {
        let fns = [
            WeightFunction::VarEnergyTimesVarTime,
            WeightFunction::VarEnergy,
            WeightFunction::VarTime,
            WeightFunction::MeanTime,
            WeightFunction::Uniform,
        ];
        let mut names: Vec<&str> = fns.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fns.len());
    }
}
