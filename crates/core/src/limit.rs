//! Compute budgets and cooperative cancellation.
//!
//! The EAS pipeline has an unbounded worst case: level scheduling is
//! polynomial but search-and-repair runs up to [`MAX_REPAIR_TRIALS`]
//! LTS/GTM trials and annealing multiplies chains by restarts. A
//! long-running service fronting the scheduler needs a way to say
//! "spend at most this much" and get control back *with clean state*.
//!
//! [`ComputeBudget`] bounds a single `schedule()` call by wall-clock
//! time and/or an abstract step count, and carries an optional
//! [`CancelToken`] that an external owner can flip at any moment. The
//! scheduler polls [`ComputeBudget::check`] at coarse, deterministic
//! checkpoints — level-scheduling round boundaries, repair trials, GTM
//! candidate blocks, annealing restarts and chain iterations — and
//! unwinds with a typed [`Interrupt`] when the budget is gone. No
//! committed reservation is ever left behind: interruption propagates
//! as an error before any partial schedule escapes, so re-running the
//! same problem without a budget is byte-identical to a run that was
//! never interrupted.
//!
//! Step budgets are deterministic (the checkpoint sequence is a pure
//! function of the problem); wall-clock budgets are inherently not —
//! callers that need byte-stable behaviour across machines should
//! bound steps, or treat a wall-clock interruption as a signal to fall
//! back to a cheap deterministic baseline (the service falls back to
//! EDF; see `noc_svc`).
//!
//! [`MAX_REPAIR_TRIALS`]: crate::repair::MAX_REPAIR_TRIALS

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The [`CancelToken`] was cancelled by its owner.
    Cancelled,
    /// The wall-clock deadline passed.
    WallClock,
    /// The step allowance was consumed.
    Steps,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled by owner"),
            Interrupt::WallClock => write!(f, "wall-clock budget exhausted"),
            Interrupt::Steps => write!(f, "step budget exhausted"),
        }
    }
}

/// A shareable flag for cooperative cancellation.
///
/// Cloning is cheap (an `Arc` bump); any clone can cancel, and all
/// clones observe it. Cancellation is sticky — there is no reset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every holder sees it at its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A per-call compute allowance: wall-clock, steps, cancellation.
///
/// Budgets are passed by shared reference and are safe to poll from
/// the fan-out worker threads (`check` only touches atomics and a
/// monotonic clock read). An unlimited budget never interrupts and
/// costs one atomic increment per checkpoint.
#[derive(Debug, Default)]
pub struct ComputeBudget {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: AtomicU64,
}

impl ComputeBudget {
    /// A budget that never interrupts.
    #[must_use]
    pub fn unlimited() -> Self {
        ComputeBudget::default()
    }

    /// A budget that interrupts once `limit` has elapsed.
    #[must_use]
    pub fn wall_clock(limit: Duration) -> Self {
        ComputeBudget {
            deadline: Some(Instant::now() + limit),
            ..ComputeBudget::default()
        }
    }

    /// A budget that interrupts after `max_steps` checkpoint visits.
    ///
    /// Steps are abstract units (one per checkpoint), so the same
    /// problem always interrupts at the same point — this is the
    /// deterministic flavour of budgeting.
    #[must_use]
    pub fn steps(max_steps: u64) -> Self {
        ComputeBudget {
            max_steps: Some(max_steps),
            ..ComputeBudget::default()
        }
    }

    /// Attaches a cancellation token (checked before other limits).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Adds a wall-clock limit to an existing budget.
    #[must_use]
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Steps consumed so far (checkpoint visits).
    #[must_use]
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Records one checkpoint visit and interrupts if any limit is hit.
    ///
    /// Check order is cancellation, then steps, then wall clock, so a
    /// run with both a step and a time limit reports the deterministic
    /// cause when both would fire.
    ///
    /// # Errors
    ///
    /// The [`Interrupt`] naming the first exhausted limit.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        let used = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_steps {
            if used > max {
                return Err(Interrupt::Steps);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::WallClock);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let budget = ComputeBudget::unlimited();
        for _ in 0..10_000 {
            budget.check().expect("unlimited");
        }
        assert_eq!(budget.steps_used(), 10_000);
    }

    #[test]
    fn step_budget_interrupts_exactly_after_allowance() {
        let budget = ComputeBudget::steps(3);
        assert_eq!(budget.check(), Ok(()));
        assert_eq!(budget.check(), Ok(()));
        assert_eq!(budget.check(), Ok(()));
        assert_eq!(budget.check(), Err(Interrupt::Steps));
        assert_eq!(budget.check(), Err(Interrupt::Steps), "sticky");
    }

    #[test]
    fn zero_step_budget_interrupts_immediately() {
        assert_eq!(ComputeBudget::steps(0).check(), Err(Interrupt::Steps));
    }

    #[test]
    fn expired_wall_clock_interrupts() {
        let budget = ComputeBudget::wall_clock(Duration::ZERO);
        assert_eq!(budget.check(), Err(Interrupt::WallClock));
    }

    #[test]
    fn generous_wall_clock_passes() {
        let budget = ComputeBudget::wall_clock(Duration::from_secs(3600));
        assert_eq!(budget.check(), Ok(()));
    }

    #[test]
    fn cancel_token_wins_over_other_limits() {
        let token = CancelToken::new();
        let budget = ComputeBudget::steps(0).with_cancel(token.clone());
        assert_eq!(budget.check(), Err(Interrupt::Steps), "not yet cancelled");
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(budget.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_is_visible_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }
}
