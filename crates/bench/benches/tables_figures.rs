//! End-to-end regeneration cost of each paper artifact, at reduced scale
//! where the full version is minutes-long. The *results* are produced by
//! the `noc-bench` binaries; this bench tracks how long regeneration
//! takes so regressions in the experiment pipeline are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use noc_bench::experiments::{multimedia_table, tradeoff_sweep};
use noc_bench::platforms;
use noc_bench::runner::run_schedulers;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

fn bench_random_benchmark_unit(c: &mut Criterion) {
    // One benchmark of the Fig. 5 family (the figure runs ten of these).
    let platform = platforms::mesh_4x4();
    let graph = TgffGenerator::new(TgffConfig::category_i(0))
        .generate(&platform)
        .expect("valid");
    let mut group = c.benchmark_group("fig5_one_benchmark");
    group.sample_size(10);
    group.bench_function("eas_base_eas_edf", |b| {
        let base = EasScheduler::base();
        let full = EasScheduler::full();
        let edf = EdfScheduler::new();
        b.iter(|| {
            black_box(run_schedulers(&graph, &platform, &[&base, &full, &edf]).expect("schedules"))
        });
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_av_encoder", |b| {
        b.iter(|| black_box(multimedia_table(MultimediaApp::AvEncoder)));
    });
    group.bench_function("table2_av_decoder", |b| {
        b.iter(|| black_box(multimedia_table(MultimediaApp::AvDecoder)));
    });
    group.bench_function("table3_av_integrated", |b| {
        b.iter(|| black_box(multimedia_table(MultimediaApp::AvIntegrated)));
    });
    group.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("two_ratio_points", |b| {
        b.iter(|| black_box(tradeoff_sweep(Clip::Foreman, &[1.0, 1.3])));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_random_benchmark_unit,
    bench_tables,
    bench_fig7_point
);
criterion_main!(benches);
