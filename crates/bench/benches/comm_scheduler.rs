//! Throughput of the Fig. 3 communication scheduler machinery: trial
//! `F(i,k)` evaluations with checkpoint/rollback, the inner loop of the
//! EAS level scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::placer::Placer;
use noc_eas::prelude::CommModel;
use noc_platform::tile::PeId;

fn bench_trials(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let graph = TgffGenerator::new(TgffConfig::category_i(7))
        .generate(&platform)
        .expect("valid");

    // Pre-place roughly half the graph so trials see realistic table
    // occupancy, then measure trial cost for one ready task on all PEs.
    let mut placer = Placer::new(&graph, &platform).expect("matching platform");
    let budgeted = graph.task_count() / 2;
    let mut placed = 0;
    while placed < budgeted {
        let t = placer.ready_tasks()[0];
        placer.commit(t, PeId::new((placed % 16) as u32));
        placed += 1;
    }
    let ready = placer.ready_tasks()[0];

    c.bench_function("trial_f_ik_all_16_pes", |b| {
        b.iter(|| {
            for k in 0..16u32 {
                black_box(placer.trial(ready, PeId::new(k), CommModel::Contention));
            }
        });
    });

    c.bench_function("trial_f_ik_fixed_delay", |b| {
        b.iter(|| {
            for k in 0..16u32 {
                black_box(placer.trial(ready, PeId::new(k), CommModel::FixedDelay));
            }
        });
    });
}

fn bench_table_ops(c: &mut Criterion) {
    use noc_platform::units::Time;
    use noc_schedule::table::ScheduleTable;

    // A table with many busy slots, as at the end of a 500-task run.
    let mut table = ScheduleTable::new();
    for i in 0..2_000u64 {
        table.occupy(Time::new(i * 20), Time::new(10));
    }
    c.bench_function("schedule_table_find_earliest_2000_slots", |b| {
        b.iter(|| black_box(table.find_earliest(Time::new(3), Time::new(11))));
    });
}

criterion_group!(benches, bench_trials, bench_table_ops);
criterion_main!(benches);
