//! Scheduler runtime scaling (the paper's Sec. 6.1 runtime remarks:
//! EAS-base runs in a few seconds on ~500-task graphs; search-and-repair
//! increases the runtime on benchmarks that need it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

fn graphs_of_size(task_count: usize, platform: &noc_platform::Platform) -> TaskGraph {
    let mut cfg = TgffConfig::category_i(42);
    cfg.task_count = task_count;
    cfg.width = (task_count / 20).max(4);
    TgffGenerator::new(cfg).generate(platform).expect("valid")
}

fn bench_scaling(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let mut group = c.benchmark_group("eas_base_scaling");
    group.sample_size(10);
    for &n in &[50usize, 125, 250, 500] {
        let graph = graphs_of_size(n, &platform);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            let s = EasScheduler::base();
            b.iter(|| black_box(s.schedule(g, &platform).expect("schedules")));
        });
    }
    group.finish();
}

fn bench_schedulers_at_paper_scale(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let graph = graphs_of_size(500, &platform);
    let mut group = c.benchmark_group("paper_scale_500_tasks");
    group.sample_size(10);
    group.bench_function("eas-base", |b| {
        let s = EasScheduler::base();
        b.iter(|| black_box(s.schedule(&graph, &platform).expect("schedules")));
    });
    group.bench_function("edf", |b| {
        let s = EdfScheduler::new();
        b.iter(|| black_box(s.schedule(&graph, &platform).expect("schedules")));
    });
    group.finish();
}

fn bench_repair_overhead(c: &mut Criterion) {
    // A tight instance that actually needs repairing (EAS-base misses a
    // deadline on this seed/laxity; asserted below so the bench cannot
    // silently measure a no-op).
    let platform = platforms::mesh_4x4();
    let mut cfg = TgffConfig::small(2);
    cfg.deadline_laxity = 0.95;
    let graph = TgffGenerator::new(cfg).generate(&platform).expect("valid");
    let base_outcome = EasScheduler::base()
        .schedule(&graph, &platform)
        .expect("schedules");
    assert!(
        !base_outcome.report.meets_deadlines(),
        "bench workload must trigger search-and-repair"
    );
    let mut group = c.benchmark_group("search_and_repair_overhead");
    group.sample_size(10);
    group.bench_function("eas-base", |b| {
        let s = EasScheduler::base();
        b.iter(|| black_box(s.schedule(&graph, &platform).expect("schedules")));
    });
    group.bench_function("eas-with-repair", |b| {
        let s = EasScheduler::full();
        b.iter(|| black_box(s.schedule(&graph, &platform).expect("schedules")));
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let graph = graphs_of_size(250, &platform);
    let mut group = c.benchmark_group("eas_thread_scaling_250_tasks");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        let scheduler = EasScheduler::new(EasConfig::default().with_threads(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &graph, |b, g| {
            b.iter(|| black_box(scheduler.schedule(g, &platform).expect("schedules")));
        });
    }
    group.finish();
}

fn bench_budgeting(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let graph = graphs_of_size(500, &platform);
    c.bench_function("slack_budgeting_500_tasks", |b| {
        b.iter(|| {
            black_box(noc_eas::budget::SlackBudgets::compute_with_comm(
                &graph,
                WeightFunction::VarEnergyTimesVarTime,
                32.0,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_scaling,
    bench_schedulers_at_paper_scale,
    bench_repair_overhead,
    bench_thread_scaling,
    bench_budgeting
);
criterion_main!(benches);
