//! Runtime cost of the ablation configurations (quality numbers come
//! from `cargo run -p noc-bench --bin ablation`): how much scheduling
//! time each design ingredient buys or costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

fn bench_configs(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    let mut cfg = TgffConfig::category_ii(1);
    // Keep bench wall-time reasonable: the no-budgeting variant pays a
    // heavy (and unfixable) repair bill that grows steeply with task
    // count; 100 tasks keeps the qualitative runtime ordering visible.
    cfg.task_count = 100;
    cfg.width = 10;
    let graph = TgffGenerator::new(cfg).generate(&platform).expect("valid");

    let variants: Vec<(&str, EasConfig)> = vec![
        ("paper", EasConfig::default()),
        ("no-repair", EasConfig::base()),
        (
            "no-budgeting",
            EasConfig {
                budgeting: false,
                ..EasConfig::default()
            },
        ),
        (
            "fixed-delay-comm",
            EasConfig {
                comm_model: CommModel::FixedDelay,
                ..EasConfig::default()
            },
        ),
        (
            "uniform-weights",
            EasConfig {
                weight_function: WeightFunction::Uniform,
                ..EasConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("eas_config_runtime");
    group.sample_size(10);
    for (name, config) in variants {
        let scheduler = EasScheduler::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheduler, |b, s| {
            b.iter(|| black_box(s.schedule(&graph, &platform).expect("schedules")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
