//! Wormhole simulator throughput: raw message streaming and full
//! schedule execution of the multimedia applications.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_sim::prelude::*;

fn bench_network_streaming(c: &mut Criterion) {
    let platform = platforms::mesh_4x4();
    c.bench_function("network_100_random_messages", |b| {
        b.iter(|| {
            let mut sim = NetworkSim::new(&platform, SimConfig::default());
            for i in 0..100u32 {
                let src = TileId::new(i % 16);
                let dst = TileId::new((i * 7 + 3) % 16);
                sim.inject_on(
                    &platform,
                    Message::new(
                        src,
                        dst,
                        Volume::from_bits(1024),
                        Time::new(u64::from(i) * 5),
                    ),
                );
            }
            black_box(sim.run_until_idle())
        });
    });
}

fn bench_schedule_execution(c: &mut Criterion) {
    let platform = platforms::mesh_3x3();
    let graph = MultimediaApp::AvIntegrated
        .build(Clip::Foreman, &platform)
        .expect("valid");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    c.bench_function("execute_av_integrated_schedule", |b| {
        let exec = ScheduleExecutor::new(&graph, &platform, SimConfig::default());
        b.iter(|| black_box(exec.execute(&outcome.schedule).expect("executes")));
    });
}

criterion_group!(benches, bench_network_streaming, bench_schedule_execution);
criterion_main!(benches);
