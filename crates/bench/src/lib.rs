//! # noc-bench
//!
//! Experiment harness reproducing **every table and figure** of
//! Hu & Marculescu (DATE 2004) plus the ablation studies called out in
//! `DESIGN.md`:
//!
//! | Paper artifact | Binary | Library entry point |
//! |---|---|---|
//! | Fig. 5 (category-I random benchmarks) | `fig5_category1` | [`experiments::random_category`] |
//! | Fig. 6 (category-II random benchmarks) | `fig6_category2` | [`experiments::random_category`] |
//! | Table 1 (A/V encoder) | `table1_av_encoder` | [`experiments::multimedia_table`] |
//! | Table 2 (A/V decoder) | `table2_av_decoder` | [`experiments::multimedia_table`] |
//! | Table 3 (integrated A/V enc+dec) | `table3_av_integrated` | [`experiments::multimedia_table`] |
//! | Fig. 7 (energy vs performance ratio) | `fig7_tradeoff` | [`experiments::tradeoff_sweep`] |
//! | §6.1 runtime remarks | `cargo bench -p noc-bench` | — |
//! | Ablations (weights, budgets, comm model) | `ablation` | [`experiments::ablation_study`] |
//!
//! Every experiment returns plain serializable rows so binaries print
//! both a human table and (with `--json`) machine-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod platforms;
pub mod report;
pub mod runner;

pub use runner::{run_schedulers, ResultRow};

/// Parses the shared `--threads N` knob from the process arguments
/// (0, the default, means all hardware threads). Exits with a usage
/// error on a malformed value so experiment binaries fail loudly
/// instead of silently running serial.
#[must_use]
pub fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let value = args.next().unwrap_or_default();
            return value.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads expects a number, got {value:?}");
                std::process::exit(2);
            });
        }
        if let Some(value) = arg.strip_prefix("--threads=") {
            return value.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads expects a number, got {value:?}");
                std::process::exit(2);
            });
        }
    }
    0
}
