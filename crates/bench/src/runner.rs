//! Running scheduler line-ups over benchmarks and collecting rows.

use serde::{Deserialize, Serialize};
use std::time::Instant;

use noc_ctg::TaskGraph;
use noc_eas::{ScheduleOutcome, Scheduler, SchedulerError};
use noc_platform::Platform;

/// One (benchmark, scheduler) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// Benchmark name (graph name).
    pub benchmark: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Total Eq. 3 energy in nJ.
    pub energy_nj: f64,
    /// Computation part of the energy, nJ.
    pub computation_nj: f64,
    /// Communication part of the energy, nJ.
    pub communication_nj: f64,
    /// Deadline misses in the produced schedule.
    pub deadline_misses: usize,
    /// Sum of tardiness over missed deadlines, ticks.
    pub tardiness: u64,
    /// Schedule makespan, ticks.
    pub makespan: u64,
    /// Average routers per data packet.
    pub avg_hops: f64,
    /// Wall-clock scheduling time, seconds.
    pub runtime_s: f64,
}

impl ResultRow {
    /// Builds a row from a scheduling outcome.
    #[must_use]
    pub fn from_outcome(
        benchmark: &str,
        scheduler: &str,
        outcome: &ScheduleOutcome,
        runtime_s: f64,
    ) -> Self {
        ResultRow {
            benchmark: benchmark.to_owned(),
            scheduler: scheduler.to_owned(),
            energy_nj: outcome.stats.energy.total().as_nj(),
            computation_nj: outcome.stats.energy.computation.as_nj(),
            communication_nj: outcome.stats.energy.communication.as_nj(),
            deadline_misses: outcome.report.deadline_misses.len(),
            tardiness: outcome.report.total_tardiness().ticks(),
            makespan: outcome.report.makespan.ticks(),
            avg_hops: outcome.stats.avg_hops_per_packet,
            runtime_s,
        }
    }
}

/// Runs each scheduler on `graph`, timed, returning one row per
/// scheduler.
///
/// # Errors
///
/// Propagates the first [`SchedulerError`]; on correct inputs the
/// schedulers only fail on graph/platform mismatches.
pub fn run_schedulers(
    graph: &TaskGraph,
    platform: &Platform,
    schedulers: &[&dyn Scheduler],
) -> Result<Vec<ResultRow>, SchedulerError> {
    let mut rows = Vec::with_capacity(schedulers.len());
    for s in schedulers {
        let t0 = Instant::now();
        let outcome = s.schedule(graph, platform)?;
        let dt = t0.elapsed().as_secs_f64();
        rows.push(ResultRow::from_outcome(
            graph.name(),
            s.name(),
            &outcome,
            dt,
        ));
    }
    Ok(rows)
}

/// Percentage by which `base` exceeds `better`:
/// `100 * (base - better) / base` — the paper's "energy savings (%)".
#[must_use]
pub fn savings_percent(better: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - better) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::mesh_2x2;
    use noc_ctg::prelude::*;
    use noc_eas::prelude::*;

    #[test]
    fn rows_cover_all_schedulers() {
        let p = mesh_2x2();
        let g = MultimediaApp::AvEncoder.build(Clip::Akiyo, &p).unwrap();
        let eas = EasScheduler::full();
        let edf = EdfScheduler::new();
        let rows = run_schedulers(&g, &p, &[&eas, &edf]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scheduler, "eas");
        assert_eq!(rows[1].scheduler, "edf");
        assert!(rows.iter().all(|r| r.energy_nj > 0.0 && r.runtime_s >= 0.0));
    }

    #[test]
    fn savings_formula_matches_paper_convention() {
        // EAS 60, EDF 100 => 40% savings.
        assert!((savings_percent(60.0, 100.0) - 40.0).abs() < 1e-12);
        assert_eq!(savings_percent(1.0, 0.0), 0.0);
    }
}
