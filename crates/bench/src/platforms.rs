//! The standard platforms of the paper's evaluation.

use noc_platform::prelude::*;

/// The 4x4 heterogeneous mesh used for the random benchmarks (Sec. 6.1).
///
/// # Panics
///
/// Panics only on internal misconfiguration (the builder inputs are
/// constants).
#[must_use]
pub fn mesh_4x4() -> Platform {
    mesh(4, 4)
}

/// The 2x2 heterogeneous mesh of the A/V encoder and decoder experiments
/// (Tables 1–2).
#[must_use]
pub fn mesh_2x2() -> Platform {
    mesh(2, 2)
}

/// The 3x3 heterogeneous mesh of the integrated experiment (Table 3).
#[must_use]
pub fn mesh_3x3() -> Platform {
    mesh(3, 3)
}

/// An arbitrary `cols x rows` heterogeneous mesh with the DATE'04 PE mix
/// and XY routing.
#[must_use]
pub fn mesh(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .routing(RoutingSpec::Xy)
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("constant mesh configuration is valid")
}

/// The same heterogeneous mesh with a set of permanent faults masked in
/// (dead PEs removed from candidate lists, routes detouring dead links).
///
/// # Errors
///
/// Propagates builder failures: fault sets that disconnect the surviving
/// mesh or kill every tile have no usable platform.
pub fn faulted_mesh(
    cols: u16,
    rows: u16,
    faults: noc_platform::fault::FaultSet,
) -> Result<Platform, noc_platform::PlatformError> {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .routing(RoutingSpec::Xy)
        .pe_mix(PeCatalog::date04().cycle_mix())
        .faults(faults)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_platforms_have_paper_sizes() {
        assert_eq!(mesh_4x4().tile_count(), 16);
        assert_eq!(mesh_2x2().tile_count(), 4);
        assert_eq!(mesh_3x3().tile_count(), 9);
    }

    #[test]
    fn platforms_are_heterogeneous() {
        let p = mesh_2x2();
        let first = &p.pe_classes()[0];
        assert!(p.pe_classes().iter().any(|c| c != first));
    }
}
