//! Implementations of the paper's experiments (see the crate docs for
//! the mapping to tables and figures).

use serde::{Deserialize, Serialize};

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_par::{effective_threads, par_map};
use noc_platform::Platform;

use crate::platforms;
use crate::runner::{run_schedulers, savings_percent, ResultRow};

/// An internal experiment failure: a scheduler or simulator error on
/// inputs that are supposed to be feasible by construction. Studies
/// that can hit one return `Result` so batch binaries can exit
/// non-zero instead of silently skipping the data point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError(pub String);

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExperimentError {}

/// The two random-benchmark families of Sec. 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Looser deadlines (Fig. 5).
    I,
    /// Tighter deadlines (Fig. 6).
    II,
}

impl Category {
    /// TGFF preset for one seeded benchmark of the family.
    #[must_use]
    pub fn config(self, seed: u64) -> TgffConfig {
        match self {
            Category::I => TgffConfig::category_i(seed),
            Category::II => TgffConfig::category_ii(seed),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::I => "category-I",
            Category::II => "category-II",
        }
    }
}

/// Outcome of a Fig. 5 / Fig. 6 style run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryResult {
    /// Which family ran.
    pub category: String,
    /// Three rows (eas-base, eas, edf) per benchmark, benchmark-major.
    pub rows: Vec<ResultRow>,
    /// Benchmarks (by index) where EAS-base missed a deadline — the
    /// paper reports these explicitly (benchmark 0 in category I;
    /// benchmarks 0, 5, 6 in category II).
    pub base_miss_benchmarks: Vec<usize>,
    /// Mean extra energy of EDF over EAS in percent (the paper: 55% for
    /// category I, 39% for category II).
    pub avg_edf_overhead_percent: f64,
}

/// Runs `count` seeded random benchmarks of `category` on the 4x4 mesh
/// with EAS-base, EAS and EDF (Figs. 5 and 6), fanning the independent
/// benchmarks out over all hardware threads. Byte-identical to a serial
/// run (modulo wall-clock `runtime_s`).
///
/// # Panics
///
/// Panics only on internal scheduler errors (the generated graphs always
/// match the platform).
#[must_use]
pub fn random_category(category: Category, count: u64) -> CategoryResult {
    random_category_threads(category, count, 0)
}

/// [`random_category`] with an explicit worker count (0 = all hardware
/// threads, 1 = serial). Every thread count produces identical rows —
/// the fan-out is ordered and each seeded benchmark is independent.
///
/// # Panics
///
/// Panics only on internal scheduler errors (the generated graphs always
/// match the platform).
#[must_use]
pub fn random_category_threads(category: Category, count: u64, threads: usize) -> CategoryResult {
    let platform = platforms::mesh_4x4();
    let configs: Vec<TgffConfig> = (0..count).map(|seed| category.config(seed)).collect();
    let per_bench = category_rows(&platform, &configs, threads);

    let mut rows = Vec::new();
    let mut base_miss_benchmarks = Vec::new();
    let mut overhead_sum = 0.0;
    for (seed, bench_rows) in per_bench.into_iter().enumerate() {
        let base = &bench_rows[0];
        let full = &bench_rows[1];
        let baseline = &bench_rows[2];
        if base.deadline_misses > 0 {
            base_miss_benchmarks.push(seed);
        }
        overhead_sum += 100.0 * (baseline.energy_nj - full.energy_nj) / full.energy_nj;
        rows.extend(bench_rows);
    }
    CategoryResult {
        category: category.name().to_owned(),
        rows,
        base_miss_benchmarks,
        avg_edf_overhead_percent: overhead_sum / count as f64,
    }
}

/// Generates one benchmark per config and runs the Fig. 5/6 scheduler
/// line-up (EAS-base, EAS, EDF) on each, `par_map`-fanned over
/// `threads` workers. Results are ordered by config index, so the
/// output does not depend on the worker count.
fn category_rows(
    platform: &Platform,
    configs: &[TgffConfig],
    threads: usize,
) -> Vec<Vec<ResultRow>> {
    let eas_base = EasScheduler::base();
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    par_map(effective_threads(threads), configs, |_, cfg| {
        let graph = TgffGenerator::new(cfg.clone())
            .generate(platform)
            .expect("generator produces valid CTGs");
        run_schedulers(&graph, platform, &[&eas_base, &eas, &edf])
            .expect("generated graphs match the platform")
    })
}

/// One clip column of Tables 1–3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipResult {
    /// Clip name (akiyo / foreman / toybox).
    pub clip: String,
    /// EAS energy, nJ.
    pub eas_energy_nj: f64,
    /// EDF energy, nJ.
    pub edf_energy_nj: f64,
    /// Paper-convention savings `(EDF - EAS) / EDF`, percent.
    pub savings_percent: f64,
    /// EAS computation energy, nJ (Sec. 6.2 quotes the split).
    pub eas_computation_nj: f64,
    /// EAS communication energy, nJ.
    pub eas_communication_nj: f64,
    /// EDF computation energy, nJ.
    pub edf_computation_nj: f64,
    /// EDF communication energy, nJ.
    pub edf_communication_nj: f64,
    /// Average routers per packet under EAS (2.55 -> 1.68 in the paper).
    pub eas_avg_hops: f64,
    /// Average routers per packet under EDF.
    pub edf_avg_hops: f64,
    /// EAS deadline misses (must be zero).
    pub eas_misses: usize,
}

/// Outcome of a Table 1/2/3 style run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultimediaTable {
    /// Which application ran.
    pub app: String,
    /// Mesh used, e.g. `"mesh-2x2"`.
    pub platform: String,
    /// One entry per clip, paper order.
    pub clips: Vec<ClipResult>,
}

impl MultimediaTable {
    /// Renders the paper's table layout: one column per clip with EAS
    /// energy, EDF energy and savings %, plus the energy split and hop
    /// statistics the paper quotes in prose.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "MSB Task Set        {:>14} {:>14} {:>14}\n",
            self.clips[0].clip, self.clips[1].clip, self.clips[2].clip
        ));
        let row = |label: &str, f: &dyn Fn(&ClipResult) -> String| -> String {
            format!(
                "{label:<19} {:>14} {:>14} {:>14}\n",
                f(&self.clips[0]),
                f(&self.clips[1]),
                f(&self.clips[2])
            )
        };
        out.push_str(&row("EAS Energy (nJ)", &|c| {
            format!("{:.1}", c.eas_energy_nj)
        }));
        out.push_str(&row("EDF Energy (nJ)", &|c| {
            format!("{:.1}", c.edf_energy_nj)
        }));
        out.push_str(&row("Energy Savings (%)", &|c| {
            format!("{:.1}", c.savings_percent)
        }));
        out.push('\n');
        out.push_str(&row("EAS comp (nJ)", &|c| {
            format!("{:.1}", c.eas_computation_nj)
        }));
        out.push_str(&row("EDF comp (nJ)", &|c| {
            format!("{:.1}", c.edf_computation_nj)
        }));
        out.push_str(&row("EAS comm (nJ)", &|c| {
            format!("{:.1}", c.eas_communication_nj)
        }));
        out.push_str(&row("EDF comm (nJ)", &|c| {
            format!("{:.1}", c.edf_communication_nj)
        }));
        out.push_str(&row("EAS hops/packet", &|c| {
            format!("{:.2}", c.eas_avg_hops)
        }));
        out.push_str(&row("EDF hops/packet", &|c| {
            format!("{:.2}", c.edf_avg_hops)
        }));
        out.push_str(&row("EAS deadline misses", &|c| c.eas_misses.to_string()));
        out
    }
}

/// Runs one multimedia application on its paper platform across all
/// three clips, comparing EAS and EDF (Tables 1–3).
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn multimedia_table(app: MultimediaApp) -> MultimediaTable {
    let (cols, rows_) = app.recommended_mesh();
    let platform = platforms::mesh(cols, rows_);
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();

    let mut clips = Vec::new();
    for clip in Clip::all() {
        let graph = app
            .build(clip, &platform)
            .expect("benchmark graphs are valid");
        let rows = run_schedulers(&graph, &platform, &[&eas, &edf])
            .expect("benchmark graphs match their platforms");
        let (e, d) = (&rows[0], &rows[1]);
        clips.push(ClipResult {
            clip: clip.name().to_owned(),
            eas_energy_nj: e.energy_nj,
            edf_energy_nj: d.energy_nj,
            savings_percent: savings_percent(e.energy_nj, d.energy_nj),
            eas_computation_nj: e.computation_nj,
            eas_communication_nj: e.communication_nj,
            edf_computation_nj: d.computation_nj,
            edf_communication_nj: d.communication_nj,
            eas_avg_hops: e.avg_hops,
            edf_avg_hops: d.avg_hops,
            eas_misses: e.deadline_misses,
        });
    }
    MultimediaTable {
        app: app.name().to_owned(),
        platform: platform.topology().to_string(),
        clips,
    }
}

/// Outcome of the Fig. 7 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffResult {
    /// Unified performance ratios (x axis).
    pub ratios: Vec<f64>,
    /// EAS energy per ratio, nJ (`NaN`-free; infeasible points report
    /// the schedule energy with its misses counted separately).
    pub eas_energy_nj: Vec<f64>,
    /// EDF energy per ratio, nJ.
    pub edf_energy_nj: Vec<f64>,
    /// EAS deadline misses per ratio (nonzero once the constraint
    /// becomes unschedulable).
    pub eas_misses: Vec<usize>,
    /// EDF deadline misses per ratio.
    pub edf_misses: Vec<usize>,
}

/// Sweeps the unified performance ratio on the integrated A/V system
/// (Fig. 7): deadlines scale as `1/ratio`, starting from 40 enc-fps /
/// 67 dec-fps at ratio 1.0.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn tradeoff_sweep(clip: Clip, ratios: &[f64]) -> TradeoffResult {
    tradeoff_sweep_threads(clip, ratios, 0)
}

/// [`tradeoff_sweep`] with an explicit worker count (0 = all hardware
/// threads, 1 = serial). The ratio points are independent and the
/// fan-out is ordered, so every thread count produces identical curves.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn tradeoff_sweep_threads(clip: Clip, ratios: &[f64], threads: usize) -> TradeoffResult {
    let platform = platforms::mesh_3x3();
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    let per_ratio = par_map(effective_threads(threads), ratios, |_, &ratio| {
        let graph = MultimediaApp::AvIntegrated
            .build_with_performance_ratio(clip, &platform, ratio)
            .expect("benchmark graphs are valid");
        run_schedulers(&graph, &platform, &[&eas, &edf])
            .expect("benchmark graphs match their platforms")
    });
    let mut result = TradeoffResult {
        ratios: ratios.to_vec(),
        eas_energy_nj: Vec::new(),
        edf_energy_nj: Vec::new(),
        eas_misses: Vec::new(),
        edf_misses: Vec::new(),
    };
    for rows in per_ratio {
        result.eas_energy_nj.push(rows[0].energy_nj);
        result.edf_energy_nj.push(rows[1].energy_nj);
        result.eas_misses.push(rows[0].deadline_misses);
        result.edf_misses.push(rows[1].deadline_misses);
    }
    result
}

/// One ablation configuration's aggregate over several seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Mean energy over the seeds, nJ.
    pub mean_energy_nj: f64,
    /// Benchmarks with at least one deadline miss.
    pub miss_benchmarks: usize,
    /// Total misses across all seeds.
    pub total_misses: usize,
    /// Mean scheduling runtime, seconds.
    pub mean_runtime_s: f64,
}

/// Ablation study over the design choices `DESIGN.md` calls out: the
/// weight function, slack budgeting itself, contention-aware
/// communication, and search-and-repair — each compared on the same
/// seeded category-II benchmarks (tight deadlines make the differences
/// visible) plus the EDF reference.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn ablation_study(seeds: u64) -> Vec<AblationRow> {
    ablation_study_threads(seeds, 0)
}

/// [`ablation_study`] with an explicit worker count (0 = all hardware
/// threads, 1 = serial). Every (variant, benchmark) cell is independent,
/// so the full cross product fans out; the rows aggregate in variant
/// order regardless of the worker count.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn ablation_study_threads(seeds: u64, threads: usize) -> Vec<AblationRow> {
    let platform = platforms::mesh_4x4();
    let variants: Vec<(String, Box<dyn Scheduler + Send + Sync>)> = vec![
        ("eas (paper)".into(), Box::new(EasScheduler::full())),
        (
            "eas-base (no repair)".into(),
            Box::new(EasScheduler::base()),
        ),
        (
            "weight=var-e".into(),
            Box::new(EasScheduler::new(EasConfig {
                weight_function: WeightFunction::VarEnergy,
                ..EasConfig::default()
            })),
        ),
        (
            "weight=var-r".into(),
            Box::new(EasScheduler::new(EasConfig {
                weight_function: WeightFunction::VarTime,
                ..EasConfig::default()
            })),
        ),
        (
            "weight=mean-time".into(),
            Box::new(EasScheduler::new(EasConfig {
                weight_function: WeightFunction::MeanTime,
                ..EasConfig::default()
            })),
        ),
        (
            "weight=uniform".into(),
            Box::new(EasScheduler::new(EasConfig {
                weight_function: WeightFunction::Uniform,
                ..EasConfig::default()
            })),
        ),
        (
            "no budgeting".into(),
            Box::new(EasScheduler::new(EasConfig {
                budgeting: false,
                ..EasConfig::default()
            })),
        ),
        (
            "fixed-delay comm".into(),
            Box::new(EasScheduler::new(EasConfig {
                comm_model: CommModel::FixedDelay,
                ..EasConfig::default()
            })),
        ),
        ("edf".into(), Box::new(EdfScheduler::new())),
        ("dls (Sih&Lee)".into(), Box::new(DlsScheduler::new())),
    ];

    let workers = effective_threads(threads);
    let seed_list: Vec<u64> = (0..seeds).collect();
    let graphs: Vec<TaskGraph> = par_map(workers, &seed_list, |_, &s| {
        TgffGenerator::new(TgffConfig::category_ii(s))
            .generate(&platform)
            .expect("generator produces valid CTGs")
    });

    // Fan the full (variant x benchmark) cross product out at once:
    // individual cells dominate the runtime and are independent.
    let cells: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|v| (0..graphs.len()).map(move |g| (v, g)))
        .collect();
    let per_cell: Vec<ResultRow> = par_map(workers, &cells, |_, &(v, g)| {
        let scheduler: &dyn Scheduler = variants[v].1.as_ref();
        run_schedulers(&graphs[g], &platform, &[scheduler])
            .expect("generated graphs match the platform")
            .remove(0)
    });

    let mut rows = Vec::new();
    for (v, (label, _)) in variants.iter().enumerate() {
        let mut energy = 0.0;
        let mut miss_benchmarks = 0;
        let mut total_misses = 0;
        let mut runtime = 0.0;
        for r in &per_cell[v * graphs.len()..(v + 1) * graphs.len()] {
            energy += r.energy_nj;
            total_misses += r.deadline_misses;
            if r.deadline_misses > 0 {
                miss_benchmarks += 1;
            }
            runtime += r.runtime_s;
        }
        rows.push(AblationRow {
            config: label.clone(),
            mean_energy_nj: energy / seeds as f64,
            miss_benchmarks,
            total_misses,
            mean_runtime_s: runtime / seeds as f64,
        });
    }
    rows
}

/// Baseline panorama (extension study): EAS against the energy-blind
/// baselines (EDF, Sih & Lee DLS) and the simulated-annealing quality
/// bound, on every multimedia application (foreman clip) and a reduced
/// random benchmark. Four rows per benchmark.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn baseline_comparison() -> Vec<ResultRow> {
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    let dls = DlsScheduler::new();
    let two_phase = MapThenScheduleScheduler::new();
    let anneal = AnnealScheduler::new(AnnealConfig {
        iterations: 3_000,
        ..AnnealConfig::default()
    });

    let mut rows = Vec::new();
    for app in MultimediaApp::all() {
        let (c, r) = app.recommended_mesh();
        let platform = platforms::mesh(c, r);
        let graph = app
            .build(Clip::Foreman, &platform)
            .expect("benchmark builds");
        rows.extend(
            run_schedulers(&graph, &platform, &[&eas, &dls, &edf, &two_phase, &anneal])
                .expect("benchmark graphs match their platforms"),
        );
    }
    // One reduced random benchmark (annealing at full 500-task scale is
    // out of interactive budget; the ablation binary covers EAS there).
    let platform = platforms::mesh_4x4();
    let mut cfg = TgffConfig::category_i(0);
    cfg.task_count = 120;
    cfg.width = 10;
    let graph = TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generator works");
    rows.extend(
        run_schedulers(&graph, &platform, &[&eas, &dls, &edf, &two_phase, &anneal])
            .expect("generated graphs match the platform"),
    );
    rows
}

/// Extension applications (OFDM transceiver, packet pipeline) across
/// all load profiles: EAS vs the energy-blind baselines on workload
/// regimes the multimedia set does not cover.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn extension_apps() -> Vec<ResultRow> {
    use noc_ctg::apps::{ExtensionApp, Load};
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    let dls = DlsScheduler::new();
    let mut rows = Vec::new();
    for app in ExtensionApp::all() {
        let (c, r) = app.recommended_mesh();
        let platform = platforms::mesh(c, r);
        for load in Load::all() {
            let graph = app.build(load, &platform).expect("benchmark builds");
            rows.extend(
                run_schedulers(&graph, &platform, &[&eas, &edf, &dls])
                    .expect("benchmark graphs match their platforms"),
            );
        }
    }
    rows
}

/// One row of the pipelined-encoder extension study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineRow {
    /// Frames scheduled together.
    pub frames: usize,
    /// Tasks in the unrolled graph.
    pub tasks: usize,
    /// Total energy, nJ.
    pub energy_nj: f64,
    /// Energy per frame, nJ (steady-state cost).
    pub energy_per_frame_nj: f64,
    /// Unrolled-schedule makespan, ticks.
    pub makespan: u64,
    /// Effective per-frame initiation interval: `makespan / frames`.
    pub interval_per_frame: f64,
    /// Deadline misses (all frames' staggered deadlines).
    pub misses: usize,
}

/// Extension study (not in the paper, `DESIGN.md` future-work item):
/// schedule 1..=`max_frames` pipelined frames of the A/V encoder at
/// once, with the reconstructed reference frame of frame `k` feeding
/// frame `k+1`'s motion estimation. Overlapping frames lets the
/// scheduler hide communication behind adjacent-frame computation, so
/// the per-frame initiation interval drops below the single-frame
/// makespan.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn pipeline_extension(clip: Clip, max_frames: usize) -> Vec<PipelineRow> {
    use noc_ctg::pipeline::{task_by_name, unroll, InterFrameEdge};
    use noc_platform::units::{Time, Volume};

    let platform = platforms::mesh_2x2();
    let frame = MultimediaApp::AvEncoder
        .build(clip, &platform)
        .expect("benchmark builds");
    let store = task_by_name(&frame, "frame_store").expect("encoder has frame_store");
    let me = task_by_name(&frame, "motion_est").expect("encoder has motion_est");
    let template = [InterFrameEdge::new(store, me, Volume::from_bits(16_384))];
    let eas = EasScheduler::full();

    let mut rows = Vec::new();
    for frames in 1..=max_frames {
        let graph = unroll(
            &frame,
            frames,
            Time::new(noc_ctg::multimedia::ENCODER_PERIOD),
            &template,
        )
        .expect("unroll of a valid frame graph succeeds");
        let outcome = eas.schedule(&graph, &platform).expect("schedules");
        rows.push(PipelineRow {
            frames,
            tasks: graph.task_count(),
            energy_nj: outcome.stats.energy.total().as_nj(),
            energy_per_frame_nj: outcome.stats.energy.total().as_nj() / frames as f64,
            makespan: outcome.report.makespan.ticks(),
            interval_per_frame: outcome.report.makespan.as_f64() / frames as f64,
            misses: outcome.report.deadline_misses.len(),
        });
    }
    rows
}

/// One row of the robustness (runtime-jitter) study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Scheduler under test.
    pub scheduler: String,
    /// Execution-time jitter amplitude (e.g. 0.1 = ±10%).
    pub jitter: f64,
    /// Monte-Carlo trials executed.
    pub trials: usize,
    /// Trials with at least one dynamic deadline miss.
    pub miss_trials: usize,
    /// Mean dynamic makespan over the trials, ticks.
    pub mean_makespan: f64,
}

/// Robustness study (extension): replay each scheduler's A/V-integrated
/// schedule on the wormhole simulator while task runtimes deviate by
/// `±jitter` (uniform, seeded), and count how often the realized
/// execution busts a deadline. Static energy-optimal schedules pack
/// tighter than performance-driven ones, so their miss onset reveals how
/// much of the slack budget survives into the artifact.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn robustness_study(jitters: &[f64], trials: usize) -> Vec<RobustnessRow> {
    robustness_study_at_ratio(jitters, trials, 1.0)
}

/// [`robustness_study`] at a stressed performance ratio (Fig. 7's knob):
/// tighter deadlines surface the jitter sensitivity the baseline rate
/// hides behind its headroom.
///
/// # Panics
///
/// Panics only on internal scheduler errors.
#[must_use]
pub fn robustness_study_at_ratio(jitters: &[f64], trials: usize, ratio: f64) -> Vec<RobustnessRow> {
    try_robustness_study_at_ratio(jitters, trials, ratio).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`robustness_study_at_ratio`]: internal scheduler or
/// simulator failures surface as [`ExperimentError`] instead of a
/// panic, so batch binaries can report them and exit non-zero.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the benchmark cannot be built,
/// a scheduler fails on the pristine platform, or a Monte-Carlo replay
/// fails to execute.
pub fn try_robustness_study_at_ratio(
    jitters: &[f64],
    trials: usize,
    ratio: f64,
) -> Result<Vec<RobustnessRow>, ExperimentError> {
    use noc_platform::units::Time;
    use noc_sim::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let platform = platforms::mesh_3x3();
    let graph = MultimediaApp::AvIntegrated
        .build_with_performance_ratio(Clip::Foreman, &platform, ratio)
        .map_err(|e| ExperimentError(format!("building the A/V benchmark failed: {e}")))?;
    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("eas", Box::new(EasScheduler::full())),
        ("edf", Box::new(EdfScheduler::new())),
    ];
    let mut rows = Vec::new();
    for (name, scheduler) in &schedulers {
        let outcome = scheduler
            .schedule(&graph, &platform)
            .map_err(|e| ExperimentError(format!("{name} failed on the pristine platform: {e}")))?;
        let assignment: Vec<_> = outcome
            .schedule
            .task_placements()
            .iter()
            .map(|p| p.pe)
            .collect();
        let executor = ScheduleExecutor::new(&graph, &platform, SimConfig::default());
        for &jitter in jitters {
            let mut rng = StdRng::seed_from_u64(0xEA5);
            let mut miss_trials = 0usize;
            let mut makespan_sum = 0.0f64;
            for trial in 0..trials {
                let overrides: Vec<Time> = graph
                    .task_ids()
                    .map(|t| {
                        let nominal = graph.task(t).exec_time(assignment[t.index()]).as_f64();
                        let factor: f64 = rng.random_range(1.0 - jitter..=1.0 + jitter);
                        Time::new(((nominal * factor).round() as u64).max(1))
                    })
                    .collect();
                let trace = executor
                    .execute_with_exec_times(&outcome.schedule, Some(&overrides))
                    .map_err(|e| {
                        ExperimentError(format!(
                            "replaying {name} (jitter {jitter}, trial {trial}) failed: {e}"
                        ))
                    })?;
                if !trace.meets_deadlines() {
                    miss_trials += 1;
                }
                makespan_sum += trace.makespan.as_f64();
            }
            rows.push(RobustnessRow {
                scheduler: (*name).to_owned(),
                jitter,
                trials,
                miss_trials,
                mean_makespan: makespan_sum / trials as f64,
            });
        }
    }
    Ok(rows)
}

/// One row of the fault-injection sweep: one scheduler at one fault
/// count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Scheduler under test.
    pub scheduler: String,
    /// Number of injected fault events (a PE death or a channel death).
    pub faults: usize,
    /// Monte-Carlo trials executed.
    pub trials: usize,
    /// Trials where a fault-aware static schedule existed (surviving
    /// mesh connected and the re-plan validated).
    pub repaired_trials: usize,
    /// Mean fraction of deadlines met when the *pristine* schedule keeps
    /// running while the faults strike at t = 0.
    pub unrepaired_met: f64,
    /// Mean fraction of deadlines met after masked-resource re-repair
    /// (falling back to the unrepaired figure when no repair exists).
    pub repaired_met: f64,
    /// Deadline tasks the repaired schedule meets that the unrepaired
    /// run missed, summed over all trials.
    pub recovered_deadlines: usize,
    /// Mean repaired-vs-pristine energy delta in percent, over the
    /// repaired trials (0 when none).
    pub mean_energy_delta_percent: f64,
}

/// Draws `k` distinct fault events (PE or bidirectional channel deaths,
/// 1:2 odds) without ever killing the last tile.
fn draw_faults(
    rng: &mut rand::rngs::StdRng,
    platform: &noc_platform::Platform,
    k: usize,
) -> noc_platform::fault::FaultSet {
    use noc_platform::tile::TileId;
    use rand::Rng;

    let mut fs = noc_platform::fault::FaultSet::new();
    let tiles = platform.tile_count() as u32;
    let mut events = 0usize;
    let mut guard = 0usize;
    while events < k && guard < 1_000 {
        guard += 1;
        if rng.random_range(0..3u32) == 0 {
            let t = TileId::new(rng.random_range(0..tiles));
            if !fs.tile_failed(t) && fs.failed_tiles().len() + 1 < tiles as usize {
                fs.fail_tile(t);
                events += 1;
            }
        } else {
            let links = platform.links();
            let l = links[rng.random_range(0..links.len() as u32) as usize];
            if !fs.link_failed(l) {
                fs.fail_channel(l.src, l.dst);
                events += 1;
            }
        }
    }
    fs
}

/// Fault-injection sweep (extension): graceful degradation of EAS vs EDF
/// on the A/V-integrated benchmark under `k = 0..=max_faults` random
/// permanent faults.
///
/// For every trial the same drawn fault set is measured two ways:
///
/// * **unrepaired** — the pristine schedule keeps executing on the
///   wormhole simulator while the faults strike at `t = 0`
///   ([`noc_sim::exec::ScheduleExecutor::execute_with_faults`]); stranded
///   tasks count as missed deadlines;
/// * **repaired** — the faults are masked into the platform and the
///   schedule is re-planned: EAS re-repairs the struck schedule
///   ([`noc_eas::repair::repair_with_faults`], falling back to
///   scheduling from scratch), EDF re-runs from scratch. The repaired
///   schedule is then replayed on the simulator.
///
/// Everything is deterministic for a given `seed`.
///
/// # Panics
///
/// Panics only on internal scheduler errors on the pristine platform.
#[must_use]
pub fn fault_sweep_study(max_faults: usize, trials: usize, seed: u64) -> Vec<FaultSweepRow> {
    try_fault_sweep_study(max_faults, trials, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fault_sweep_study`]: internal errors surface as
/// [`ExperimentError`] instead of being silently skipped or panicking.
/// A fault set whose surviving mesh admits no platform or no schedule
/// is *not* an error — that trial legitimately falls back to the
/// unrepaired figure — but a failure to schedule the pristine platform
/// or to replay a schedule that was just planned is.
///
/// # Errors
///
/// Returns an [`ExperimentError`] when the benchmark cannot be built,
/// a scheduler fails on the pristine platform, a faulted execution
/// does not settle, or a freshly repaired schedule fails to replay.
pub fn try_fault_sweep_study(
    max_faults: usize,
    trials: usize,
    seed: u64,
) -> Result<Vec<FaultSweepRow>, ExperimentError> {
    use noc_eas::repair::repair_with_faults;
    use noc_platform::fault::FaultSet;
    use noc_platform::tile::PeId;
    use noc_platform::units::Time;
    use noc_schedule::ScheduleStats;
    use noc_sim::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn met_fraction(met: &[bool]) -> f64 {
        if met.is_empty() {
            1.0
        } else {
            met.iter().filter(|&&m| m).count() as f64 / met.len() as f64
        }
    }

    fn injected(fs: &FaultSet) -> Vec<InjectedFault> {
        let mut v: Vec<InjectedFault> = fs
            .failed_tiles()
            .iter()
            .map(|t| InjectedFault::pe(Time::ZERO, PeId::new(t.index() as u32)))
            .collect();
        v.extend(
            fs.failed_links()
                .iter()
                .map(|&l| InjectedFault::link(Time::ZERO, l)),
        );
        v
    }

    let platform = platforms::mesh_3x3();
    let graph = MultimediaApp::AvIntegrated
        .build(Clip::Foreman, &platform)
        .map_err(|e| ExperimentError(format!("building the A/V benchmark failed: {e}")))?;
    let deadline_tasks: Vec<_> = graph
        .task_ids()
        .filter(|&t| graph.task(t).deadline().is_some())
        .collect();
    let deadline_of = |t: noc_ctg::task::TaskId| graph.task(t).deadline().expect("filtered");

    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("eas", Box::new(EasScheduler::full())),
        ("edf", Box::new(EdfScheduler::new())),
    ];
    let mut rows = Vec::new();
    for (name, scheduler) in &schedulers {
        let outcome = scheduler
            .schedule(&graph, &platform)
            .map_err(|e| ExperimentError(format!("{name} failed on the pristine platform: {e}")))?;
        let pristine_energy = outcome.stats.energy.total().as_nj();
        let executor = ScheduleExecutor::new(&graph, &platform, SimConfig::default());
        for k in 0..=max_faults {
            let mut unrepaired_sum = 0.0f64;
            let mut repaired_sum = 0.0f64;
            let mut recovered = 0usize;
            let mut repaired_trials = 0usize;
            let mut energy_delta_sum = 0.0f64;
            for trial in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed ^ ((k as u64) << 32) ^ (trial as u64));
                let fs = draw_faults(&mut rng, &platform, k);
                let unrep = executor
                    .execute_with_faults(&outcome.schedule, &injected(&fs))
                    .map_err(|e| {
                        ExperimentError(format!(
                            "faulted execution did not settle (k = {k}, trial {trial}, {name}): {e}"
                        ))
                    })?;
                let unrep_met: Vec<bool> = deadline_tasks
                    .iter()
                    .map(|&t| unrep.finish[t.index()].is_some_and(|f| f <= deadline_of(t)))
                    .collect();
                unrepaired_sum += met_fraction(&unrep_met);

                // Mask the faults into the platform and re-plan. A fault
                // set whose surviving mesh has no platform or no
                // schedule is a legitimate no-repair outcome; a replay
                // failure of a schedule planned *for that platform* is
                // an internal error and propagates.
                let faulted_platform = platforms::faulted_mesh(3, 3, fs).ok();
                let planned = faulted_platform.as_ref().and_then(|fp| {
                    if *name == "eas" {
                        repair_with_faults(&graph, fp, &outcome.schedule, 1)
                            .map(|(s, _)| s)
                            .or_else(|| scheduler.schedule(&graph, fp).ok().map(|o| o.schedule))
                    } else {
                        scheduler.schedule(&graph, fp).ok().map(|o| o.schedule)
                    }
                });
                let repaired = match planned {
                    None => None,
                    Some(schedule) => {
                        let fp = faulted_platform.as_ref().expect("planned implies platform");
                        let trace = ScheduleExecutor::new(&graph, fp, SimConfig::default())
                            .execute(&schedule)
                            .map_err(|e| {
                                ExperimentError(format!(
                                    "replaying the repaired schedule failed \
                                     (k = {k}, trial {trial}, {name}): {e}"
                                ))
                            })?;
                        let energy = ScheduleStats::compute(&schedule, &graph, fp)
                            .energy
                            .total()
                            .as_nj();
                        Some((trace, energy))
                    }
                };
                match repaired {
                    Some((trace, energy)) => {
                        repaired_trials += 1;
                        let rep_met: Vec<bool> = deadline_tasks
                            .iter()
                            .map(|&t| trace.finish[t.index()] <= deadline_of(t))
                            .collect();
                        repaired_sum += met_fraction(&rep_met);
                        recovered += rep_met
                            .iter()
                            .zip(&unrep_met)
                            .filter(|&(&r, &u)| r && !u)
                            .count();
                        energy_delta_sum += 100.0 * (energy - pristine_energy) / pristine_energy;
                    }
                    // No fault-aware schedule exists (surviving mesh
                    // disconnected): keep limping on the old one.
                    None => repaired_sum += met_fraction(&unrep_met),
                }
            }
            rows.push(FaultSweepRow {
                scheduler: (*name).to_owned(),
                faults: k,
                trials,
                repaired_trials,
                unrepaired_met: unrepaired_sum / trials as f64,
                repaired_met: repaired_sum / trials as f64,
                recovered_deadlines: recovered,
                mean_energy_delta_percent: if repaired_trials == 0 {
                    0.0
                } else {
                    energy_delta_sum / repaired_trials as f64
                },
            });
        }
    }
    Ok(rows)
}

/// Writes a JSON artifact under `target/experiments/` (best-effort: IO
/// failures only emit a warning so batch runs keep going) and returns
/// the path written to on success.
pub fn write_json_artifact<T: Serialize>(name: &str, value: &T) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast shrunken category run (2 small seeds) exercising the whole
    /// pipeline; the real scale runs in the binaries.
    #[test]
    fn mini_category_run_produces_complete_rows() {
        let platform = platforms::mesh_4x4();
        let eas = EasScheduler::full();
        let edf = EdfScheduler::new();
        for seed in 0..2 {
            let g = TgffGenerator::new(TgffConfig::small(seed))
                .generate(&platform)
                .unwrap();
            let rows = run_schedulers(&g, &platform, &[&eas, &edf]).unwrap();
            assert_eq!(rows.len(), 2);
            assert!(rows[0].energy_nj <= rows[1].energy_nj * 1.05);
        }
    }

    #[test]
    fn multimedia_tables_report_savings() {
        let t = multimedia_table(MultimediaApp::AvDecoder);
        assert_eq!(t.clips.len(), 3);
        for c in &t.clips {
            assert!(c.savings_percent > 0.0, "{}: EAS must save energy", c.clip);
            assert_eq!(c.eas_misses, 0, "{}: EAS must meet deadlines", c.clip);
        }
    }

    #[test]
    fn tradeoff_energy_is_monotonic_in_shape() {
        let r = tradeoff_sweep(Clip::Foreman, &[1.0, 1.4]);
        // Tighter constraints cannot make EAS cheaper.
        assert!(r.eas_energy_nj[1] >= r.eas_energy_nj[0] * 0.999);
        // And EDF stays above EAS.
        assert!(r.edf_energy_nj[0] > r.eas_energy_nj[0]);
    }

    /// The experiment fan-out must be byte-identical for every worker
    /// count: same rows in the same order, serial vs parallel (only the
    /// wall-clock `runtime_s` measurement may differ).
    #[test]
    fn parallel_category_fanout_is_byte_identical_to_serial() {
        let platform = platforms::mesh_4x4();
        let configs: Vec<TgffConfig> = (0..3).map(TgffConfig::small).collect();
        let strip = |mut benches: Vec<Vec<ResultRow>>| -> String {
            for rows in &mut benches {
                for r in rows {
                    r.runtime_s = 0.0;
                }
            }
            serde_json::to_string(&benches).unwrap()
        };
        let serial = strip(category_rows(&platform, &configs, 1));
        let parallel = strip(category_rows(&platform, &configs, 4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_tradeoff_sweep_matches_serial() {
        let serial = tradeoff_sweep_threads(Clip::Foreman, &[1.0, 1.3], 1);
        let parallel = tradeoff_sweep_threads(Clip::Foreman, &[1.0, 1.3], 2);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn category_enum_round_trips() {
        assert_eq!(Category::I.name(), "category-I");
        assert!(Category::II.config(3).deadline_laxity < Category::I.config(3).deadline_laxity);
    }
}
