//! Plain-text table and series rendering for experiment outputs.

use crate::runner::ResultRow;

/// Renders rows as a fixed-width text table, one line per row.
#[must_use]
pub fn render_rows(rows: &[ResultRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<9} {:>12} {:>12} {:>12} {:>6} {:>10} {:>6} {:>9}\n",
        "benchmark",
        "sched",
        "energy(nJ)",
        "comp(nJ)",
        "comm(nJ)",
        "miss",
        "makespan",
        "hops",
        "time(s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<9} {:>12.1} {:>12.1} {:>12.1} {:>6} {:>10} {:>6.2} {:>9.3}\n",
            r.benchmark,
            r.scheduler,
            r.energy_nj,
            r.computation_nj,
            r.communication_nj,
            r.deadline_misses,
            r.makespan,
            r.avg_hops,
            r.runtime_s
        ));
    }
    out
}

/// Renders an x/y series (one line per point) for figure-style outputs,
/// with one column per named series.
#[must_use]
pub fn render_series(x_label: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{x_label:<12}"));
    for (name, _) in series {
        out.push_str(&format!(" {name:>14}"));
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:<12.3}"));
        for (_, ys) in series {
            out.push_str(&format!(" {:>14.1}", ys[i]));
        }
        out.push('\n');
    }
    out
}

/// A compact ASCII bar chart of one value per benchmark for up to a few
/// series — the textual analogue of the paper's Fig. 5/6 bar groups.
#[must_use]
pub fn render_bars(labels: &[String], series: &[(&str, Vec<f64>)], width: usize) -> String {
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (i, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label}\n"));
        for (name, v) in series {
            let filled = ((v[i] / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:<9} |{}{}| {:.0}\n",
                name,
                "#".repeat(filled),
                " ".repeat(width.saturating_sub(filled)),
                v[i]
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ResultRow {
        ResultRow {
            benchmark: "b0".into(),
            scheduler: "eas".into(),
            energy_nj: 123.4,
            computation_nj: 100.0,
            communication_nj: 23.4,
            deadline_misses: 0,
            tardiness: 0,
            makespan: 999,
            avg_hops: 1.5,
            runtime_s: 0.01,
        }
    }

    #[test]
    fn table_contains_header_and_values() {
        let text = render_rows(&[row()]);
        assert!(text.contains("energy(nJ)"));
        assert!(text.contains("123.4"));
        assert!(text.contains("eas"));
    }

    #[test]
    fn series_aligns_columns() {
        let text = render_series(
            "ratio",
            &[1.0, 1.2],
            &[("eas", vec![1.0, 2.0]), ("edf", vec![3.0, 4.0])],
        );
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("ratio"));
        assert!(text.contains("edf"));
    }

    #[test]
    fn bars_scale_to_max() {
        let text = render_bars(
            &["b0".into()],
            &[("eas", vec![50.0]), ("edf", vec![100.0])],
            10,
        );
        let eas_line = text.lines().find(|l| l.contains("eas")).unwrap();
        let edf_line = text.lines().find(|l| l.contains("edf")).unwrap();
        assert_eq!(edf_line.matches('#').count(), 10);
        assert_eq!(eas_line.matches('#').count(), 5);
    }
}
