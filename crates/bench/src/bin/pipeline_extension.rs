//! Extension study (paper future work): pipelined multi-frame
//! scheduling of the A/V encoder, with frame `k`'s reconstructed
//! reference feeding frame `k+1`'s motion estimation. Shows how the
//! initiation interval and per-frame energy behave as more frames are
//! co-scheduled.

use noc_bench::experiments::{pipeline_extension, write_json_artifact};
use noc_ctg::prelude::Clip;

fn main() {
    println!("== Extension: pipelined A/V encoder (2x2 NoC, foreman) ==\n");
    let rows = pipeline_extension(Clip::Foreman, 4);
    println!(
        "{:<7} {:>6} {:>12} {:>14} {:>10} {:>14} {:>7}",
        "frames", "tasks", "energy(nJ)", "energy/frame", "makespan", "ticks/frame", "misses"
    );
    for r in &rows {
        println!(
            "{:<7} {:>6} {:>12.1} {:>14.1} {:>10} {:>14.1} {:>7}",
            r.frames,
            r.tasks,
            r.energy_nj,
            r.energy_per_frame_nj,
            r.makespan,
            r.interval_per_frame,
            r.misses
        );
    }
    println!(
        "\nReading guide: all staggered per-frame deadlines hold while the initiation\n\
         interval stays near the single-frame makespan despite the added cross-frame\n\
         reference-frame traffic; per-frame energy stays flat because Eq. 3 energy is\n\
         placement-determined, not schedule-determined."
    );
    if let Some(path) = write_json_artifact("pipeline_extension", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
