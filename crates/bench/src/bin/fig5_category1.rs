//! Reproduces **Fig. 5**: energy comparison of EAS-base / EAS / EDF on
//! ten category-I random benchmarks (~500 tasks, ~1000 transactions,
//! 4x4 heterogeneous NoC, loose deadlines).

use noc_bench::experiments::{random_category_threads, write_json_artifact, Category};
use noc_bench::report::{render_bars, render_rows};

fn main() {
    let count = 10;
    let threads = noc_bench::threads_arg();
    println!("== Fig. 5: category-I random benchmarks (EAS-base / EAS / EDF) ==\n");
    let result = random_category_threads(Category::I, count, threads);
    println!("{}", render_rows(&result.rows));

    let labels: Vec<String> = (0..count).map(|i| format!("benchmark {i}")).collect();
    let pick = |name: &str| -> Vec<f64> {
        result
            .rows
            .iter()
            .filter(|r| r.scheduler == name)
            .map(|r| r.energy_nj)
            .collect()
    };
    println!(
        "{}",
        render_bars(
            &labels,
            &[
                ("eas-base", pick("eas-base")),
                ("eas", pick("eas")),
                ("edf", pick("edf"))
            ],
            50,
        )
    );
    println!(
        "EDF consumes on average {:.0}% more energy than EAS (paper: 55%).",
        result.avg_edf_overhead_percent
    );
    println!(
        "EAS-base missed deadlines on benchmarks {:?} (paper: benchmark 0); EAS repaired all.",
        result.base_miss_benchmarks
    );
    if let Some(path) = write_json_artifact("fig5_category1", &result) {
        println!("JSON artifact: {}", path.display());
    }
}
