//! Reproduces **Fig. 7**: energy consumption of EAS and EDF schedules of
//! the integrated A/V system as the required performance (encoding /
//! decoding rate) scales from the 40/67 frames-per-second baseline up to
//! 1.6x — the paper's "unified performance ratio".

use noc_bench::experiments::{tradeoff_sweep_threads, write_json_artifact};
use noc_bench::report::render_series;
use noc_ctg::prelude::Clip;

fn main() {
    println!("== Fig. 7: energy vs unified performance ratio (integrated MSB, foreman) ==\n");
    let ratios: Vec<f64> = (0..=6).map(|i| 1.0 + 0.1 * f64::from(i)).collect();
    let result = tradeoff_sweep_threads(Clip::Foreman, &ratios, noc_bench::threads_arg());
    println!(
        "{}",
        render_series(
            "ratio",
            &result.ratios,
            &[
                ("eas(nJ)", result.eas_energy_nj.clone()),
                ("edf(nJ)", result.edf_energy_nj.clone()),
            ],
        )
    );
    for (i, &r) in result.ratios.iter().enumerate() {
        if result.eas_misses[i] > 0 || result.edf_misses[i] > 0 {
            println!(
                "ratio {r:.1}: deadline misses (eas {}, edf {}) — constraint no longer schedulable",
                result.eas_misses[i], result.edf_misses[i]
            );
        }
    }
    println!(
        "\nEAS energy grows as the constraints tighten ({}% from ratio 1.0 to {:.1}) — \
         the scheduler loses the freedom to pick lean PEs (paper Fig. 7 shape).",
        ((result.eas_energy_nj.last().unwrap() / result.eas_energy_nj[0] - 1.0) * 100.0).round(),
        result.ratios.last().unwrap()
    );
    if let Some(path) = write_json_artifact("fig7_tradeoff", &result) {
        println!("JSON artifact: {}", path.display());
    }
}
