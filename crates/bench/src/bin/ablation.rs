//! Ablation study over the EAS design choices (`DESIGN.md` experiment
//! index): weight function, slack budgeting, contention-aware
//! communication and search-and-repair, each evaluated on the same
//! seeded category-II benchmarks.

use noc_bench::experiments::{ablation_study_threads, write_json_artifact};

fn main() {
    let seeds = 10;
    println!("== Ablation study ({seeds} category-II benchmarks, 4x4 NoC) ==\n");
    let rows = ablation_study_threads(seeds, noc_bench::threads_arg());
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>12}",
        "config", "mean energy(nJ)", "miss benches", "total misses", "runtime(s)"
    );
    for r in &rows {
        println!(
            "{:<22} {:>14.1} {:>14} {:>12} {:>12.3}",
            r.config, r.mean_energy_nj, r.miss_benchmarks, r.total_misses, r.mean_runtime_s
        );
    }
    println!(
        "\nReading guide: the paper's weight (var-e*var-r) should sit on the best\n\
         energy/miss frontier; 'no budgeting' trades misses for energy; 'fixed-delay\n\
         comm' shows why contention-aware scheduling matters; EDF anchors the energy\n\
         ceiling."
    );
    if let Some(path) = write_json_artifact("ablation", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
