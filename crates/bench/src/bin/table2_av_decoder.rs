//! Reproduces **Table 2**: EAS vs EDF on the MP3/H.263 A/V decoder
//! application (16 tasks) scheduled on a heterogeneous 2x2 NoC, for the
//! clips akiyo / foreman / toybox.

use noc_bench::experiments::{multimedia_table, write_json_artifact};
use noc_ctg::prelude::MultimediaApp;

fn main() {
    println!("== Table 2: A/V decoder (16 tasks, 2x2 NoC) ==\n");
    let table = multimedia_table(MultimediaApp::AvDecoder);
    println!("{}", table.render());
    if let Some(path) = write_json_artifact("table2_av_decoder", &table) {
        println!("JSON artifact: {}", path.display());
    }
}
