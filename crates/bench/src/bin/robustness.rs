//! Extension study: schedule robustness under execution-time jitter.
//! Each scheduler's integrated-A/V schedule is replayed on the wormhole
//! simulator with task runtimes perturbed by ±jitter; we count the
//! Monte-Carlo trials whose realized execution misses a deadline.

use noc_bench::experiments::{robustness_study_at_ratio, write_json_artifact};

fn main() {
    let jitters = [0.0, 0.02, 0.05, 0.10, 0.15];
    let trials = 50;
    let ratio = 1.5; // stressed operating point from the Fig. 7 sweep
    println!(
        "== Extension: runtime-jitter robustness (A/V integrated, 3x3, ratio {ratio}, {trials} trials) ==\n"
    );
    let rows = robustness_study_at_ratio(&jitters, trials, ratio);
    println!(
        "{:<9} {:>8} {:>12} {:>16}",
        "sched", "jitter", "miss trials", "mean makespan"
    );
    for r in &rows {
        println!(
            "{:<9} {:>7.0}% {:>9}/{:<3} {:>16.0}",
            r.scheduler,
            r.jitter * 100.0,
            r.miss_trials,
            r.trials,
            r.mean_makespan
        );
    }
    println!(
        "\nReading guide: EAS packs lean PEs close to their budgets, so its miss\n\
         onset under jitter marks how much slack the budgeting left in the\n\
         artifact; EDF's speed-first schedules carry more slack and resist\n\
         longer. A deployment would re-profile or pad deadlines accordingly."
    );
    if let Some(path) = write_json_artifact("robustness", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
