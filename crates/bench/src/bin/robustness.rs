//! Extension study: schedule robustness under execution-time jitter.
//! Each scheduler's integrated-A/V schedule is replayed on the wormhole
//! simulator with task runtimes perturbed by ±jitter; we count the
//! Monte-Carlo trials whose realized execution misses a deadline.
//!
//! Flags (defaults match the historical fixed configuration):
//! `--jitters 0.0,0.02,0.05,0.10,0.15`, `--trials 50`, `--ratio 1.5`.

use noc_bench::experiments::{try_robustness_study_at_ratio, write_json_artifact};

fn main() {
    let mut jitters = vec![0.0, 0.02, 0.05, 0.10, 0.15];
    let mut trials = 50usize;
    let mut ratio = 1.5f64; // stressed operating point from the Fig. 7 sweep

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("error: {} needs a value", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--jitters" => {
                jitters = value(&mut i).split(',').map(parse::<f64>).collect();
                if jitters.is_empty() {
                    eprintln!("error: --jitters needs at least one value");
                    std::process::exit(2);
                }
            }
            "--trials" => trials = parse(&value(&mut i)),
            "--ratio" => ratio = parse(&value(&mut i)),
            other => {
                eprintln!(
                    "error: unknown argument {other}\n\
                     usage: robustness [--jitters J1,J2,...] [--trials N] [--ratio R]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "== Extension: runtime-jitter robustness (A/V integrated, 3x3, ratio {ratio}, {trials} trials) ==\n"
    );
    let rows = try_robustness_study_at_ratio(&jitters, trials, ratio).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!(
        "{:<9} {:>8} {:>12} {:>16}",
        "sched", "jitter", "miss trials", "mean makespan"
    );
    for r in &rows {
        println!(
            "{:<9} {:>7.0}% {:>9}/{:<3} {:>16.0}",
            r.scheduler,
            r.jitter * 100.0,
            r.miss_trials,
            r.trials,
            r.mean_makespan
        );
    }
    println!(
        "\nReading guide: EAS packs lean PEs close to their budgets, so its miss\n\
         onset under jitter marks how much slack the budgeting left in the\n\
         artifact; EDF's speed-first schedules carry more slack and resist\n\
         longer. A deployment would re-profile or pad deadlines accordingly."
    );
    let Some(path) = write_json_artifact("robustness", &rows) else {
        eprintln!("error: failed to write the robustness artifact");
        std::process::exit(1);
    };
    println!("JSON artifact: {}", path.display());
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}
