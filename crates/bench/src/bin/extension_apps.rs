//! Extension study: the OFDM baseband transceiver and IP packet
//! pipeline benchmarks across light/nominal/heavy loads — workload
//! regimes (DSP-saturated wide stages; control-heavy branches) outside
//! the paper's multimedia set.

use noc_bench::experiments::{extension_apps, write_json_artifact};
use noc_bench::report::render_rows;

fn main() {
    println!("== Extension applications: OFDM transceiver & packet pipeline ==\n");
    let rows = extension_apps();
    println!("{}", render_rows(&rows));
    println!(
        "Reading guide: the DSP-heavy OFDM chains widen the EAS/EDF gap (heterogeneity\n\
         variance is the EAS weight); the control-heavy packet pipeline narrows it.\n\
         EAS must stay deadline-clean on all loads."
    );
    if let Some(path) = write_json_artifact("extension_apps", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
