//! Fault-injection sweep for CI: graceful degradation of EAS vs EDF
//! under `k = 0..N` random permanent PE/channel faults on the
//! A/V-integrated benchmark, comparing a pristine schedule limping
//! through the faults against a masked-resource re-repair. Writes
//! `BENCH_faults.json` (first positional argument overrides the path).
//!
//! Flags: `--max-faults <N>` (default 3), `--trials <N>` (default 10),
//! `--seed <N>` (default 0xFA17). The sweep is fully deterministic for
//! a given seed.

use noc_bench::experiments::try_fault_sweep_study;

fn main() {
    let mut out_path = "BENCH_faults.json".to_owned();
    let mut max_faults = 3usize;
    let mut trials = 10usize;
    let mut seed = 0xFA17u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("error: {} needs a value", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--max-faults" => max_faults = parse(&flag_value(&mut i)),
            "--trials" => trials = parse(&flag_value(&mut i)),
            "--seed" => seed = parse(&flag_value(&mut i)),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
            path => out_path = path.to_owned(),
        }
        i += 1;
    }

    println!(
        "== Extension: fault-injection sweep (A/V integrated, 3x3, k = 0..={max_faults}, \
         {trials} trials, seed {seed:#x}) ==\n"
    );
    let rows = try_fault_sweep_study(max_faults, trials, seed).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!(
        "{:<6} {:>6} {:>9} {:>13} {:>12} {:>10} {:>10}",
        "sched", "faults", "repaired", "unrepaired", "repaired", "recovered", "dE(%)"
    );
    for r in &rows {
        println!(
            "{:<6} {:>6} {:>6}/{:<3} {:>12.3} {:>12.3} {:>10} {:>+10.2}",
            r.scheduler,
            r.faults,
            r.repaired_trials,
            r.trials,
            r.unrepaired_met,
            r.repaired_met,
            r.recovered_deadlines,
            r.mean_energy_delta_percent,
        );
    }
    println!(
        "\nReading guide: `unrepaired` is the deadline-met fraction when the\n\
         pristine schedule keeps running while the faults strike at t=0 —\n\
         everything downstream of a dead resource strands. `repaired` masks\n\
         the same faults into the platform and re-repairs the schedule\n\
         (EAS: evacuation + masked search-and-repair; EDF: reschedule).\n\
         `recovered` counts the deadlines the repair wins back."
    );

    match serde_json::to_string_pretty(&rows) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nArtifact written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize rows: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}
