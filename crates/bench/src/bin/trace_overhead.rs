//! Tracing overhead gate for CI: schedules the Fig. 5-style category-I
//! workload through the plain entry point and through `schedule_traced`
//! with a `NullSink`, interleaved min-of-N timed, and fails when the
//! disabled-tracing path costs more than the overhead budget — or when
//! the two paths stop producing byte-identical schedules. A
//! `BufferSink` run is timed alongside for reference (how much a fully
//! recorded trace costs) but is informational, not gated.
//!
//! Writes `BENCH_trace.json` (first argument overrides the path) and
//! exits non-zero on a gate violation.

use std::time::Instant;

use serde::Serialize;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

/// Interleaved timing rounds per configuration; the minimum is kept.
/// The minimum of many rounds is robust against scheduler preemption
/// noise, which an average would smear into false gate failures.
const RUNS: usize = 9;
/// The gate: NullSink tracing may cost at most this much relative to
/// the plain entry point.
const MAX_OVERHEAD_PCT: f64 = 2.0;

#[derive(Debug, Serialize)]
struct Case {
    graph: String,
    tasks: usize,
    edges: usize,
    untraced_s: f64,
    nullsink_s: f64,
    /// Relative cost of the disabled-tracing path, percent (negative
    /// values mean measurement noise favored the traced run).
    overhead_pct: f64,
    /// Reference only: a full `BufferSink` recording of the same run.
    buffersink_s: f64,
    events_recorded: usize,
    identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    runs: usize,
    max_overhead_pct: f64,
    cases: Vec<Case>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_owned());
    let platform = platforms::mesh_4x4();
    println!("== NullSink tracing overhead gate (budget {MAX_OVERHEAD_PCT}%, min of {RUNS}) ==\n");
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>9} {:>12} {:>8}",
        "graph", "tasks", "untraced(s)", "nullsink(s)", "over(%)", "buffered(s)", "events"
    );

    let mut cases = Vec::new();
    let mut failed = false;
    for task_count in [96usize, 192] {
        let mut cfg = TgffConfig::category_i(42);
        cfg.task_count = task_count;
        cfg.width = (task_count / 20).max(4);
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let scheduler = EasScheduler::new(EasConfig::default());
        let budget = ComputeBudget::unlimited();

        let mut untraced_s = f64::INFINITY;
        let mut nullsink_s = f64::INFINITY;
        let mut buffersink_s = f64::INFINITY;
        let mut plain_out = None;
        let mut traced_out = None;
        let mut events_recorded = 0usize;
        // Interleave the variants within each round so drift (thermal,
        // cache, competing load) hits all of them equally.
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let out = scheduler.schedule(&graph, &platform).expect("schedules");
            untraced_s = untraced_s.min(t0.elapsed().as_secs_f64());
            plain_out = Some(out);

            let mut null = NullSink;
            let t0 = Instant::now();
            let out = scheduler
                .schedule_traced(&graph, &platform, &budget, &mut null)
                .expect("schedules");
            nullsink_s = nullsink_s.min(t0.elapsed().as_secs_f64());
            traced_out = Some(out);

            let mut buffer = BufferSink::new();
            let t0 = Instant::now();
            let _ = scheduler
                .schedule_traced(&graph, &platform, &budget, &mut buffer)
                .expect("schedules");
            buffersink_s = buffersink_s.min(t0.elapsed().as_secs_f64());
            events_recorded = buffer.events().len();
        }

        let plain_out = plain_out.expect("at least one run");
        let traced_out = traced_out.expect("at least one run");
        let identical = plain_out.schedule == traced_out.schedule;
        let overhead_pct = (nullsink_s - untraced_s) / untraced_s * 100.0;
        println!(
            "{:<22} {:>6} {:>12.4} {:>12.4} {:>9.2} {:>12.4} {:>8}",
            graph.name(),
            graph.task_count(),
            untraced_s,
            nullsink_s,
            overhead_pct,
            buffersink_s,
            events_recorded,
        );
        if !identical {
            eprintln!(
                "error: traced schedule diverged from untraced on {}",
                graph.name()
            );
            failed = true;
        }
        if overhead_pct > MAX_OVERHEAD_PCT {
            eprintln!(
                "error: NullSink tracing costs {overhead_pct:.2}% on {} (budget {MAX_OVERHEAD_PCT}%)",
                graph.name()
            );
            failed = true;
        }
        cases.push(Case {
            graph: graph.name().to_owned(),
            tasks: graph.task_count(),
            edges: graph.edge_count(),
            untraced_s,
            nullsink_s,
            overhead_pct,
            buffersink_s,
            events_recorded,
            identical,
        });
    }

    let report = Report {
        bench: "trace_overhead".to_owned(),
        runs: RUNS,
        max_overhead_pct: MAX_OVERHEAD_PCT,
        cases,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nArtifact written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    }
    if failed {
        std::process::exit(1);
    }
}
