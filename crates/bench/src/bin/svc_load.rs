//! Load generator for the `noceas serve` scheduling service. Fires a
//! fixed-seed request mix at a running server from several concurrent
//! keep-alive clients, checks every answer for byte determinism
//! (identical bodies for identical requests, across clients and across
//! cold/cached/coalesced serving), and writes `BENCH_service.json`
//! with throughput, latency percentiles and cache statistics.
//!
//! Flags: `--addr <host:port>` (default `127.0.0.1:8533`),
//! `--requests <N>` (default 1200), `--clients <N>` (default 4),
//! `--graphs <N>` distinct problems (default 12), `--seed <N>`
//! (default 0x5EC), `--timeout-ms <N>` client read/write timeout
//! (default 60000), `--stats` to scrape the per-stage
//! `noc_svc_stage_seconds` histograms before and after the wave and
//! record the deltas in the artifact. The first positional argument
//! overrides the artifact path. Exits non-zero on any transport error,
//! non-200 answer, or determinism violation.
//!
//! `--idle-conns <N>` additionally parks N idle keep-alive
//! connections on the server for the whole wave (the reactor's 10k+
//! concurrent-connection gate) and fails the run if a post-wave
//! sample of them no longer answers. Raise `ulimit -n` accordingly,
//! and give the server an `--timeout-ms`-scale io timeout so the
//! keep-alive sweep doesn't reap the pool mid-wave.
//!
//! Cluster mode, for the multi-node CI gate:
//!
//! * `--nodes <addr,addr,...>` — sprays the fixed-seed problem mix
//!   round-robin across the listed nodes (fill), then demands every
//!   node answer every problem byte-identically (verify), counting
//!   peer cache-fills vs. local recomputes from each node's
//!   `noc_svc_cluster_*` metrics, and writes `BENCH_cluster.json`,
//!   including per-hop latency attribution: verify-round percentiles
//!   split by `X-Cache` serving class, slow-ring membership, and
//!   per-stage span costs scraped from the nodes' flight recorders.
//! * `--chaos-net <ctrl,ctrl,...>` (with `--nodes`) — partition drill
//!   against nodes listening behind `net_chaos` proxies, one control
//!   address per node: fill, deny the first node's inbound proxy,
//!   read everything from the survivors (latency percentiles prove
//!   the failure detector skips the down peer instead of burning the
//!   per-op timeout), heal, wait for anti-entropy to restore full
//!   owner+successor replication (digest-verified), then gate a
//!   byte-identical full re-read from every node with **zero**
//!   schedule recomputes. Writes `BENCH_partition.json`. The `--nodes`
//!   strings must be the proxy addresses exactly as the nodes name
//!   each other, so the driver's ring matches the cluster's.
//!
//! Chaos modes, for the crash-recovery CI gate:
//!
//! * `--chaos [--jobs N] [--state chaos_state.json]` — attacks a
//!   *journaled* server: posts `chaos-panic` requests (each must fail
//!   with an isolated 500 while the service keeps answering), kills
//!   connections mid-request, then submits N async jobs and records
//!   their ids plus the locally computed expected response bytes in the
//!   state file. The harness SIGKILLs the server afterwards.
//! * `--chaos-verify --state chaos_state.json` — runs against the
//!   *restarted* server: polls every recorded job until the replayed
//!   journal finishes it, byte-compares each response against the
//!   expected bytes, re-posts each body expecting the identical answer,
//!   and writes the `BENCH_chaos.json` artifact.
//!
//! Delta modes, for the warm-start CI gate (`POST /v1/schedule/delta`):
//!
//! * `--delta [--jobs N] [--state delta_state.json]` — computes every
//!   delta answer locally (prior EAS schedule, edits applied, warm-start
//!   repair), checks sync answers from two independent clients are
//!   byte-identical to each other and to the local bytes (covering both
//!   warm-start and forced-fallback edit sequences), then submits N
//!   async journaled delta jobs and records their ids, bodies, expected
//!   bytes, and the graph/edits needed to re-validate. The harness
//!   SIGKILLs the server afterwards.
//! * `--delta-verify --state delta_state.json` — runs against the
//!   *restarted* server: polls every recorded delta job, byte-compares
//!   each response against the expected bytes, re-posts each body
//!   expecting the identical answer, structurally validates every
//!   repaired schedule against its *edited* graph and platform, and
//!   writes the `BENCH_delta_svc.json` artifact. With `--expect-store`
//!   the server must be store-backed: the gate additionally posts a
//!   fresh-edit delta whose prior can only come from the persistent
//!   store, and requires `noc_svc_store_hits_total` > 0,
//!   `noc_svc_delta_prior_hits_total` > 0 and an undegraded store.
//!
//! Store modes, for the persistent-store CI gate (`--store-dir`):
//!
//! * `--store-fill [--jobs N] [--state store_state.json]` — posts N
//!   *synchronous* schedule requests to a store-backed server (each
//!   response is durable on disk by the time the 200 arrives), records
//!   every body with its expected bytes in the state file, then
//!   submits a trailing wave of async jobs (a heavy pin first) so the
//!   harness's SIGKILL lands with segment writes and journal entries
//!   in flight.
//! * `--store-verify --state store_state.json` — runs against the
//!   *restarted* server: waits for the replayed backlog to drain,
//!   re-posts every recorded body and requires a byte-identical 200
//!   served as a cache hit with **zero** schedule recomputes and at
//!   least one disk-tier store hit per record
//!   (`noc_svc_store_hits_total`), requires the store undegraded, and
//!   writes the `BENCH_store_svc.json` artifact.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use noc_svc::client::Client;

/// Schedulers cycled through the request mix — the fast baselines, so
/// the load exercises the service rather than the EAS search.
const SCHEDULERS: [&str; 2] = ["edf", "dls"];

/// What one pipeline stage cost over the load wave: the delta of its
/// `noc_svc_stage_seconds` histogram between the pre- and post-wave
/// `/metrics` scrapes.
#[derive(Debug, Serialize)]
struct StageDelta {
    stage: String,
    executions: u64,
    seconds: f64,
    mean_ms: f64,
}

#[derive(Debug, Serialize)]
struct ServiceBench {
    addr: String,
    requests: usize,
    clients: usize,
    distinct_problems: usize,
    errors: usize,
    /// 429 answers that were retried; excluded from `requests`,
    /// throughput and the latency percentiles.
    retries_429: usize,
    determinism_violations: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    schedules_executed: u64,
    requests_coalesced: u64,
    /// TCP connections the workers opened, summed. Equal to the
    /// worker count when keep-alive reuse is perfect (429 retries and
    /// all — a regression here means a connect stampede).
    sockets_opened: u64,
    /// Extra idle keep-alive connections held open through the wave
    /// (`--idle-conns`), and how many of a probed sample still
    /// answered afterwards.
    idle_connections: usize,
    idle_alive_after: usize,
    /// Present only with `--stats`: per-stage scheduling cost over the
    /// wave, from the server's own `noc_svc_stage_seconds` histograms.
    stage_seconds: Option<Vec<StageDelta>>,
}

struct WorkerResult {
    latencies_us: Vec<u64>,
    errors: usize,
    /// 429 backpressure answers that were slept on and retried.
    retries_429: usize,
    /// First response body seen per request-mix index.
    bodies: HashMap<usize, String>,
    /// Determinism violations observed *within* this worker.
    violations: usize,
    /// TCP connections this worker's client opened.
    sockets_opened: u64,
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut addr_text = "127.0.0.1:8533".to_owned();
    let mut requests = 1200usize;
    let mut clients = 4usize;
    let mut graphs = 12usize;
    let mut seed = 0x5ECu64;
    let mut timeout_ms = 60_000u64;
    let mut stats = false;
    let mut chaos = false;
    let mut chaos_verify = false;
    let mut delta = false;
    let mut delta_verify = false;
    let mut store_fill = false;
    let mut store_verify = false;
    let mut expect_store = false;
    let mut jobs = 8usize;
    let mut state_path = "chaos_state.json".to_owned();
    let mut nodes_text: Option<String> = None;
    let mut chaos_net_text: Option<String> = None;
    let mut idle_conns = 0usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("error: {} needs a value", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--addr" => addr_text = flag_value(&mut i),
            "--requests" => requests = parse(&flag_value(&mut i)),
            "--clients" => clients = parse::<usize>(&flag_value(&mut i)).max(1),
            "--graphs" => graphs = parse::<usize>(&flag_value(&mut i)).max(1),
            "--seed" => seed = parse(&flag_value(&mut i)),
            "--timeout-ms" => timeout_ms = parse::<u64>(&flag_value(&mut i)).max(1),
            "--jobs" => jobs = parse::<usize>(&flag_value(&mut i)).max(1),
            "--state" => state_path = flag_value(&mut i),
            "--stats" => stats = true,
            "--chaos" => chaos = true,
            "--chaos-verify" => chaos_verify = true,
            "--delta" => delta = true,
            "--delta-verify" => delta_verify = true,
            "--store-fill" => store_fill = true,
            "--store-verify" => store_verify = true,
            "--expect-store" => expect_store = true,
            "--nodes" => nodes_text = Some(flag_value(&mut i)),
            "--chaos-net" => chaos_net_text = Some(flag_value(&mut i)),
            "--idle-conns" => idle_conns = parse(&flag_value(&mut i)),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
            path => out_path = Some(path.to_owned()),
        }
        i += 1;
    }
    let addr: SocketAddr = addr_text.parse().unwrap_or_else(|_| {
        eprintln!("error: bad --addr {addr_text:?}");
        std::process::exit(2);
    });
    let timeout = Duration::from_millis(timeout_ms);

    if [
        chaos,
        chaos_verify,
        delta,
        delta_verify,
        store_fill,
        store_verify,
    ]
    .iter()
    .filter(|&&m| m)
    .count()
        > 1
    {
        eprintln!(
            "error: --chaos, --chaos-verify, --delta, --delta-verify, --store-fill and \
             --store-verify are mutually exclusive"
        );
        std::process::exit(2);
    }
    if store_fill || store_verify {
        let state = if state_path == "chaos_state.json" {
            "store_state.json".to_owned()
        } else {
            state_path.clone()
        };
        if store_fill {
            std::process::exit(run_store_fill(addr, seed, jobs, timeout, &state));
        }
        let out = out_path.unwrap_or_else(|| "BENCH_store_svc.json".to_owned());
        std::process::exit(run_store_verify(addr, &addr_text, timeout, &state, &out));
    }
    if delta {
        let state = if state_path == "chaos_state.json" {
            "delta_state.json".to_owned()
        } else {
            state_path.clone()
        };
        std::process::exit(run_delta(addr, seed, jobs, timeout, &state));
    }
    if delta_verify {
        let state = if state_path == "chaos_state.json" {
            "delta_state.json".to_owned()
        } else {
            state_path.clone()
        };
        let out = out_path.unwrap_or_else(|| "BENCH_delta_svc.json".to_owned());
        std::process::exit(run_delta_verify(
            addr,
            &addr_text,
            timeout,
            &state,
            &out,
            expect_store,
        ));
    }
    if let Some(nodes_text) = nodes_text {
        let mut nodes = Vec::new();
        for part in nodes_text
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
        {
            match part.parse::<SocketAddr>() {
                Ok(node) => nodes.push((part.to_owned(), node)),
                Err(_) => {
                    eprintln!("error: bad --nodes address {part:?}");
                    std::process::exit(2);
                }
            }
        }
        if nodes.len() < 2 {
            eprintln!("error: --nodes needs at least two comma-separated addresses");
            std::process::exit(2);
        }
        if let Some(ctrl_text) = chaos_net_text {
            let mut controls = Vec::new();
            for part in ctrl_text
                .split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
            {
                match part.parse::<SocketAddr>() {
                    Ok(ctrl) => controls.push(ctrl),
                    Err(_) => {
                        eprintln!("error: bad --chaos-net address {part:?}");
                        std::process::exit(2);
                    }
                }
            }
            if controls.len() != nodes.len() {
                eprintln!(
                    "error: --chaos-net needs one control address per --nodes entry \
                     ({} controls for {} nodes)",
                    controls.len(),
                    nodes.len()
                );
                std::process::exit(2);
            }
            let out = out_path.unwrap_or_else(|| "BENCH_partition.json".to_owned());
            std::process::exit(run_chaos_net(
                &nodes, &controls, seed, graphs, timeout, &out,
            ));
        }
        let out = out_path.unwrap_or_else(|| "BENCH_cluster.json".to_owned());
        std::process::exit(run_cluster(&nodes, seed, graphs, timeout, &out));
    }
    if chaos_net_text.is_some() {
        eprintln!("error: --chaos-net requires --nodes");
        std::process::exit(2);
    }
    if chaos {
        std::process::exit(run_chaos(addr, seed, jobs, timeout, &state_path));
    }
    if chaos_verify {
        let out = out_path.unwrap_or_else(|| "BENCH_chaos.json".to_owned());
        std::process::exit(run_chaos_verify(
            addr,
            &addr_text,
            timeout,
            &state_path,
            &out,
        ));
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_service.json".to_owned());

    // With `--stats` the mix also cycles the full EAS pipeline: it is
    // the instrumented scheduler, so the per-stage histograms this flag
    // exists to measure actually accumulate samples.
    let mut schedulers: Vec<&str> = SCHEDULERS.to_vec();
    if stats {
        schedulers.push("eas");
    }
    println!(
        "== svc_load: {requests} requests, {clients} clients, {graphs} graphs x \
         {} schedulers, seed {seed:#x} -> {addr} ==",
        schedulers.len()
    );

    // A fixed-seed request mix: `graphs` distinct CTGs times the
    // scheduler list. Identical mix indices must answer identical bytes.
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let mut mix: Vec<String> = Vec::new();
    for g in 0..graphs {
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(g as u64));
        cfg.task_count = 10 + (g % 4) * 2;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        for scheduler in &schedulers {
            mix.push(format!(
                r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#
            ));
        }
    }
    let mix = Arc::new(mix);

    // Warm up the connection path (and fail fast if nothing listens).
    let mut probe = Client::connect_retry(addr, Duration::from_secs(10)).unwrap_or_else(|e| {
        eprintln!("error: cannot reach {addr}: {e}");
        std::process::exit(1);
    });
    let _ = probe.set_timeout(timeout);
    let health = probe.get("/healthz").unwrap_or_else(|e| {
        eprintln!("error: /healthz failed: {e}");
        std::process::exit(1);
    });
    if health.status != 200 {
        eprintln!("error: /healthz answered {}", health.status);
        std::process::exit(1);
    }
    // Pre-wave stage baseline, so a warm server's earlier jobs don't
    // pollute this wave's per-stage deltas.
    let stages_before = if stats {
        scrape_stages(&probe.get("/metrics").map(|r| r.body).unwrap_or_default())
    } else {
        HashMap::new()
    };

    // `--idle-conns`: park N extra keep-alive connections on the
    // server for the whole wave. Against the reactor this costs a few
    // poll entries, not threads — the point of the flag is proving
    // that request latency and byte determinism hold while tens of
    // thousands of idle sockets sit open.
    let mut idle_pool: Vec<std::net::TcpStream> = Vec::new();
    if idle_conns > 0 {
        let opening = Instant::now();
        for k in 0..idle_conns {
            match std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
                Ok(conn) => idle_pool.push(conn),
                Err(e) => {
                    eprintln!("error: idle connection {k} failed: {e} (raise ulimit -n?)");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "holding {} idle keep-alive connections (opened in {:.2}s)",
            idle_pool.len(),
            opening.elapsed().as_secs_f64()
        );
    }

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|worker| {
            let mix = Arc::clone(&mix);
            std::thread::spawn(move || run_worker(addr, &mix, worker, clients, requests, timeout))
        })
        .collect();
    let results: Vec<WorkerResult> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();
    let wall_s = started.elapsed().as_secs_f64();

    // Merge: identical mix indices must have answered identical bytes
    // across *all* workers, not just within one.
    let mut errors = 0usize;
    let mut retries_429 = 0usize;
    let mut violations = 0usize;
    let mut sockets_opened = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut reference: HashMap<usize, String> = HashMap::new();
    for r in results {
        errors += r.errors;
        retries_429 += r.retries_429;
        violations += r.violations;
        sockets_opened += r.sockets_opened;
        latencies.extend(r.latencies_us);
        for (idx, body) in r.bodies {
            match reference.get(&idx) {
                None => {
                    reference.insert(idx, body);
                }
                Some(seen) if *seen == body => {}
                Some(_) => {
                    eprintln!("determinism violation: mix index {idx} answered divergent bodies across clients");
                    violations += 1;
                }
            }
        }
    }
    latencies.sort_unstable();
    let done = latencies.len();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((done as f64) * p).ceil() as usize;
        latencies[idx.clamp(1, done) - 1] as f64 / 1000.0
    };

    // Cache statistics straight from the server's own metrics.
    let metrics = probe.get("/metrics").map(|r| r.body).unwrap_or_default();
    let cache_hits = scrape(&metrics, "noc_svc_cache_hits_total");
    let cache_misses = scrape(&metrics, "noc_svc_cache_misses_total");
    let stage_seconds = stats.then(|| {
        let after = scrape_stages(&metrics);
        let mut deltas: Vec<StageDelta> = after
            .into_iter()
            .map(|(stage, (count, sum))| {
                let (count0, sum0) = stages_before.get(&stage).copied().unwrap_or((0, 0.0));
                let executions = count.saturating_sub(count0);
                let seconds = (sum - sum0).max(0.0);
                StageDelta {
                    stage,
                    executions,
                    seconds,
                    mean_ms: if executions > 0 {
                        seconds * 1000.0 / executions as f64
                    } else {
                        0.0
                    },
                }
            })
            .filter(|d| d.executions > 0)
            .collect();
        deltas.sort_by(|a, b| a.stage.cmp(&b.stage));
        for d in &deltas {
            println!(
                "stage {:<12} {:>6} executions, {:>9.3}s total, {:>8.3}ms mean",
                d.stage, d.executions, d.seconds, d.mean_ms
            );
        }
        deltas
    });
    // Prove a sample of the idle pool is still live keep-alive state,
    // not half-closed sockets the server forgot.
    let mut idle_alive_after = 0usize;
    if !idle_pool.is_empty() {
        let stride = (idle_pool.len() / 64).max(1);
        let mut probed = 0usize;
        for conn in idle_pool.iter_mut().step_by(stride) {
            probed += 1;
            if idle_probe(conn) {
                idle_alive_after += 1;
            }
        }
        println!("idle pool: {idle_alive_after}/{probed} sampled connections still answer");
        if idle_alive_after < probed {
            eprintln!(
                "error: {} sampled idle connections died",
                probed - idle_alive_after
            );
            errors += probed - idle_alive_after;
        }
    }

    let report = ServiceBench {
        addr: addr_text,
        requests: done,
        clients,
        distinct_problems: mix.len(),
        errors,
        retries_429,
        determinism_violations: violations,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            done as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_ms: latencies.last().map_or(0.0, |&v| v as f64 / 1000.0),
        cache_hits,
        cache_misses,
        cache_hit_rate: if cache_hits + cache_misses > 0 {
            cache_hits as f64 / (cache_hits + cache_misses) as f64
        } else {
            0.0
        },
        schedules_executed: scrape(&metrics, "noc_svc_schedules_executed_total"),
        requests_coalesced: scrape(&metrics, "noc_svc_requests_coalesced_total"),
        sockets_opened,
        idle_connections: idle_pool.len(),
        idle_alive_after,
        stage_seconds,
    };
    if stats {
        println!(
            "reactor: {} connections open, {} accepted, {} wakeups, {} write stalls",
            scrape(&metrics, "noc_svc_reactor_connections"),
            scrape(&metrics, "noc_svc_reactor_accepted_total"),
            scrape(&metrics, "noc_svc_reactor_wakeups_total"),
            scrape(&metrics, "noc_svc_reactor_write_stalls_total"),
        );
    }

    println!(
        "{done} requests in {wall_s:.2}s ({:.0} rps) | p50 {:.2}ms p99 {:.2}ms | \
         cache hit rate {:.1}% | {retries_429} backpressure retries | \
         {errors} errors, {violations} determinism violations",
        report.throughput_rps,
        report.p50_ms,
        report.p99_ms,
        report.cache_hit_rate * 100.0,
    );

    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    }
    if errors > 0 || violations > 0 {
        eprintln!("error: load run failed ({errors} errors, {violations} determinism violations)");
        std::process::exit(1);
    }
}

/// One client worker: sends its strided share of the request sequence
/// over a single keep-alive connection.
fn run_worker(
    addr: SocketAddr,
    mix: &[String],
    worker: usize,
    clients: usize,
    requests: usize,
    timeout: Duration,
) -> WorkerResult {
    let mut result = WorkerResult {
        latencies_us: Vec::new(),
        errors: 0,
        retries_429: 0,
        bodies: HashMap::new(),
        violations: 0,
        sockets_opened: 0,
    };
    let mut client = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("worker {worker}: cannot connect: {e}");
            result.errors += 1;
            return result;
        }
    };
    let _ = client.set_timeout(timeout);
    let mut n = worker;
    while n < requests {
        let idx = n % mix.len();
        let sent = Instant::now();
        match client.post("/v1/schedule", &mix[idx]) {
            Ok(resp) => {
                if resp.status == 429 {
                    // Honest backpressure: honor the server's
                    // Retry-After (capped — it only ever asks for a
                    // second) and retry the same request on the SAME
                    // keep-alive socket instead of counting an error.
                    // Not a completed request — it contributes neither a
                    // latency sample nor a throughput count.
                    let wait = resp
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs)
                        .unwrap_or(Duration::from_millis(50))
                        .min(Duration::from_secs(2));
                    result.retries_429 += 1;
                    std::thread::sleep(wait);
                    continue;
                }
                result.latencies_us.push(sent.elapsed().as_micros() as u64);
                if resp.status != 200 {
                    eprintln!(
                        "worker {worker}: request {n} answered {}: {}",
                        resp.status, resp.body
                    );
                    result.errors += 1;
                } else {
                    match result.bodies.get(&idx) {
                        None => {
                            result.bodies.insert(idx, resp.body);
                        }
                        Some(seen) if *seen == resp.body => {}
                        Some(_) => {
                            eprintln!("worker {worker}: determinism violation at mix index {idx}");
                            result.violations += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("worker {worker}: request {n} failed: {e}");
                result.errors += 1;
            }
        }
        n += clients;
    }
    result.sockets_opened = client.sockets_opened();
    result
}

/// Sends one keep-alive `/healthz` round trip on a raw idle socket.
fn idle_probe(conn: &mut std::net::TcpStream) -> bool {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    if conn
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: noc-svc\r\nContent-Length: 0\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut buf = [0u8; 512];
    match conn.read(&mut buf) {
        Ok(n) if n > 0 => buf[..n].starts_with(b"HTTP/1.1 200"),
        _ => false,
    }
}

/// The `BENCH_cluster.json` artifact.
#[derive(Debug, Serialize)]
struct ClusterBench {
    nodes: Vec<String>,
    /// Distinct problems sprayed in the fill round.
    distinct_problems: usize,
    /// Requests answered across both rounds.
    requests: usize,
    errors: usize,
    determinism_violations: usize,
    /// Cross-node cache fills during the verify round (misses answered
    /// by fetching the owner's bytes instead of recomputing).
    peer_fills: u64,
    /// Peer-fill probes that found nothing and fell back to compute.
    peer_fill_misses: u64,
    /// Schedule computations across the cluster — the fill round's
    /// cost; the verify round must not add recomputes beyond what
    /// peer fill cannot cover.
    schedules_executed: u64,
    /// Internal lookups each node served for its peers.
    lookups_served: u64,
    /// Replication traffic observed (sent/received done-records).
    replication_sent: u64,
    replication_received: u64,
    /// Verify-round request latency percentiles, all nodes pooled —
    /// the number a down peer would inflate if fills burned the
    /// per-operation timeout instead of skipping via the detector.
    verify_p50_ms: f64,
    verify_p99_ms: f64,
    /// Verify-round latency split by how each answer was served
    /// (`X-Cache`: hit / peer / miss), with per-stage span costs from
    /// the nodes' flight recorders.
    hop_attribution: Vec<HopClass>,
    wall_s: f64,
}

/// Traces sampled per serving class for the per-stage span breakdown
/// (each sample costs one `/v1/internal/trace/<id>` scrape per node).
const TRACE_SAMPLES_PER_CLASS: usize = 8;

/// Latency and span attribution for one serving class, keyed by the
/// `X-Cache` answer label: `hit` = local cache, `peer` = cross-node
/// fill, `miss` = local compute, `join` = coalesced onto a twin.
#[derive(Debug, Serialize)]
struct HopClass {
    class: String,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    /// Verify-round traces of this class that some node's slow ring
    /// captured (only populated when the servers run a low `--slow-ms`).
    slow_ring_matched: usize,
    /// Per-stage span cost over a sample of this class's traces,
    /// scraped from every node's flight recorder.
    stages: Vec<StageCost>,
}

/// Aggregated cost of one pipeline stage across sampled spans.
#[derive(Debug, Serialize)]
struct StageCost {
    stage: String,
    spans: usize,
    mean_us: f64,
}

/// Builds the per-class attribution table from the verify round's
/// `(class, trace id, latency)` samples: percentiles per class, slow
/// ring membership, and per-stage span costs for a sampled subset of
/// traces scraped from every node's flight recorder.
fn attribute_hops(
    clients: &mut [Client],
    samples: &[(String, Option<String>, u64)],
) -> Vec<HopClass> {
    // Every trace id any node's slow ring holds.
    let mut slow_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    for c in clients.iter_mut() {
        if let Ok(resp) = c.get("/v1/internal/slow") {
            if resp.status == 200 {
                if let Ok(dump) = serde_json::from_str::<noc_svc::obs::SlowDump>(&resp.body) {
                    slow_ids.extend(dump.slow.into_iter().map(|s| s.trace));
                }
            }
        }
    }
    let mut by_class: HashMap<String, Vec<(Option<String>, u64)>> = HashMap::new();
    for (class, trace, us) in samples {
        by_class
            .entry(class.clone())
            .or_default()
            .push((trace.clone(), *us));
    }
    let mut classes: Vec<HopClass> = Vec::new();
    for (class, entries) in by_class {
        let mut lat: Vec<u64> = entries.iter().map(|(_, us)| *us).collect();
        lat.sort_unstable();
        let slow_ring_matched = entries
            .iter()
            .filter(|(t, _)| t.as_ref().is_some_and(|t| slow_ids.contains(t)))
            .count();
        // Per-stage costs over a bounded sample of this class's
        // traces, each reconstructed across every node's recorder.
        let mut stage_sum: HashMap<String, (usize, u64)> = HashMap::new();
        for (trace, _) in entries
            .iter()
            .filter(|(t, _)| t.is_some())
            .take(TRACE_SAMPLES_PER_CLASS)
        {
            let id = trace.as_ref().expect("filtered");
            for c in clients.iter_mut() {
                let Ok(resp) = c.get(&format!("/v1/internal/trace/{id}")) else {
                    continue;
                };
                if resp.status != 200 {
                    continue;
                }
                let Ok(dump) = serde_json::from_str::<noc_svc::obs::TraceDump>(&resp.body) else {
                    continue;
                };
                for span in dump.spans {
                    let slot = stage_sum.entry(span.stage).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += span.wall_us;
                }
            }
        }
        let mut stages: Vec<StageCost> = stage_sum
            .into_iter()
            .map(|(stage, (spans, total_us))| StageCost {
                stage,
                spans,
                mean_us: if spans > 0 {
                    total_us as f64 / spans as f64
                } else {
                    0.0
                },
            })
            .collect();
        stages.sort_by(|a, b| a.stage.cmp(&b.stage));
        classes.push(HopClass {
            class,
            requests: entries.len(),
            p50_ms: pct_ms(&lat, 0.50),
            p99_ms: pct_ms(&lat, 0.99),
            slow_ring_matched,
            stages,
        });
    }
    classes.sort_by(|a, b| a.class.cmp(&b.class));
    classes
}

/// The fixed-seed cluster problem mix: `graphs` distinct CTGs times
/// the fast schedulers, identical across fill/verify/partition runs.
fn cluster_mix(seed: u64, graphs: usize) -> Vec<String> {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let mut mix: Vec<String> = Vec::new();
    for g in 0..graphs {
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(g as u64));
        cfg.task_count = 10 + (g % 4) * 2;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        for scheduler in &SCHEDULERS {
            mix.push(format!(
                r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#
            ));
        }
    }
    mix
}

/// Latency percentile over a sorted sample, in milliseconds.
fn pct_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[idx.clamp(1, sorted_us.len()) - 1] as f64 / 1000.0
}

/// Multi-node driver: fill the cluster through round-robin sprayed
/// requests, then demand byte-identical answers for every problem
/// from **every** node, counting peer fills vs. local recomputes.
fn run_cluster(
    nodes: &[(String, SocketAddr)],
    seed: u64,
    graphs: usize,
    timeout: Duration,
    out_path: &str,
) -> i32 {
    println!(
        "== svc_load --nodes: {} nodes, {graphs} graphs, seed {seed:#x} ==",
        nodes.len()
    );
    let mix = cluster_mix(seed, graphs);

    let mut clients: Vec<Client> = Vec::new();
    for (name, node) in nodes {
        match Client::connect_retry(*node, Duration::from_secs(10)) {
            Ok(mut c) => {
                let _ = c.set_timeout(timeout);
                clients.push(c);
            }
            Err(e) => {
                eprintln!("error: cannot reach node {name}: {e}");
                return 1;
            }
        }
    }

    let scrape_cluster = |clients: &mut Vec<Client>, name: &str| -> u64 {
        let mut total = 0;
        for c in clients.iter_mut() {
            total += scrape(&c.get("/metrics").map(|r| r.body).unwrap_or_default(), name);
        }
        total
    };
    let computes_before = scrape_cluster(&mut clients, "noc_svc_schedules_executed_total");

    let started = Instant::now();
    let mut errors = 0usize;
    let mut violations = 0usize;
    let mut requests = 0usize;

    // Round 1 — fill: each problem goes to one node, round-robin, so
    // ownership and store placement spread across the ring.
    let mut reference: Vec<Option<String>> = vec![None; mix.len()];
    for (idx, body) in mix.iter().enumerate() {
        let n = idx % clients.len();
        match clients[n].post("/v1/schedule", body) {
            Ok(resp) if resp.status == 200 => {
                requests += 1;
                reference[idx] = Some(resp.body);
            }
            Ok(resp) => {
                eprintln!(
                    "fill: node {} answered {} for problem {idx}: {}",
                    nodes[n].0, resp.status, resp.body
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("fill: node {} failed on problem {idx}: {e}", nodes[n].0);
                errors += 1;
            }
        }
    }

    let fills_before = scrape_cluster(&mut clients, "noc_svc_cluster_peer_fill_total");

    // Round 2 — verify: every node must answer every problem with the
    // fill round's exact bytes, wherever those bytes have to come
    // from (local cache, the owner's store via peer fill, or a
    // replica).
    let mut verify_us: Vec<u64> = Vec::new();
    let mut verify_samples: Vec<(String, Option<String>, u64)> = Vec::new();
    for (idx, body) in mix.iter().enumerate() {
        let Some(expected) = &reference[idx] else {
            continue;
        };
        for (n, client) in clients.iter_mut().enumerate() {
            let sent = Instant::now();
            match client.post("/v1/schedule", body) {
                Ok(resp) if resp.status == 200 => {
                    let us = sent.elapsed().as_micros() as u64;
                    verify_us.push(us);
                    verify_samples.push((
                        resp.header("x-cache").unwrap_or("miss").to_owned(),
                        resp.header("x-noc-trace").map(str::to_owned),
                        us,
                    ));
                    requests += 1;
                    if resp.body != *expected {
                        eprintln!(
                            "determinism violation: node {} diverges on problem {idx}",
                            nodes[n].0
                        );
                        violations += 1;
                    }
                }
                Ok(resp) => {
                    eprintln!(
                        "verify: node {} answered {} for problem {idx}",
                        nodes[n].0, resp.status
                    );
                    errors += 1;
                }
                Err(e) => {
                    eprintln!("verify: node {} failed on problem {idx}: {e}", nodes[n].0);
                    errors += 1;
                }
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();

    let report = ClusterBench {
        nodes: nodes.iter().map(|(name, _)| name.clone()).collect(),
        distinct_problems: mix.len(),
        requests,
        errors,
        determinism_violations: violations,
        peer_fills: scrape_cluster(&mut clients, "noc_svc_cluster_peer_fill_total")
            .saturating_sub(fills_before),
        peer_fill_misses: scrape_cluster(&mut clients, "noc_svc_cluster_peer_fill_misses_total"),
        schedules_executed: scrape_cluster(&mut clients, "noc_svc_schedules_executed_total")
            .saturating_sub(computes_before),
        lookups_served: scrape_cluster(&mut clients, "noc_svc_cluster_lookups_served_total"),
        replication_sent: scrape_cluster(&mut clients, "noc_svc_cluster_replication_sent_total"),
        replication_received: scrape_cluster(
            &mut clients,
            "noc_svc_cluster_replication_received_total",
        ),
        verify_p50_ms: {
            verify_us.sort_unstable();
            pct_ms(&verify_us, 0.50)
        },
        verify_p99_ms: pct_ms(&verify_us, 0.99),
        hop_attribution: attribute_hops(&mut clients, &verify_samples),
        wall_s,
    };
    println!(
        "{requests} requests across {} nodes in {wall_s:.2}s | {} peer fills, {} computes, \
         {} lookups served | {errors} errors, {violations} determinism violations",
        nodes.len(),
        report.peer_fills,
        report.schedules_executed,
        report.lookups_served,
    );
    for class in &report.hop_attribution {
        println!(
            "  served as {:<4}: {:>4} requests, p50 {:.2}ms p99 {:.2}ms, {} in slow rings, \
             {} stages sampled",
            class.class,
            class.requests,
            class.p50_ms,
            class.p99_ms,
            class.slow_ring_matched,
            class.stages.len(),
        );
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                return 1;
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return 1;
        }
    }
    i32::from(errors > 0 || violations > 0)
}

/// The `BENCH_partition.json` artifact — the self-healing gate.
#[derive(Debug, Serialize)]
struct PartitionBench {
    nodes: Vec<String>,
    /// The node whose inbound proxy was denied for the drill.
    partitioned_node: String,
    distinct_problems: usize,
    errors: usize,
    determinism_violations: usize,
    /// Survivor-read latency percentiles *while the owner was
    /// partitioned*. The detector gate: these must sit near the local
    /// compute cost, not near `nodes × per-op timeout`, because after
    /// the first threshold failures the down peer is skipped in O(1).
    partition_p50_ms: f64,
    partition_p99_ms: f64,
    /// Fill attempts skipped because the detector held the peer Down.
    peer_fill_skips: u64,
    /// Probes granted to Down peers, and recoveries observed.
    probes: u64,
    peer_recoveries: u64,
    /// Replication deliveries that failed (and were requeued) plus
    /// retry-queue overflow drops across the drill.
    replication_delivery_failures: u64,
    replication_overflow: u64,
    /// Anti-entropy sweeps run and records they re-enqueued.
    anti_entropy_rounds: u64,
    anti_entropy_repairs: u64,
    /// Seconds from healing the partition to full owner+successor
    /// replication of every record (digest-verified).
    converge_s: f64,
    /// Whether convergence was reached before the deadline.
    fully_replicated: bool,
    /// Schedule computations during the post-heal full re-read —
    /// must be 0: every answer comes from a store hit or a peer fill.
    recomputes_after_heal: u64,
    wall_s: f64,
}

/// Partition drill against a cluster running behind `net_chaos`
/// proxies: fill, partition the first node (deny its inbound proxy),
/// read everything from the survivors (latency-gated), heal, wait for
/// anti-entropy to restore full owner+successor replication, then
/// demand a zero-recompute byte-identical full re-read.
///
/// `nodes` must list the *proxy* addresses in ring-identity form —
/// the same strings the nodes were configured with as `--peers` — so
/// the locally built [`noc_svc::cluster::Ring`] agrees with the
/// cluster's own ownership. `controls[i]` is node i's proxy control
/// port.
fn run_chaos_net(
    nodes: &[(String, SocketAddr)],
    controls: &[SocketAddr],
    seed: u64,
    graphs: usize,
    timeout: Duration,
    out_path: &str,
) -> i32 {
    println!(
        "== svc_load --chaos-net: {} nodes, {graphs} graphs, seed {seed:#x}, \
         partitioning {} ==",
        nodes.len(),
        nodes[0].0
    );
    let mix = cluster_mix(seed, graphs);
    let ring = noc_svc::cluster::Ring::new(nodes.iter().map(|(name, _)| name.clone()).collect());

    let mut clients: Vec<Client> = Vec::new();
    for (name, node) in nodes {
        match Client::connect_retry(*node, Duration::from_secs(10)) {
            Ok(mut c) => {
                let _ = c.set_timeout(timeout);
                clients.push(c);
            }
            Err(e) => {
                eprintln!("error: cannot reach node {name}: {e}");
                return 1;
            }
        }
    }
    // Make sure every proxy control answers before touching the
    // cluster, so a misconfigured drill fails before the fill wave.
    for (i, ctrl) in controls.iter().enumerate() {
        if let Err(e) = chaos_ctl(*ctrl, "status") {
            eprintln!("error: proxy control {i} ({ctrl}) unreachable: {e}");
            return 1;
        }
    }

    let started = Instant::now();
    let mut errors = 0usize;
    let mut violations = 0usize;

    // Phase 1a — fill *half* the mix while the cluster is healthy, so
    // the partition later hits a settled, replicated baseline.
    let mut reference: Vec<Option<String>> = vec![None; mix.len()];
    let fill = |clients: &mut Vec<Client>,
                reference: &mut Vec<Option<String>>,
                errors: &mut usize,
                idx: usize,
                n: usize| {
        match clients[n].post("/v1/schedule", &mix[idx]) {
            Ok(resp) if resp.status == 200 => reference[idx] = Some(resp.body),
            Ok(resp) => {
                eprintln!(
                    "fill: node {} answered {} for {idx}",
                    nodes[n].0, resp.status
                );
                *errors += 1;
            }
            Err(e) => {
                eprintln!("fill: node {} failed on {idx}: {e}", nodes[n].0);
                *errors += 1;
            }
        }
    };
    for idx in (0..mix.len()).step_by(2) {
        fill(
            &mut clients,
            &mut reference,
            &mut errors,
            idx,
            idx % nodes.len(),
        );
    }
    if !await_replication_drained(&mut clients, Duration::from_secs(30)) {
        eprintln!("error: replication lag did not drain after the healthy fill");
        errors += 1;
    }
    println!(
        "healthy fill done: {} problems, {errors} errors",
        mix.len().div_ceil(2)
    );

    // Phase 1b — partition node 0, then fill the other half through
    // the survivors: every record owned by node 0 now exists only on
    // the survivor side, the debt anti-entropy must later repay.
    if let Err(e) = chaos_ctl(controls[0], "deny on") {
        eprintln!("error: cannot partition {}: {e}", nodes[0].0);
        return 1;
    }
    for idx in (1..mix.len()).step_by(2) {
        let survivor = 1 + idx % (nodes.len() - 1);
        fill(&mut clients, &mut reference, &mut errors, idx, survivor);
    }
    println!("mid-partition fill done: {errors} errors total");
    let mut partition_us: Vec<u64> = Vec::new();
    for (idx, body) in mix.iter().enumerate() {
        let Some(expected) = &reference[idx] else {
            continue;
        };
        for (n, client) in clients.iter_mut().enumerate().skip(1) {
            let sent = Instant::now();
            match client.post("/v1/schedule", body) {
                Ok(resp) if resp.status == 200 => {
                    partition_us.push(sent.elapsed().as_micros() as u64);
                    if resp.body != *expected {
                        eprintln!(
                            "determinism violation: node {} diverges on {idx} mid-partition",
                            nodes[n].0
                        );
                        violations += 1;
                    }
                }
                Ok(resp) => {
                    eprintln!(
                        "partition: node {} answered {} for {idx}",
                        nodes[n].0, resp.status
                    );
                    errors += 1;
                }
                Err(e) => {
                    eprintln!("partition: node {} failed on {idx}: {e}", nodes[n].0);
                    errors += 1;
                }
            }
        }
    }
    partition_us.sort_unstable();
    let partition_p50_ms = pct_ms(&partition_us, 0.50);
    let partition_p99_ms = pct_ms(&partition_us, 0.99);
    println!(
        "partition reads done: p50 {partition_p50_ms:.2}ms p99 {partition_p99_ms:.2}ms, \
         {errors} errors, {violations} violations"
    );

    // Phase 3 — heal and wait for anti-entropy convergence: every
    // record present in the digest of its owner *and* successor, and
    // all retry queues drained.
    if let Err(e) = chaos_ctl(controls[0], "deny off") {
        eprintln!("error: cannot heal {}: {e}", nodes[0].0);
        return 1;
    }
    let healed = Instant::now();
    let deadline = healed + Duration::from_secs(90);
    let mut fully_replicated = false;
    while Instant::now() < deadline {
        if replication_converged(&mut clients, nodes, &ring)
            && await_replication_drained(&mut clients, Duration::from_millis(1))
        {
            fully_replicated = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    let converge_s = healed.elapsed().as_secs_f64();
    if fully_replicated {
        println!("anti-entropy converged {converge_s:.1}s after heal");
    } else {
        eprintln!("error: cluster did not converge within 90s of healing");
        errors += 1;
    }

    // Phase 4 — the zero-recompute gate: with replication healed,
    // every node answers every problem byte-identically without a
    // single schedule execution anywhere.
    let scrape_cluster = |clients: &mut Vec<Client>, name: &str| -> u64 {
        let mut total = 0;
        for c in clients.iter_mut() {
            total += scrape(&c.get("/metrics").map(|r| r.body).unwrap_or_default(), name);
        }
        total
    };
    let computes_before = scrape_cluster(&mut clients, "noc_svc_schedules_executed_total");
    for (idx, body) in mix.iter().enumerate() {
        let Some(expected) = &reference[idx] else {
            continue;
        };
        for (n, client) in clients.iter_mut().enumerate() {
            match client.post("/v1/schedule", body) {
                Ok(resp) if resp.status == 200 => {
                    if resp.body != *expected {
                        eprintln!(
                            "determinism violation: node {} diverges on {idx} after heal",
                            nodes[n].0
                        );
                        violations += 1;
                    }
                }
                Ok(resp) => {
                    eprintln!(
                        "re-read: node {} answered {} for {idx}",
                        nodes[n].0, resp.status
                    );
                    errors += 1;
                }
                Err(e) => {
                    eprintln!("re-read: node {} failed on {idx}: {e}", nodes[n].0);
                    errors += 1;
                }
            }
        }
    }
    let recomputes_after_heal = scrape_cluster(&mut clients, "noc_svc_schedules_executed_total")
        .saturating_sub(computes_before);
    if recomputes_after_heal > 0 {
        eprintln!(
            "error: {recomputes_after_heal} schedules recomputed on the post-heal re-read \
             (want 0 — replication should already hold every record)"
        );
        errors += 1;
    }

    let report = PartitionBench {
        nodes: nodes.iter().map(|(name, _)| name.clone()).collect(),
        partitioned_node: nodes[0].0.clone(),
        distinct_problems: mix.len(),
        errors,
        determinism_violations: violations,
        partition_p50_ms,
        partition_p99_ms,
        peer_fill_skips: scrape_cluster(&mut clients, "noc_svc_cluster_peer_fill_skips_total"),
        probes: scrape_cluster(&mut clients, "noc_svc_cluster_probes_total"),
        peer_recoveries: scrape_cluster(&mut clients, "noc_svc_cluster_peer_recoveries_total"),
        replication_delivery_failures: scrape_cluster(
            &mut clients,
            "noc_svc_cluster_replication_delivery_failures_total",
        ),
        replication_overflow: scrape_cluster(
            &mut clients,
            "noc_svc_cluster_replication_overflow_total",
        ),
        anti_entropy_rounds: scrape_cluster(
            &mut clients,
            "noc_svc_cluster_anti_entropy_rounds_total",
        ),
        anti_entropy_repairs: scrape_cluster(
            &mut clients,
            "noc_svc_cluster_anti_entropy_repairs_total",
        ),
        converge_s,
        fully_replicated,
        recomputes_after_heal,
        wall_s: started.elapsed().as_secs_f64(),
    };
    println!(
        "partition drill: p99 {partition_p99_ms:.2}ms under partition | {} skips, {} probes, \
         {} recoveries | {} anti-entropy repairs | converged in {converge_s:.1}s | \
         {recomputes_after_heal} post-heal recomputes | {errors} errors, {violations} violations",
        report.peer_fill_skips, report.probes, report.peer_recoveries, report.anti_entropy_repairs,
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                return 1;
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return 1;
        }
    }
    i32::from(errors > 0 || violations > 0 || !fully_replicated || recomputes_after_heal > 0)
}

/// Sends one command line to a `net_chaos` control port and returns
/// its reply, failing on anything but an `ok` answer.
fn chaos_ctl(ctrl: SocketAddr, command: &str) -> Result<String, String> {
    use std::io::BufRead as _;
    let conn = std::net::TcpStream::connect_timeout(&ctrl, Duration::from_secs(5))
        .map_err(|e| e.to_string())?;
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let mut writer = conn.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{command}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    std::io::BufReader::new(conn)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    let reply = reply.trim().to_owned();
    if reply.starts_with("ok") {
        Ok(reply)
    } else {
        Err(format!("control answered {reply:?}"))
    }
}

/// Polls every node until the summed replication retry backlog
/// (`noc_svc_cluster_replication_lag`) reaches zero.
fn await_replication_drained(clients: &mut [Client], patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    loop {
        let mut lag = 0u64;
        for c in clients.iter_mut() {
            lag += scrape(
                &c.get("/metrics").map(|r| r.body).unwrap_or_default(),
                "noc_svc_cluster_replication_lag",
            );
        }
        if lag == 0 {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Checks full owner+successor replication: every record id reported
/// by *any* node's digest must be present in the digests of both
/// nodes on its ring owner chain.
fn replication_converged(
    clients: &mut [Client],
    nodes: &[(String, SocketAddr)],
    ring: &noc_svc::cluster::Ring,
) -> bool {
    let mut digests: HashMap<String, std::collections::HashSet<String>> = HashMap::new();
    for (n, client) in clients.iter_mut().enumerate() {
        match client.get("/v1/internal/digest") {
            Ok(resp) if resp.status == 200 => {
                match serde_json::from_str::<noc_svc::cluster::Digest>(&resp.body) {
                    Ok(digest) => {
                        digests.insert(nodes[n].0.clone(), digest.ids.into_iter().collect());
                    }
                    Err(_) => return false,
                }
            }
            _ => return false,
        }
    }
    let all_ids: Vec<String> = digests
        .values()
        .flat_map(|ids| ids.iter().cloned())
        .collect();
    all_ids.iter().all(|id| {
        ring.owner_chain(id, 2)
            .iter()
            .all(|node| digests.get(*node).is_some_and(|ids| ids.contains(id)))
    })
}

/// One async job recorded by the chaos phase for the verify phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ChaosJob {
    /// Job id the server answered with (202 body).
    id: String,
    /// Scheduler the job names.
    scheduler: String,
    /// The exact request body submitted.
    body: String,
    /// Locally computed response bytes the finished job must match.
    expected: String,
}

/// The chaos → verify handoff file.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ChaosState {
    seed: u64,
    jobs: Vec<ChaosJob>,
}

/// The `BENCH_chaos.json` artifact.
#[derive(Debug, Serialize)]
struct ChaosBench {
    addr: String,
    jobs: usize,
    recovered: usize,
    byte_identical: usize,
    repost_identical: usize,
    journal_replayed: u64,
    worker_panics: u64,
    errors: usize,
    wall_s: f64,
}

/// Chaos phase: panic-injection probes, mid-request connection kills,
/// then a wave of journaled async jobs whose expected bytes are
/// computed locally. Returns the process exit code.
fn run_chaos(addr: SocketAddr, seed: u64, jobs: usize, timeout: Duration, state_path: &str) -> i32 {
    let mut errors = 0usize;
    let mut client = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach {addr}: {e}");
            return 1;
        }
    };
    let _ = client.set_timeout(timeout);
    println!("== svc_load --chaos: {jobs} async jobs, seed {seed:#x} -> {addr} ==");

    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");

    // 1. Panic isolation: a `chaos-panic` request must die alone — a
    //    typed 500 for that request, business as usual for the next.
    for probe in 0..2u64 {
        let mut cfg =
            noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(0x9A9C).wrapping_add(probe));
        cfg.task_count = 8;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        let body =
            format!(r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"chaos-panic"}}"#);
        match client.post("/v1/schedule", &body) {
            Ok(resp) if resp.status == 500 && resp.body.contains("panic") => {}
            Ok(resp) => {
                eprintln!(
                    "error: chaos-panic probe {probe} answered {} (want isolated 500): {}",
                    resp.status, resp.body
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: chaos-panic probe {probe} transport failure: {e}");
                errors += 1;
            }
        }
        // The same connection must keep working after the panic.
        let healthy =
            format!(r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"edf"}}"#);
        match client.post("/v1/schedule", &healthy) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => {
                eprintln!("error: post-panic request answered {}", resp.status);
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: post-panic request failed: {e}");
                errors += 1;
            }
        }
    }
    println!("panic isolation probes done ({errors} errors so far)");

    // 2. Mid-flight kills: open a connection, send a torn request head
    //    that promises a body which never arrives, and hang up.
    for _ in 0..3 {
        if let Ok(mut raw) = std::net::TcpStream::connect(addr) {
            let torn = "POST /v1/schedule HTTP/1.1\r\nHost: chaos\r\n\
                        Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"graph\":";
            let _ = raw.write_all(torn.as_bytes());
            let _ = raw.flush();
            drop(raw);
        }
    }
    match client.get("/healthz") {
        Ok(resp) if resp.status == 200 => {}
        Ok(resp) => {
            eprintln!(
                "error: /healthz answered {} after torn requests",
                resp.status
            );
            errors += 1;
        }
        Err(e) => {
            eprintln!("error: /healthz failed after torn requests: {e}");
            errors += 1;
        }
    }

    // 3. Journaled async wave: fresh seeds (disjoint from the normal
    //    load mix, so no finished twin or cache entry can answer 200)
    //    with the expected bytes computed locally — schedules are
    //    byte-deterministic, so the restarted server must reproduce
    //    them exactly.
    let mut state = ChaosState {
        seed,
        jobs: Vec::new(),
    };
    for j in 0..jobs {
        // The first job is deliberately heavy (annealing a larger
        // graph): against a `--sched-workers 1` server it pins the
        // worker, so the rest of the wave is still accepted-but-
        // unfinished when the harness SIGKILLs — the replay path the
        // gate exists to exercise.
        let scheduler = if j == 0 {
            "anneal"
        } else {
            ["edf", "dls", "eas"][j % 3]
        };
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(
            seed.wrapping_add(0xC4A0).wrapping_add(j as u64),
        );
        cfg.task_count = if j == 0 { 96 } else { 12 + (j % 3) * 4 };
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        let expected = match noc_svc::spec::parse_scheduler(scheduler, 1) {
            Ok(s) => match s.schedule(&graph, &platform) {
                Ok(outcome) => {
                    noc_svc::api::ScheduleResponse::from_outcome(scheduler, &outcome).to_json()
                }
                Err(e) => {
                    eprintln!("error: local {scheduler} schedule for job {j} failed: {e}");
                    errors += 1;
                    continue;
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                errors += 1;
                continue;
            }
        };
        let body = format!(
            r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}","mode":"async"}}"#
        );
        match client.post("/v1/schedule", &body) {
            Ok(resp) if resp.status == 202 => {
                let id = serde_json::from_str::<serde_json::Value>(&resp.body)
                    .ok()
                    .and_then(|v| {
                        v.as_object()
                            .and_then(|m| m.get("id"))
                            .and_then(|id| id.as_str().map(str::to_owned))
                    });
                match id {
                    Some(id) => state.jobs.push(ChaosJob {
                        id,
                        scheduler: scheduler.to_owned(),
                        body,
                        expected,
                    }),
                    None => {
                        eprintln!("error: 202 body has no id: {}", resp.body);
                        errors += 1;
                    }
                }
            }
            Ok(resp) => {
                eprintln!(
                    "error: async job {j} answered {} (want 202): {}",
                    resp.status, resp.body
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: async job {j} failed: {e}");
                errors += 1;
            }
        }
    }

    match serde_json::to_string_pretty(&state) {
        Ok(json) => {
            if let Err(e) = std::fs::write(state_path, json) {
                eprintln!("error: cannot write {state_path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("error: cannot serialize state: {e}");
            return 1;
        }
    }
    println!(
        "{} async jobs accepted and journaled; state -> {state_path}; {errors} errors",
        state.jobs.len()
    );
    i32::from(errors > 0 || state.jobs.is_empty())
}

/// Verify phase, run against the restarted server: every job recorded
/// by the chaos phase must finish with exactly the locally computed
/// bytes, a re-post of each body must hit the recovered result, and the
/// journal-replay counter must prove the recovery actually happened.
/// Returns the process exit code.
fn run_chaos_verify(
    addr: SocketAddr,
    addr_text: &str,
    timeout: Duration,
    state_path: &str,
    out_path: &str,
) -> i32 {
    let state: ChaosState = match std::fs::read_to_string(state_path)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
    {
        Ok(state) => state,
        Err(e) => {
            eprintln!("error: cannot load {state_path}: {e}");
            return 1;
        }
    };
    let started = Instant::now();
    let mut errors = 0usize;
    let mut recovered = 0usize;
    let mut byte_identical = 0usize;
    let mut repost_identical = 0usize;
    // Generous patience: the restarted server replays the journal and
    // re-runs every unfinished job before the answers converge.
    let mut client = match Client::connect_retry(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach restarted server {addr}: {e}");
            return 1;
        }
    };
    let _ = client.set_timeout(timeout);
    println!(
        "== svc_load --chaos-verify: {} jobs from {state_path} -> {addr} ==",
        state.jobs.len()
    );

    let deadline = Instant::now() + Duration::from_secs(120);
    for job in &state.jobs {
        let path = format!("/v1/jobs/{}", job.id);
        let outcome = loop {
            match client.get(&path) {
                Ok(resp)
                    if resp.body.contains("\"status\":\"queued\"")
                        || resp.body.contains("\"status\":\"running\"") =>
                {
                    if Instant::now() > deadline {
                        break Err(format!("job {} still pending at deadline", job.id));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                Ok(resp) if resp.status == 200 => break Ok(resp.body),
                Ok(resp) => {
                    break Err(format!(
                        "job {} answered {}: {}",
                        job.id, resp.status, resp.body
                    ))
                }
                Err(e) => break Err(format!("job {} poll failed: {e}", job.id)),
            }
        };
        match outcome {
            Ok(body) => {
                recovered += 1;
                let expected = format!(
                    "{{\"id\":\"{}\",\"status\":\"done\",\"result\":{}}}",
                    job.id, job.expected
                );
                if body == expected {
                    byte_identical += 1;
                } else {
                    eprintln!(
                        "error: job {} ({}) diverged after recovery:\n  want {expected}\n  got  {body}",
                        job.id, job.scheduler
                    );
                    errors += 1;
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                errors += 1;
            }
        }
        // The recovered result must also serve the original request.
        match client.post("/v1/schedule", &job.body) {
            Ok(resp) if resp.status == 200 && resp.body == job.expected => repost_identical += 1,
            Ok(resp) => {
                eprintln!(
                    "error: re-post of job {} answered {} with divergent bytes",
                    job.id, resp.status
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: re-post of job {} failed: {e}", job.id);
                errors += 1;
            }
        }
    }

    let metrics = client.get("/metrics").map(|r| r.body).unwrap_or_default();
    let journal_replayed = scrape(&metrics, "noc_svc_journal_replayed_total");
    if journal_replayed == 0 {
        eprintln!("error: noc_svc_journal_replayed_total is 0 — the restart never replayed");
        errors += 1;
    }
    let report = ChaosBench {
        addr: addr_text.to_owned(),
        jobs: state.jobs.len(),
        recovered,
        byte_identical,
        repost_identical,
        journal_replayed,
        worker_panics: scrape(&metrics, "noc_svc_worker_panics_total"),
        errors,
        wall_s: started.elapsed().as_secs_f64(),
    };
    println!(
        "{recovered}/{} jobs recovered, {byte_identical} byte-identical, \
         {repost_identical} re-posts identical, {journal_replayed} journal records replayed, \
         {errors} errors",
        report.jobs
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                return 1;
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return 1;
        }
    }
    i32::from(errors > 0)
}

/// One async delta job recorded by the `--delta` phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct DeltaJob {
    /// Job id the server answered with (202 body).
    id: String,
    /// The exact delta request body submitted.
    body: String,
    /// Locally computed `DeltaResponse` bytes the job must answer.
    expected: String,
    /// Prior graph JSON, for re-validating the repaired schedule.
    graph_json: String,
    /// Edits JSON, for re-validating the repaired schedule.
    edits_json: String,
}

/// The delta → delta-verify handoff file.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct DeltaState {
    seed: u64,
    jobs: Vec<DeltaJob>,
}

/// The `BENCH_delta_svc.json` artifact.
#[derive(Debug, Serialize)]
struct DeltaSvcBench {
    addr: String,
    jobs: usize,
    recovered: usize,
    byte_identical: usize,
    repost_identical: usize,
    /// Repaired schedules that re-validated against their edited graph
    /// and platform.
    validated: usize,
    journal_replayed: u64,
    delta_warm: u64,
    delta_fallback: u64,
    /// Disk-tier store hits on the restarted server (0 when the server
    /// runs without `--store-dir`).
    store_hits: u64,
    /// 1 while the store is degraded to memory-only serving.
    store_degraded: u64,
    /// 1 when the `--expect-store` fresh-edit prior gate passed.
    prior_from_store: u64,
    errors: usize,
    wall_s: f64,
}

/// Builds one deterministic delta problem: a TGFF graph, its local EAS
/// prior schedule, and an edit sequence — warm-startable for most `j`,
/// a forced `edit-storm` fallback when `j % 4 == 3` (every task edited,
/// so rebasing would preserve nothing).
fn delta_problem(
    platform: &noc_platform::Platform,
    seed: u64,
    j: u64,
) -> (String, String, String, String) {
    use noc_eas::prelude::*;
    let mut cfg =
        noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(0xDE17A).wrapping_add(j));
    cfg.task_count = 10 + (j as usize % 3) * 4;
    let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
        .generate(platform)
        .expect("graph generates");
    let graph_json = serde_json::to_string(&graph).expect("serializes");
    let n = graph.task_count();

    let edits: Vec<Edit> = if j % 4 == 3 {
        // Edit storm: one edit per task forces the full-reschedule path.
        (0..n)
            .map(|t| Edit::SetDeadline {
                task: t as u32,
                deadline: None,
            })
            .collect()
    } else {
        // A small warm-startable mix: drop one deadline, bump one
        // task's costs by ~10%.
        let bumped = graph.task(noc_ctg::prelude::TaskId::new((1 + j as u32) % n as u32));
        vec![
            Edit::SetDeadline {
                task: (j as u32) % n as u32,
                deadline: None,
            },
            Edit::SetExecTime {
                task: (1 + j as u32) % n as u32,
                exec_times: bumped
                    .exec_times()
                    .iter()
                    .map(|w| w.ticks() + w.ticks() / 10 + 1)
                    .collect(),
                exec_energies: bumped.exec_energies().iter().map(|e| e.as_nj()).collect(),
            },
        ]
    };
    let edits_json = serde_json::to_string(&edits).expect("serializes");

    // The expected bytes, computed locally: schedules are
    // byte-deterministic, so the server must reproduce them exactly.
    let prior = noc_svc::spec::parse_scheduler("eas", 1)
        .expect("eas parses")
        .schedule(&graph, platform)
        .expect("prior schedules");
    let applied = apply_edits(&graph, &edits).expect("edits apply");
    let edited_platform = apply_platform_edits(platform, &applied.edits).expect("platform applies");
    let delta =
        repair_from(&graph, &prior.schedule, &edited_platform, &applied, 1).expect("repairs");
    let expected = noc_svc::api::DeltaResponse {
        warm_start: delta.warm_start,
        reason: delta.reason.to_owned(),
        edits: delta.edits,
        mask_tasks: delta.mask_tasks,
        result: noc_svc::api::ScheduleResponse::from_outcome("eas", &delta.outcome),
    }
    .to_json();

    let body = format!(
        r#"{{"prior":{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"eas"}},"edits":{edits_json}}}"#
    );
    (body, expected, graph_json, edits_json)
}

/// Delta phase: cross-client byte-determinism probes on sync delta
/// requests, then a wave of journaled async delta jobs whose expected
/// bytes are computed locally. Returns the process exit code.
fn run_delta(addr: SocketAddr, seed: u64, jobs: usize, timeout: Duration, state_path: &str) -> i32 {
    let mut errors = 0usize;
    let mut client_a = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach {addr}: {e}");
            return 1;
        }
    };
    let mut client_b = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot open second client: {e}");
            return 1;
        }
    };
    let _ = client_a.set_timeout(timeout);
    let _ = client_b.set_timeout(timeout);
    println!("== svc_load --delta: {jobs} async delta jobs, seed {seed:#x} -> {addr} ==");

    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");

    // 1. Cross-client determinism on sync delta answers: two
    //    independent connections must see bytes identical to each other
    //    and to the locally computed answer. Probe 3 covers the forced
    //    edit-storm fallback; the rest warm start.
    for probe in 0..4u64 {
        let (body, expected, _, _) = delta_problem(&platform, seed.wrapping_add(0x5C), probe);
        let a = client_a.post("/v1/schedule/delta", &body);
        let b = client_b.post("/v1/schedule/delta", &body);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                if ra.status != 200 || rb.status != 200 {
                    eprintln!(
                        "error: delta probe {probe} answered {}/{} (want 200/200)",
                        ra.status, rb.status
                    );
                    errors += 1;
                } else {
                    if ra.body != expected {
                        eprintln!(
                            "error: delta probe {probe} diverged from the local bytes:\n  want {expected}\n  got  {}",
                            ra.body
                        );
                        errors += 1;
                    }
                    if ra.body != rb.body {
                        eprintln!(
                            "error: delta probe {probe} answered divergent bytes across clients"
                        );
                        errors += 1;
                    }
                }
            }
            (a, b) => {
                if let Err(e) = a {
                    eprintln!("error: delta probe {probe} client A failed: {e}");
                    errors += 1;
                }
                if let Err(e) = b {
                    eprintln!("error: delta probe {probe} client B failed: {e}");
                    errors += 1;
                }
            }
        }
    }
    println!("cross-client determinism probes done ({errors} errors so far)");

    // 2. Journaled async wave, disjoint seeds: accepted-but-maybe-
    //    unfinished when the harness SIGKILLs the server.
    let mut state = DeltaState {
        seed,
        jobs: Vec::new(),
    };
    for j in 0..jobs {
        let (base_body, expected, graph_json, edits_json) =
            delta_problem(&platform, seed.wrapping_add(0xA57C), j as u64);
        let body = format!(
            r#"{}{}"#,
            &base_body[..base_body.len() - 1],
            r#","mode":"async"}"#
        );
        match client_a.post("/v1/schedule/delta", &body) {
            Ok(resp) if resp.status == 202 => {
                let id = serde_json::from_str::<serde_json::Value>(&resp.body)
                    .ok()
                    .and_then(|v| {
                        v.as_object()
                            .and_then(|m| m.get("id"))
                            .and_then(|id| id.as_str().map(str::to_owned))
                    });
                match id {
                    Some(id) => state.jobs.push(DeltaJob {
                        id,
                        body,
                        expected,
                        graph_json,
                        edits_json,
                    }),
                    None => {
                        eprintln!("error: 202 body has no id: {}", resp.body);
                        errors += 1;
                    }
                }
            }
            Ok(resp) => {
                eprintln!(
                    "error: async delta job {j} answered {} (want 202): {}",
                    resp.status, resp.body
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: async delta job {j} failed: {e}");
                errors += 1;
            }
        }
    }

    match serde_json::to_string_pretty(&state) {
        Ok(json) => {
            if let Err(e) = std::fs::write(state_path, json) {
                eprintln!("error: cannot write {state_path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("error: cannot serialize state: {e}");
            return 1;
        }
    }
    println!(
        "{} async delta jobs accepted and journaled; state -> {state_path}; {errors} errors",
        state.jobs.len()
    );
    i32::from(errors > 0 || state.jobs.is_empty())
}

/// Delta verify phase, run against the restarted server: every recorded
/// delta job must finish with exactly the locally computed bytes, a
/// re-post must reproduce them, every repaired schedule must validate
/// against its edited graph and platform, and the journal-replay
/// counter must prove the recovery happened. Returns the exit code.
fn run_delta_verify(
    addr: SocketAddr,
    addr_text: &str,
    timeout: Duration,
    state_path: &str,
    out_path: &str,
    expect_store: bool,
) -> i32 {
    use noc_eas::prelude::{apply_edits, apply_platform_edits, Edit};
    let state: DeltaState = match std::fs::read_to_string(state_path)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
    {
        Ok(state) => state,
        Err(e) => {
            eprintln!("error: cannot load {state_path}: {e}");
            return 1;
        }
    };
    let started = Instant::now();
    let mut errors = 0usize;
    let mut recovered = 0usize;
    let mut byte_identical = 0usize;
    let mut repost_identical = 0usize;
    let mut validated = 0usize;
    let mut client = match Client::connect_retry(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach restarted server {addr}: {e}");
            return 1;
        }
    };
    let _ = client.set_timeout(timeout);
    println!(
        "== svc_load --delta-verify: {} jobs from {state_path} -> {addr} ==",
        state.jobs.len()
    );

    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let deadline = Instant::now() + Duration::from_secs(120);
    for job in &state.jobs {
        let path = format!("/v1/jobs/{}", job.id);
        let outcome = loop {
            match client.get(&path) {
                Ok(resp)
                    if resp.body.contains("\"status\":\"queued\"")
                        || resp.body.contains("\"status\":\"running\"") =>
                {
                    if Instant::now() > deadline {
                        break Err(format!("job {} still pending at deadline", job.id));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                Ok(resp) if resp.status == 200 => break Ok(resp.body),
                Ok(resp) => {
                    break Err(format!(
                        "job {} answered {}: {}",
                        job.id, resp.status, resp.body
                    ))
                }
                Err(e) => break Err(format!("job {} poll failed: {e}", job.id)),
            }
        };
        match outcome {
            Ok(body) => {
                recovered += 1;
                let expected = format!(
                    "{{\"id\":\"{}\",\"status\":\"done\",\"result\":{}}}",
                    job.id, job.expected
                );
                if body == expected {
                    byte_identical += 1;
                } else {
                    eprintln!(
                        "error: delta job {} diverged after recovery:\n  want {expected}\n  got  {body}",
                        job.id
                    );
                    errors += 1;
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                errors += 1;
            }
        }
        // The recovered result must also serve the original request.
        match client.post("/v1/schedule/delta", &job.body) {
            Ok(resp) if resp.status == 200 && resp.body == job.expected => repost_identical += 1,
            Ok(resp) => {
                eprintln!(
                    "error: re-post of delta job {} answered {} with divergent bytes",
                    job.id, resp.status
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: re-post of delta job {} failed: {e}", job.id);
                errors += 1;
            }
        }
        // The repaired schedule must validate against the *edited*
        // graph and platform.
        let check = || -> Result<(), String> {
            let graph: noc_ctg::TaskGraph =
                serde_json::from_str(&job.graph_json).map_err(|e| e.to_string())?;
            let edits: Vec<Edit> =
                serde_json::from_str(&job.edits_json).map_err(|e| e.to_string())?;
            let applied = apply_edits(&graph, &edits)?;
            let edited_platform = apply_platform_edits(&platform, &applied.edits)?;
            let response: noc_svc::api::DeltaResponse =
                serde_json::from_str(&job.expected).map_err(|e| e.to_string())?;
            noc_schedule::validate(&response.result.schedule, &applied.graph, &edited_platform)
                .map(|_| ())
                .map_err(|e| e.to_string())
        };
        match check() {
            Ok(()) => validated += 1,
            Err(e) => {
                eprintln!("error: delta job {} failed re-validation: {e}", job.id);
                errors += 1;
            }
        }
    }

    // With a persistent store behind the server, a *fresh* edit
    // against a recorded prior must warm start from the durable prior
    // — the restarted server never saw the prior request on this run,
    // so only the store can resolve it.
    let mut prior_from_store = 0u64;
    if expect_store {
        if let Some(job) = state.jobs.first() {
            let mut gate = || -> Result<(), String> {
                use noc_eas::prelude::{repair_from, Edit as DeltaEdit};
                let graph: noc_ctg::TaskGraph =
                    serde_json::from_str(&job.graph_json).map_err(|e| e.to_string())?;
                let edits = vec![DeltaEdit::SetDeadline {
                    task: 0,
                    deadline: None,
                }];
                let prior = noc_svc::spec::parse_scheduler("eas", 1)
                    .map_err(|e| e.to_string())?
                    .schedule(&graph, &platform)
                    .map_err(|e| e.to_string())?;
                let applied = apply_edits(&graph, &edits)?;
                let edited_platform = apply_platform_edits(&platform, &applied.edits)?;
                let delta = repair_from(&graph, &prior.schedule, &edited_platform, &applied, 1)
                    .map_err(|e| e.to_string())?;
                let expected = noc_svc::api::DeltaResponse {
                    warm_start: delta.warm_start,
                    reason: delta.reason.to_owned(),
                    edits: delta.edits,
                    mask_tasks: delta.mask_tasks,
                    result: noc_svc::api::ScheduleResponse::from_outcome("eas", &delta.outcome),
                }
                .to_json();
                let edits_json = serde_json::to_string(&edits).map_err(|e| e.to_string())?;
                let body = format!(
                    r#"{{"prior":{{"graph":{},"platform":"mesh:2x2","scheduler":"eas"}},"edits":{edits_json}}}"#,
                    job.graph_json
                );
                let before = client
                    .get("/metrics")
                    .map(|r| scrape(&r.body, "noc_svc_delta_prior_hits_total"))
                    .map_err(|e| e.to_string())?;
                let resp = client
                    .post("/v1/schedule/delta", &body)
                    .map_err(|e| e.to_string())?;
                if resp.status != 200 {
                    return Err(format!("fresh-edit delta answered {}", resp.status));
                }
                if resp.body != expected {
                    return Err("fresh-edit delta diverged from the local bytes".to_owned());
                }
                let after = client
                    .get("/metrics")
                    .map(|r| scrape(&r.body, "noc_svc_delta_prior_hits_total"))
                    .map_err(|e| e.to_string())?;
                if after <= before {
                    return Err(format!(
                        "fresh-edit delta did not resolve its prior from the store \
                         (delta_prior_hits {before} -> {after})"
                    ));
                }
                Ok(())
            };
            match gate() {
                Ok(()) => prior_from_store = 1,
                Err(e) => {
                    eprintln!("error: store-backed prior gate failed: {e}");
                    errors += 1;
                }
            }
        }
    }

    let metrics = client.get("/metrics").map(|r| r.body).unwrap_or_default();
    let journal_replayed = scrape(&metrics, "noc_svc_journal_replayed_total");
    if journal_replayed == 0 {
        eprintln!("error: noc_svc_journal_replayed_total is 0 — the restart never replayed");
        errors += 1;
    }
    let store_hits = scrape(&metrics, "noc_svc_store_hits_total");
    let store_degraded = scrape(&metrics, "noc_svc_store_degraded");
    if expect_store {
        if store_hits == 0 {
            eprintln!("error: noc_svc_store_hits_total is 0 — the disk tier never answered");
            errors += 1;
        }
        if store_degraded != 0 {
            eprintln!("error: the persistent store is degraded to memory-only mode");
            errors += 1;
        }
    }
    let report = DeltaSvcBench {
        addr: addr_text.to_owned(),
        jobs: state.jobs.len(),
        recovered,
        byte_identical,
        repost_identical,
        validated,
        journal_replayed,
        delta_warm: scrape(&metrics, "noc_svc_delta_warm_total"),
        delta_fallback: scrape(&metrics, "noc_svc_delta_fallback_total"),
        store_hits,
        store_degraded,
        prior_from_store,
        errors,
        wall_s: started.elapsed().as_secs_f64(),
    };
    println!(
        "{recovered}/{} delta jobs recovered, {byte_identical} byte-identical, \
         {repost_identical} re-posts identical, {validated} schedules re-validated, \
         {journal_replayed} journal records replayed, {errors} errors",
        report.jobs
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                return 1;
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return 1;
        }
    }
    i32::from(errors > 0)
}

/// One synchronous request recorded by the `--store-fill` phase: by the
/// time its 200 arrived, the response bytes were durable on disk.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct StoreJob {
    /// The exact request body posted.
    body: String,
    /// The response bytes the server answered (and must answer again).
    expected: String,
}

/// The store-fill → store-verify handoff file.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct StoreState {
    seed: u64,
    jobs: Vec<StoreJob>,
}

/// The `BENCH_store_svc.json` artifact.
#[derive(Debug, Serialize)]
struct StoreSvcBench {
    addr: String,
    jobs: usize,
    /// Re-posts answered 200 with the recorded bytes.
    byte_identical: usize,
    /// Re-posts served as cache hits (`X-Cache: hit`).
    served_as_hit: usize,
    /// Schedule executions the re-post wave cost (the gate: 0).
    recomputes: u64,
    /// Disk-tier hits the re-post wave produced (the gate: >= jobs).
    store_hits_delta: u64,
    store_quarantined: u64,
    store_torn_tails: u64,
    store_rotations: u64,
    store_segments: u64,
    store_degraded: u64,
    errors: usize,
    wall_s: f64,
}

/// Store fill phase: a synchronous wave whose every answer is durable
/// on disk at 200 time, recorded with its bytes; then a trailing async
/// wave (heavy pin first) so the harness's SIGKILL lands with segment
/// writes and journal entries in flight. Returns the exit code.
fn run_store_fill(
    addr: SocketAddr,
    seed: u64,
    jobs: usize,
    timeout: Duration,
    state_path: &str,
) -> i32 {
    let mut errors = 0usize;
    let mut client = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach {addr}: {e}");
            return 1;
        }
    };
    let _ = client.set_timeout(timeout);
    println!("== svc_load --store-fill: {jobs} sync jobs, seed {seed:#x} -> {addr} ==");

    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let mut state = StoreState {
        seed,
        jobs: Vec::new(),
    };
    for j in 0..jobs {
        let scheduler = ["edf", "dls", "eas"][j % 3];
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(
            seed.wrapping_add(0x570E).wrapping_add(j as u64),
        );
        cfg.task_count = 10 + (j % 4) * 3;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        let body =
            format!(r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#);
        match client.post("/v1/schedule", &body) {
            Ok(resp) if resp.status == 200 => {
                if resp.header("store-degraded").is_some() {
                    eprintln!("error: store degraded to memory-only during the fill");
                    errors += 1;
                }
                state.jobs.push(StoreJob {
                    body,
                    expected: resp.body,
                });
            }
            Ok(resp) => {
                eprintln!(
                    "error: sync job {j} answered {} (want 200): {}",
                    resp.status, resp.body
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: sync job {j} failed: {e}");
                errors += 1;
            }
        }
    }
    println!("{} sync responses durable and recorded", state.jobs.len());

    // Trailing async wave: the heavy anneal job pins a single-worker
    // server, so the rest is accepted-but-unfinished — the SIGKILL
    // lands with journal entries live and store writes still owed.
    for j in 0..4usize {
        let scheduler = if j == 0 { "anneal" } else { "edf" };
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(
            seed.wrapping_add(0x57A1).wrapping_add(j as u64),
        );
        cfg.task_count = if j == 0 { 96 } else { 12 };
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        let body = format!(
            r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}","mode":"async"}}"#
        );
        match client.post("/v1/schedule", &body) {
            Ok(resp) if resp.status == 202 => {}
            Ok(resp) => {
                eprintln!("error: trailing async job {j} answered {}", resp.status);
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: trailing async job {j} failed: {e}");
                errors += 1;
            }
        }
    }

    match serde_json::to_string_pretty(&state) {
        Ok(json) => {
            if let Err(e) = std::fs::write(state_path, json) {
                eprintln!("error: cannot write {state_path}: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("error: cannot serialize state: {e}");
            return 1;
        }
    }
    println!(
        "{} durable responses recorded; state -> {state_path}; {errors} errors",
        state.jobs.len()
    );
    i32::from(errors > 0 || state.jobs.is_empty())
}

/// Store verify phase, run against the restarted server: wait for the
/// replayed backlog to settle, then re-post every recorded body — each
/// must answer the recorded bytes as a cache hit, cost **zero**
/// schedule executions, and raise the disk-tier hit counter by at
/// least one per record. Returns the exit code.
fn run_store_verify(
    addr: SocketAddr,
    addr_text: &str,
    timeout: Duration,
    state_path: &str,
    out_path: &str,
) -> i32 {
    let state: StoreState = match std::fs::read_to_string(state_path)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
    {
        Ok(state) => state,
        Err(e) => {
            eprintln!("error: cannot load {state_path}: {e}");
            return 1;
        }
    };
    let started = Instant::now();
    let mut errors = 0usize;
    let mut client = match Client::connect_retry(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach restarted server {addr}: {e}");
            return 1;
        }
    };
    let _ = client.set_timeout(timeout);
    println!(
        "== svc_load --store-verify: {} recorded responses from {state_path} -> {addr} ==",
        state.jobs.len()
    );

    // Let the replayed journal backlog drain first: re-run jobs settle,
    // so the executed counter is quiescent before the gated re-posts.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let metrics = client.get("/metrics").map(|r| r.body).unwrap_or_default();
        if scrape(&metrics, "noc_svc_queue_depth") == 0
            && scrape(&metrics, "noc_svc_jobs_inflight") == 0
        {
            break;
        }
        if Instant::now() > deadline {
            eprintln!("error: replayed backlog still busy at deadline");
            errors += 1;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let before = client.get("/metrics").map(|r| r.body).unwrap_or_default();
    let executed_before = scrape(&before, "noc_svc_schedules_executed_total");
    let hits_before = scrape(&before, "noc_svc_store_hits_total");

    let mut byte_identical = 0usize;
    let mut served_as_hit = 0usize;
    for (j, job) in state.jobs.iter().enumerate() {
        match client.post("/v1/schedule", &job.body) {
            Ok(resp) if resp.status == 200 && resp.body == job.expected => {
                byte_identical += 1;
                if resp.header("x-cache") == Some("hit") {
                    served_as_hit += 1;
                } else {
                    eprintln!("error: re-post {j} was not served as a cache hit");
                    errors += 1;
                }
                if resp.header("store-degraded").is_some() {
                    eprintln!("error: re-post {j} was served degraded (memory-only)");
                    errors += 1;
                }
            }
            Ok(resp) => {
                eprintln!(
                    "error: re-post {j} answered {} with divergent bytes (want the recorded 200)",
                    resp.status
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("error: re-post {j} failed: {e}");
                errors += 1;
            }
        }
    }

    let after = client.get("/metrics").map(|r| r.body).unwrap_or_default();
    let executed_after = scrape(&after, "noc_svc_schedules_executed_total");
    let recomputes = executed_after.saturating_sub(executed_before);
    if recomputes != 0 {
        eprintln!(
            "error: the re-post wave cost {recomputes} schedule executions (the store must \
             answer them all)"
        );
        errors += 1;
    }
    let store_hits_delta = scrape(&after, "noc_svc_store_hits_total").saturating_sub(hits_before);
    if store_hits_delta < state.jobs.len() as u64 {
        eprintln!(
            "error: only {store_hits_delta} disk-tier hits for {} re-posts — responses did \
             not come from the persistent store",
            state.jobs.len()
        );
        errors += 1;
    }
    let store_degraded = scrape(&after, "noc_svc_store_degraded");
    if store_degraded != 0 {
        eprintln!("error: the persistent store is degraded to memory-only mode");
        errors += 1;
    }

    let report = StoreSvcBench {
        addr: addr_text.to_owned(),
        jobs: state.jobs.len(),
        byte_identical,
        served_as_hit,
        recomputes,
        store_hits_delta,
        store_quarantined: scrape(&after, "noc_svc_store_quarantined_total"),
        store_torn_tails: scrape(&after, "noc_svc_store_torn_tails_total"),
        store_rotations: scrape(&after, "noc_svc_store_rotations_total"),
        store_segments: scrape(&after, "noc_svc_store_segments"),
        store_degraded,
        errors,
        wall_s: started.elapsed().as_secs_f64(),
    };
    println!(
        "{byte_identical}/{} re-posts byte-identical ({served_as_hit} as hits), \
         {recomputes} recomputes, {store_hits_delta} disk-tier hits, {errors} errors",
        report.jobs
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                return 1;
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return 1;
        }
    }
    i32::from(errors > 0 || byte_identical != state.jobs.len())
}

/// Extracts the `noc_svc_stage_seconds` histograms from Prometheus
/// text: stage label → (cumulative count, cumulative sum of seconds).
fn scrape_stages(metrics: &str) -> HashMap<String, (u64, f64)> {
    let mut out: HashMap<String, (u64, f64)> = HashMap::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("noc_svc_stage_seconds_count{stage=\"") {
            if let Some((stage, tail)) = rest.split_once("\"}") {
                if let Ok(v) = tail.trim().parse::<u64>() {
                    out.entry(stage.to_owned()).or_insert((0, 0.0)).0 = v;
                }
            }
        } else if let Some(rest) = line.strip_prefix("noc_svc_stage_seconds_sum{stage=\"") {
            if let Some((stage, tail)) = rest.split_once("\"}") {
                if let Ok(v) = tail.trim().parse::<f64>() {
                    out.entry(stage.to_owned()).or_insert((0, 0.0)).1 = v;
                }
            }
        }
    }
    out
}

/// Extracts a single-value counter from Prometheus text.
fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#') && !l[name.len()..].starts_with('{'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}
