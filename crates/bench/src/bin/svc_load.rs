//! Load generator for the `noceas serve` scheduling service. Fires a
//! fixed-seed request mix at a running server from several concurrent
//! keep-alive clients, checks every answer for byte determinism
//! (identical bodies for identical requests, across clients and across
//! cold/cached/coalesced serving), and writes `BENCH_service.json`
//! with throughput, latency percentiles and cache statistics.
//!
//! Flags: `--addr <host:port>` (default `127.0.0.1:8533`),
//! `--requests <N>` (default 1200), `--clients <N>` (default 4),
//! `--graphs <N>` distinct problems (default 12), `--seed <N>`
//! (default 0x5EC). The first positional argument overrides the
//! artifact path. Exits non-zero on any transport error, non-200
//! answer, or determinism violation.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use noc_svc::client::Client;

/// Schedulers cycled through the request mix — the fast baselines, so
/// the load exercises the service rather than the EAS search.
const SCHEDULERS: [&str; 2] = ["edf", "dls"];

#[derive(Debug, Serialize)]
struct ServiceBench {
    addr: String,
    requests: usize,
    clients: usize,
    distinct_problems: usize,
    errors: usize,
    /// 429 answers that were retried; excluded from `requests`,
    /// throughput and the latency percentiles.
    retries_429: usize,
    determinism_violations: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    schedules_executed: u64,
    requests_coalesced: u64,
}

struct WorkerResult {
    latencies_us: Vec<u64>,
    errors: usize,
    /// 429 backpressure answers that were slept on and retried.
    retries_429: usize,
    /// First response body seen per request-mix index.
    bodies: HashMap<usize, String>,
    /// Determinism violations observed *within* this worker.
    violations: usize,
}

fn main() {
    let mut out_path = "BENCH_service.json".to_owned();
    let mut addr_text = "127.0.0.1:8533".to_owned();
    let mut requests = 1200usize;
    let mut clients = 4usize;
    let mut graphs = 12usize;
    let mut seed = 0x5ECu64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("error: {} needs a value", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--addr" => addr_text = flag_value(&mut i),
            "--requests" => requests = parse(&flag_value(&mut i)),
            "--clients" => clients = parse::<usize>(&flag_value(&mut i)).max(1),
            "--graphs" => graphs = parse::<usize>(&flag_value(&mut i)).max(1),
            "--seed" => seed = parse(&flag_value(&mut i)),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
            path => out_path = path.to_owned(),
        }
        i += 1;
    }
    let addr: SocketAddr = addr_text.parse().unwrap_or_else(|_| {
        eprintln!("error: bad --addr {addr_text:?}");
        std::process::exit(2);
    });

    println!(
        "== svc_load: {requests} requests, {clients} clients, {graphs} graphs x \
         {} schedulers, seed {seed:#x} -> {addr} ==",
        SCHEDULERS.len()
    );

    // A fixed-seed request mix: `graphs` distinct CTGs times the
    // scheduler list. Identical mix indices must answer identical bytes.
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let mut mix: Vec<String> = Vec::new();
    for g in 0..graphs {
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(g as u64));
        cfg.task_count = 10 + (g % 4) * 2;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        for scheduler in SCHEDULERS {
            mix.push(format!(
                r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#
            ));
        }
    }
    let mix = Arc::new(mix);

    // Warm up the connection path (and fail fast if nothing listens).
    let mut probe = Client::connect_retry(addr, Duration::from_secs(10)).unwrap_or_else(|e| {
        eprintln!("error: cannot reach {addr}: {e}");
        std::process::exit(1);
    });
    let health = probe.get("/healthz").unwrap_or_else(|e| {
        eprintln!("error: /healthz failed: {e}");
        std::process::exit(1);
    });
    if health.status != 200 {
        eprintln!("error: /healthz answered {}", health.status);
        std::process::exit(1);
    }

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|worker| {
            let mix = Arc::clone(&mix);
            std::thread::spawn(move || run_worker(addr, &mix, worker, clients, requests))
        })
        .collect();
    let results: Vec<WorkerResult> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();
    let wall_s = started.elapsed().as_secs_f64();

    // Merge: identical mix indices must have answered identical bytes
    // across *all* workers, not just within one.
    let mut errors = 0usize;
    let mut retries_429 = 0usize;
    let mut violations = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut reference: HashMap<usize, String> = HashMap::new();
    for r in results {
        errors += r.errors;
        retries_429 += r.retries_429;
        violations += r.violations;
        latencies.extend(r.latencies_us);
        for (idx, body) in r.bodies {
            match reference.get(&idx) {
                None => {
                    reference.insert(idx, body);
                }
                Some(seen) if *seen == body => {}
                Some(_) => {
                    eprintln!("determinism violation: mix index {idx} answered divergent bodies across clients");
                    violations += 1;
                }
            }
        }
    }
    latencies.sort_unstable();
    let done = latencies.len();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((done as f64) * p).ceil() as usize;
        latencies[idx.clamp(1, done) - 1] as f64 / 1000.0
    };

    // Cache statistics straight from the server's own metrics.
    let metrics = probe.get("/metrics").map(|r| r.body).unwrap_or_default();
    let cache_hits = scrape(&metrics, "noc_svc_cache_hits_total");
    let cache_misses = scrape(&metrics, "noc_svc_cache_misses_total");
    let report = ServiceBench {
        addr: addr_text,
        requests: done,
        clients,
        distinct_problems: mix.len(),
        errors,
        retries_429,
        determinism_violations: violations,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            done as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_ms: latencies.last().map_or(0.0, |&v| v as f64 / 1000.0),
        cache_hits,
        cache_misses,
        cache_hit_rate: if cache_hits + cache_misses > 0 {
            cache_hits as f64 / (cache_hits + cache_misses) as f64
        } else {
            0.0
        },
        schedules_executed: scrape(&metrics, "noc_svc_schedules_executed_total"),
        requests_coalesced: scrape(&metrics, "noc_svc_requests_coalesced_total"),
    };

    println!(
        "{done} requests in {wall_s:.2}s ({:.0} rps) | p50 {:.2}ms p99 {:.2}ms | \
         cache hit rate {:.1}% | {retries_429} backpressure retries | \
         {errors} errors, {violations} determinism violations",
        report.throughput_rps,
        report.p50_ms,
        report.p99_ms,
        report.cache_hit_rate * 100.0,
    );

    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out_path, json) {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("Artifact written to {out_path}");
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    }
    if errors > 0 || violations > 0 {
        eprintln!("error: load run failed ({errors} errors, {violations} determinism violations)");
        std::process::exit(1);
    }
}

/// One client worker: sends its strided share of the request sequence
/// over a single keep-alive connection.
fn run_worker(
    addr: SocketAddr,
    mix: &[String],
    worker: usize,
    clients: usize,
    requests: usize,
) -> WorkerResult {
    let mut result = WorkerResult {
        latencies_us: Vec::new(),
        errors: 0,
        retries_429: 0,
        bodies: HashMap::new(),
        violations: 0,
    };
    let mut client = match Client::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("worker {worker}: cannot connect: {e}");
            result.errors += 1;
            return result;
        }
    };
    let mut n = worker;
    while n < requests {
        let idx = n % mix.len();
        let sent = Instant::now();
        match client.post("/v1/schedule", &mix[idx]) {
            Ok(resp) => {
                if resp.status == 429 {
                    // Honest backpressure: honor Retry-After and retry
                    // the same request instead of counting an error.
                    // Not a completed request — it contributes neither a
                    // latency sample nor a throughput count.
                    result.retries_429 += 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
                result.latencies_us.push(sent.elapsed().as_micros() as u64);
                if resp.status != 200 {
                    eprintln!(
                        "worker {worker}: request {n} answered {}: {}",
                        resp.status, resp.body
                    );
                    result.errors += 1;
                } else {
                    match result.bodies.get(&idx) {
                        None => {
                            result.bodies.insert(idx, resp.body);
                        }
                        Some(seen) if *seen == resp.body => {}
                        Some(_) => {
                            eprintln!("worker {worker}: determinism violation at mix index {idx}");
                            result.violations += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("worker {worker}: request {n} failed: {e}");
                result.errors += 1;
            }
        }
        n += clients;
    }
    result
}

/// Extracts a single-value counter from Prometheus text.
fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#') && !l[name.len()..].starts_with('{'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}
