//! Flight-recorder overhead gate for CI: starts two in-process
//! `noceas serve` instances — one with the flight recorder at its
//! default 4096 entries, one with the recorder disabled — warms both
//! with the same fixed-seed problem mix, then fires alternating
//! cached-hit rounds at each and compares the best round times. The
//! recorder must cost at most the `--gate-pct` budget (CI uses 2), and
//! both servers must answer every problem with byte-identical bodies:
//! trace metadata lives in headers and the recorder only, never in the
//! response body.
//!
//! Writes `BENCH_obs.json` (first positional argument overrides the
//! path) and exits non-zero on a gate violation.

use std::time::{Duration, Instant};

use serde::Serialize;

use noc_svc::client::Client;
use noc_svc::{Server, ServiceConfig};

/// Alternating timing rounds per server; the minimum is kept. The
/// minimum of many rounds is robust against scheduler preemption
/// noise, which an average would smear into false gate failures.
const ROUNDS: usize = 7;
/// Cached-hit requests per round.
const REQUESTS_PER_ROUND: usize = 400;
/// Distinct problems in the warmed mix.
const GRAPHS: usize = 3;

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    rounds: usize,
    requests_per_round: usize,
    distinct_problems: usize,
    /// Best-round throughput with the recorder disabled.
    base_rps: f64,
    /// Best-round throughput with the recorder at 4096 entries.
    traced_rps: f64,
    /// Relative cost of the enabled recorder, percent (negative
    /// values mean measurement noise favored the traced server).
    overhead_pct: f64,
    /// Whether every problem answered byte-identical bodies across
    /// the recorder-on and recorder-off servers.
    byte_identical: bool,
    gate_pct: Option<f64>,
}

fn config(flight_recorder_entries: usize) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        http_workers: 2,
        sched_workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        flight_recorder_entries,
        ..ServiceConfig::default()
    }
}

fn mix(seed: u64) -> Vec<String> {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform parses");
    let mut mix = Vec::new();
    for g in 0..GRAPHS {
        let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed.wrapping_add(g as u64));
        cfg.task_count = 10 + (g % 3) * 2;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("graph generates");
        let graph_json = serde_json::to_string(&graph).expect("serializes");
        for scheduler in ["edf", "dls"] {
            mix.push(format!(
                r#"{{"graph":{graph_json},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#
            ));
        }
    }
    mix
}

/// Warms one server with every problem (the compute round) and
/// returns the reference bodies.
fn warm(client: &mut Client, mix: &[String], label: &str) -> Vec<String> {
    let mut bodies = Vec::with_capacity(mix.len());
    for (idx, body) in mix.iter().enumerate() {
        match client.post("/v1/schedule", body) {
            Ok(resp) if resp.status == 200 => bodies.push(resp.body),
            Ok(resp) => {
                eprintln!(
                    "error: {label} answered {} warming problem {idx}",
                    resp.status
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {label} failed warming problem {idx}: {e}");
                std::process::exit(1);
            }
        }
    }
    bodies
}

/// One timed round of cached-hit posts cycling the mix. Returns the
/// round's wall time; any non-200 or transport error is fatal.
fn round(client: &mut Client, mix: &[String], label: &str) -> Duration {
    let started = Instant::now();
    for n in 0..REQUESTS_PER_ROUND {
        let body = &mix[n % mix.len()];
        match client.post("/v1/schedule", body) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => {
                eprintln!("error: {label} answered {} mid-round", resp.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {label} failed mid-round: {e}");
                std::process::exit(1);
            }
        }
    }
    started.elapsed()
}

fn main() {
    let mut out_path = "BENCH_obs.json".to_owned();
    let mut gate_pct: Option<f64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate-pct" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| {
                    eprintln!("error: --gate-pct needs a value");
                    std::process::exit(2);
                });
                gate_pct = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --gate-pct value {value:?}");
                    std::process::exit(2);
                }));
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
            path => out_path = path.to_owned(),
        }
        i += 1;
    }

    println!(
        "== obs_overhead: recorder 4096 vs 0, {ROUNDS} rounds x {REQUESTS_PER_ROUND} cached \
         posts, gate {} ==",
        gate_pct.map_or("off".to_owned(), |p| format!("{p}%")),
    );

    let traced = Server::start(config(4096)).expect("traced server starts");
    let plain = Server::start(config(0)).expect("plain server starts");
    let mix = mix(0x0B5);

    let mut traced_client =
        Client::connect_retry(traced.addr(), Duration::from_secs(10)).expect("traced connects");
    let mut plain_client =
        Client::connect_retry(plain.addr(), Duration::from_secs(10)).expect("plain connects");

    // Warm both with the full mix, and gate byte identity right here:
    // the recorder must never leak into response bodies.
    let traced_bodies = warm(&mut traced_client, &mix, "traced");
    let plain_bodies = warm(&mut plain_client, &mix, "plain");
    let byte_identical = traced_bodies == plain_bodies;
    if !byte_identical {
        eprintln!("error: recorder-on bodies diverge from recorder-off bodies");
    }

    // Alternate servers within each round so drift (thermal, cache,
    // competing load) hits both equally; keep each server's best.
    let mut traced_best = Duration::MAX;
    let mut plain_best = Duration::MAX;
    for r in 0..ROUNDS {
        let t = round(&mut traced_client, &mix, "traced");
        let p = round(&mut plain_client, &mix, "plain");
        traced_best = traced_best.min(t);
        plain_best = plain_best.min(p);
        println!(
            "round {r}: traced {:.1}ms, plain {:.1}ms",
            t.as_secs_f64() * 1000.0,
            p.as_secs_f64() * 1000.0,
        );
    }
    traced.shutdown();
    plain.shutdown();

    let base_rps = REQUESTS_PER_ROUND as f64 / plain_best.as_secs_f64();
    let traced_rps = REQUESTS_PER_ROUND as f64 / traced_best.as_secs_f64();
    let overhead_pct =
        (traced_best.as_secs_f64() - plain_best.as_secs_f64()) / plain_best.as_secs_f64() * 100.0;
    println!(
        "best rounds: plain {base_rps:.0} rps, traced {traced_rps:.0} rps, \
         recorder overhead {overhead_pct:.2}%"
    );

    let mut failed = !byte_identical;
    if let Some(gate) = gate_pct {
        if overhead_pct > gate {
            eprintln!("error: recorder costs {overhead_pct:.2}% (budget {gate}%)");
            failed = true;
        }
    }

    let report = Report {
        bench: "obs_overhead".to_owned(),
        rounds: ROUNDS,
        requests_per_round: REQUESTS_PER_ROUND,
        distinct_problems: mix.len(),
        base_rps,
        traced_rps,
        overhead_pct,
        byte_identical,
        gate_pct,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("Artifact written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            std::process::exit(1);
        }
    }
    if failed {
        std::process::exit(1);
    }
}
