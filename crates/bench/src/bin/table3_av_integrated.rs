//! Reproduces **Table 3**: EAS vs EDF on the integrated A/V
//! encoder + decoder system (40 tasks) scheduled on a heterogeneous 3x3
//! NoC, for the clips akiyo / foreman / toybox. Also prints the
//! computation/communication split and hops-per-packet reduction the
//! paper quotes for `foreman` (2.55 -> 1.68).

use noc_bench::experiments::{multimedia_table, write_json_artifact};
use noc_ctg::prelude::MultimediaApp;

fn main() {
    println!("== Table 3: integrated A/V encoder + decoder (40 tasks, 3x3 NoC) ==\n");
    let table = multimedia_table(MultimediaApp::AvIntegrated);
    println!("{}", table.render());
    let foreman = &table.clips[1];
    println!(
        "foreman: EAS reduced computation energy to {:.1} nJ (EDF {:.1} nJ) and \
         communication energy to {:.1} nJ (EDF {:.1} nJ), average hops {:.2} vs {:.2}.",
        foreman.eas_computation_nj,
        foreman.edf_computation_nj,
        foreman.eas_communication_nj,
        foreman.edf_communication_nj,
        foreman.eas_avg_hops,
        foreman.edf_avg_hops,
    );
    if let Some(path) = write_json_artifact("table3_av_integrated", &table) {
        println!("JSON artifact: {}", path.display());
    }
}
