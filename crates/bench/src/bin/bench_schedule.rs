//! Scheduler performance baseline for CI: runs full EAS serially and
//! with a worker pool on the same graphs, checks the results are
//! byte-identical, and writes the wall-clock numbers to
//! `BENCH_schedule.json` (first argument overrides the path).
//!
//! The speedup figures are *measured on whatever machine runs this*, and
//! `host_cpus` is recorded alongside them. On a single-core host a
//! 4-thread run cannot be faster than serial, so the speedup claim is
//! **suppressed entirely** (`null` in the artifact, `n/a` in the table)
//! rather than recorded as a misleading ~1.0 measurement.

use std::time::Instant;

use serde::Serialize;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

/// Thread counts compared against the serial run.
const PARALLEL_THREADS: usize = 4;
/// Timing runs per configuration; the minimum is reported.
const RUNS: usize = 3;

#[derive(Debug, Serialize)]
struct Case {
    graph: String,
    tasks: usize,
    edges: usize,
    serial_s: f64,
    parallel_s: f64,
    parallel_threads: usize,
    /// `None` on hosts where a parallel speedup is unmeasurable
    /// (a single hardware thread): no claim beats a bogus one.
    speedup: Option<f64>,
    identical: bool,
    energy_nj: f64,
    deadline_misses: usize,
}

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    host_cpus: usize,
    parallel_threads: usize,
    /// `false` on single-hardware-thread hosts, where every speedup row
    /// is suppressed: consumers must not read timing ratios from this
    /// artifact when the host could not demonstrate parallelism.
    speedup_valid: bool,
    cases: Vec<Case>,
}

fn timed_schedule(
    scheduler: &EasScheduler,
    graph: &noc_ctg::TaskGraph,
    platform: &noc_platform::Platform,
) -> (ScheduleOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let out = scheduler.schedule(graph, platform).expect("schedules");
        best = best.min(t0.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    (outcome.expect("at least one run"), best)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".to_owned());
    let platform = platforms::mesh_4x4();
    let host_cpus = noc_par::available_threads();
    println!("== Scheduler perf baseline (host has {host_cpus} hardware threads) ==\n");
    println!(
        "{:<22} {:>6} {:>6} {:>10} {:>10} {:>8} {:>10}",
        "graph", "tasks", "edges", "serial(s)", "par(s)", "speedup", "identical"
    );

    let mut cases = Vec::new();
    for task_count in [64usize, 128, 256] {
        let mut cfg = TgffConfig::category_i(42);
        cfg.task_count = task_count;
        cfg.width = (task_count / 20).max(4);
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");

        let serial = EasScheduler::new(EasConfig::default());
        let parallel = EasScheduler::new(EasConfig::default().with_threads(PARALLEL_THREADS));
        let (serial_out, serial_s) = timed_schedule(&serial, &graph, &platform);
        let (parallel_out, parallel_s) = timed_schedule(&parallel, &graph, &platform);

        // Hard determinism gate: the parallel engine must reproduce the
        // serial schedule bit for bit, including repair statistics.
        let identical = serial_out == parallel_out;
        assert!(
            identical,
            "parallel schedule diverged from serial on {}",
            graph.name()
        );

        // A single-hardware-thread host cannot demonstrate a parallel
        // speedup; suppress the claim instead of recording noise.
        let speedup = (host_cpus > 1).then(|| serial_s / parallel_s);
        println!(
            "{:<22} {:>6} {:>6} {:>10.3} {:>10.3} {:>8} {:>10}",
            graph.name(),
            graph.task_count(),
            graph.edge_count(),
            serial_s,
            parallel_s,
            speedup.map_or_else(|| "n/a".to_owned(), |s| format!("{s:.2}")),
            identical,
        );
        cases.push(Case {
            graph: graph.name().to_owned(),
            tasks: graph.task_count(),
            edges: graph.edge_count(),
            serial_s,
            parallel_s,
            parallel_threads: PARALLEL_THREADS,
            speedup,
            identical,
            energy_nj: serial_out.stats.energy.total().as_nj(),
            deadline_misses: serial_out.report.deadline_misses.len(),
        });
    }

    let baseline = Baseline {
        bench: "schedule".to_owned(),
        host_cpus,
        parallel_threads: PARALLEL_THREADS,
        speedup_valid: host_cpus > 1,
        cases,
    };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nBaseline written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize baseline: {e}");
            std::process::exit(1);
        }
    }
    if host_cpus == 1 {
        println!(
            "note: host has a single hardware thread; speedup claims are \
             suppressed (recorded as null), not measured."
        );
    } else if host_cpus < PARALLEL_THREADS {
        println!(
            "note: host has fewer than {PARALLEL_THREADS} hardware threads; \
             speedup figures are bounded by the hardware, not the engine."
        );
    }
}
