//! Warm-start vs from-scratch delta scheduling baseline for CI: edits
//! a scheduled graph, repairs the prior schedule with
//! `noc_eas::delta::repair_from`, reschedules the edited graph from
//! scratch, and writes latency plus quality (energy / tardiness)
//! comparisons across edit sizes to `BENCH_delta.json` (first argument
//! overrides the path).
//!
//! Latency here compares two *serial* runs on the same core, so the
//! warm-vs-scratch ratio is meaningful on any host; `speedup_valid`
//! still records whether the host could demonstrate parallelism, so
//! consumers treat the artifact uniformly with `BENCH_schedule.json`.
//!
//! The CI gate: for single-edit cases the warm-start median must be
//! below half the from-scratch median (the whole point of the delta
//! API); the process exits non-zero otherwise.

use std::time::Instant;

use serde::Serialize;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

/// Timing runs per configuration; the median is reported.
const RUNS: usize = 5;
/// Edit-sequence sizes compared.
const EDIT_SIZES: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct Case {
    graph: String,
    tasks: usize,
    edits: usize,
    warm_start: bool,
    reason: String,
    mask_tasks: usize,
    warm_median_s: f64,
    scratch_median_s: f64,
    /// `warm_median_s / scratch_median_s`; below 1.0 means the warm
    /// start paid off.
    latency_ratio: f64,
    warm_energy_nj: f64,
    scratch_energy_nj: f64,
    /// `warm_energy_nj / scratch_energy_nj`: the quality envelope. The
    /// warm start trades a little energy for a lot of latency; this
    /// records exactly how much.
    energy_ratio: f64,
    warm_tardiness: u64,
    scratch_tardiness: u64,
    warm_misses: usize,
    scratch_misses: usize,
}

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    host_cpus: usize,
    /// `false` on single-hardware-thread hosts: parallel speedup claims
    /// are unmeasurable there. The warm-vs-scratch latency ratios in
    /// this artifact are serial-vs-serial and remain meaningful.
    speedup_valid: bool,
    cases: Vec<Case>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// A deterministic edit sequence of `k` cost changes on distinct,
/// spread-out tasks: each bumps one task's execution times by ~10% and
/// energies by ~5% on every PE, enough to perturb the schedule without
/// invalidating the warm start.
fn edit_sequence(graph: &noc_ctg::TaskGraph, k: usize) -> Vec<Edit> {
    let n = graph.task_count();
    let stride = (n / (k + 1)).max(1);
    (0..k)
        .map(|i| {
            let t = (1 + i * stride) % n;
            let task = graph.task(TaskId::new(t as u32));
            Edit::SetExecTime {
                task: t as u32,
                exec_times: task
                    .exec_times()
                    .iter()
                    .map(|w| w.ticks() + w.ticks() / 10 + 1)
                    .collect(),
                exec_energies: task
                    .exec_energies()
                    .iter()
                    .map(|e| e.as_nj() * 1.05)
                    .collect(),
            }
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".to_owned());
    let platform = platforms::mesh_4x4();
    let host_cpus = noc_par::available_threads();
    println!("== Delta warm-start baseline (host has {host_cpus} hardware threads) ==\n");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>10} {:>10} {:>7} {:>7}",
        "graph", "tasks", "edits", "mask", "warm(s)", "scratch(s)", "ratio", "energy"
    );

    let scheduler = EasScheduler::new(EasConfig::default());
    let mut cases = Vec::new();
    let mut gate_failures = Vec::new();
    for task_count in [64usize, 128] {
        let mut cfg = TgffConfig::category_i(42);
        cfg.task_count = task_count;
        cfg.width = (task_count / 20).max(4);
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let prior = scheduler.schedule(&graph, &platform).expect("schedules");

        for k in EDIT_SIZES {
            let edits = edit_sequence(&graph, k);
            let applied = apply_edits(&graph, &edits).expect("edits apply");
            let edited_platform =
                apply_platform_edits(&platform, &applied.edits).expect("platform applies");

            let mut warm_samples = Vec::new();
            let mut delta = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let out = repair_from(&graph, &prior.schedule, &edited_platform, &applied, 1)
                    .expect("repairs");
                warm_samples.push(t0.elapsed().as_secs_f64());
                delta = Some(out);
            }
            let delta = delta.expect("at least one run");

            let mut scratch_samples = Vec::new();
            let mut scratch = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let out = scheduler
                    .schedule(&applied.graph, &edited_platform)
                    .expect("schedules");
                scratch_samples.push(t0.elapsed().as_secs_f64());
                scratch = Some(out);
            }
            let scratch = scratch.expect("at least one run");

            let warm_median_s = median(warm_samples);
            let scratch_median_s = median(scratch_samples);
            let latency_ratio = warm_median_s / scratch_median_s;
            let warm_energy_nj = delta.outcome.stats.energy.total().as_nj();
            let scratch_energy_nj = scratch.stats.energy.total().as_nj();
            println!(
                "{:<22} {:>6} {:>6} {:>6} {:>10.4} {:>10.4} {:>7.2} {:>7.3}",
                graph.name(),
                graph.task_count(),
                k,
                delta.mask_tasks,
                warm_median_s,
                scratch_median_s,
                latency_ratio,
                warm_energy_nj / scratch_energy_nj,
            );
            if k == 1 && delta.warm_start && latency_ratio >= 0.5 {
                gate_failures.push(format!(
                    "{}: single-edit warm start took {latency_ratio:.2}x of scratch (gate < 0.5)",
                    graph.name()
                ));
            }
            cases.push(Case {
                graph: graph.name().to_owned(),
                tasks: graph.task_count(),
                edits: k,
                warm_start: delta.warm_start,
                reason: delta.reason.to_owned(),
                mask_tasks: delta.mask_tasks,
                warm_median_s,
                scratch_median_s,
                latency_ratio,
                warm_energy_nj,
                scratch_energy_nj,
                energy_ratio: warm_energy_nj / scratch_energy_nj,
                warm_tardiness: delta.outcome.report.total_tardiness().ticks(),
                scratch_tardiness: scratch.report.total_tardiness().ticks(),
                warm_misses: delta.outcome.report.deadline_misses.len(),
                scratch_misses: scratch.report.deadline_misses.len(),
            });
        }
    }

    let baseline = Baseline {
        bench: "delta".to_owned(),
        host_cpus,
        speedup_valid: host_cpus > 1,
        cases,
    };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nBaseline written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize baseline: {e}");
            std::process::exit(1);
        }
    }
    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("gate failure: {failure}");
        }
        std::process::exit(1);
    }
    println!("gate passed: single-edit warm starts beat half the from-scratch latency");
}
