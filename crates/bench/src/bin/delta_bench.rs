//! Warm-start vs from-scratch delta scheduling baseline for CI: edits
//! a scheduled graph, repairs the prior schedule with
//! `noc_eas::delta::repair_from`, reschedules the edited graph from
//! scratch, and writes latency plus quality (energy / tardiness)
//! comparisons across edit sizes to `BENCH_delta.json` (first argument
//! overrides the path).
//!
//! Latency here compares two *serial* runs on the same core, so the
//! warm-vs-scratch ratio is meaningful on any host; `speedup_valid`
//! still records whether the host could demonstrate parallelism, so
//! consumers treat the artifact uniformly with `BENCH_schedule.json`.
//!
//! The CI gate: for single-edit cases the warm-start median must be
//! below half the from-scratch median (the whole point of the delta
//! API); the process exits non-zero otherwise.
//!
//! A final persistent-store phase round-trips a prior schedule through
//! `noc_svc::store::Store` — written, reopened cold, resolved from the
//! segment log — and requires the repair warm-started from the
//! disk-resolved prior to be byte-identical to the RAM-prior repair:
//! the warm-start contract survives a restart.

use std::time::Instant;

use serde::Serialize;

use noc_bench::platforms;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

/// Timing runs per configuration; the median is reported.
const RUNS: usize = 5;
/// Edit-sequence sizes compared.
const EDIT_SIZES: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct Case {
    graph: String,
    tasks: usize,
    edits: usize,
    warm_start: bool,
    reason: String,
    mask_tasks: usize,
    warm_median_s: f64,
    scratch_median_s: f64,
    /// `warm_median_s / scratch_median_s`; below 1.0 means the warm
    /// start paid off.
    latency_ratio: f64,
    warm_energy_nj: f64,
    scratch_energy_nj: f64,
    /// `warm_energy_nj / scratch_energy_nj`: the quality envelope. The
    /// warm start trades a little energy for a lot of latency; this
    /// records exactly how much.
    energy_ratio: f64,
    warm_tardiness: u64,
    scratch_tardiness: u64,
    warm_misses: usize,
    scratch_misses: usize,
}

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    host_cpus: usize,
    /// `false` on single-hardware-thread hosts: parallel speedup claims
    /// are unmeasurable there. The warm-vs-scratch latency ratios in
    /// this artifact are serial-vs-serial and remain meaningful.
    speedup_valid: bool,
    cases: Vec<Case>,
    store_prior: StorePrior,
}

/// The persistent-store warm-start phase: a prior resolved from a
/// cold-reopened segment log must repair to the same bytes as the
/// in-memory prior.
#[derive(Debug, Serialize)]
struct StorePrior {
    reopen_s: f64,
    resolve_s: f64,
    byte_identical: bool,
}

/// Writes the prior's response bytes to a fresh store, reopens it cold
/// and repairs from the disk-resolved prior; compares against `want`.
fn store_prior_phase(
    graph: &noc_ctg::TaskGraph,
    platform: &noc_platform::Platform,
    prior: &noc_eas::ScheduleOutcome,
    edits: &[Edit],
    want: &str,
) -> StorePrior {
    use std::sync::Arc;

    use noc_svc::store::{Store, StoreConfig, StoreStats};

    let dir = std::env::temp_dir().join(format!("noc-delta-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = "delta-bench-prior";
    let response = noc_svc::api::ScheduleResponse::from_outcome("eas", prior).to_json();
    {
        let store = Store::open(StoreConfig::new(&dir), Arc::new(StoreStats::default()))
            .expect("store opens");
        assert!(
            store.put(key, &noc_svc::cache::JobOutput::new(Arc::new(response))),
            "prior write must land"
        );
    }

    let t0 = Instant::now();
    let store = Store::open(StoreConfig::new(&dir), Arc::new(StoreStats::default()))
        .expect("store reopens");
    let reopen_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let resolved = store.get(key).expect("prior resolves from disk");
    let parsed: noc_svc::api::ScheduleResponse =
        serde_json::from_str(&resolved.body).expect("stored prior parses");
    let applied = apply_edits(graph, edits).expect("edits apply");
    let edited_platform = apply_platform_edits(platform, &applied.edits).expect("platform applies");
    let repaired = repair_from(graph, &parsed.schedule, &edited_platform, &applied, 1)
        .expect("repairs from the disk-resolved prior");
    let resolve_s = t0.elapsed().as_secs_f64();
    let got = noc_svc::api::ScheduleResponse::from_outcome("eas", &repaired.outcome).to_json();
    let _ = std::fs::remove_dir_all(&dir);
    StorePrior {
        reopen_s,
        resolve_s,
        byte_identical: got == want,
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// A deterministic edit sequence of `k` cost changes on distinct,
/// spread-out tasks: each bumps one task's execution times by ~10% and
/// energies by ~5% on every PE, enough to perturb the schedule without
/// invalidating the warm start.
fn edit_sequence(graph: &noc_ctg::TaskGraph, k: usize) -> Vec<Edit> {
    let n = graph.task_count();
    let stride = (n / (k + 1)).max(1);
    (0..k)
        .map(|i| {
            let t = (1 + i * stride) % n;
            let task = graph.task(TaskId::new(t as u32));
            Edit::SetExecTime {
                task: t as u32,
                exec_times: task
                    .exec_times()
                    .iter()
                    .map(|w| w.ticks() + w.ticks() / 10 + 1)
                    .collect(),
                exec_energies: task
                    .exec_energies()
                    .iter()
                    .map(|e| e.as_nj() * 1.05)
                    .collect(),
            }
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_delta.json".to_owned());
    let platform = platforms::mesh_4x4();
    let host_cpus = noc_par::available_threads();
    println!("== Delta warm-start baseline (host has {host_cpus} hardware threads) ==\n");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>10} {:>10} {:>7} {:>7}",
        "graph", "tasks", "edits", "mask", "warm(s)", "scratch(s)", "ratio", "energy"
    );

    let scheduler = EasScheduler::new(EasConfig::default());
    let mut cases = Vec::new();
    let mut gate_failures = Vec::new();
    for task_count in [64usize, 128] {
        let mut cfg = TgffConfig::category_i(42);
        cfg.task_count = task_count;
        cfg.width = (task_count / 20).max(4);
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let prior = scheduler.schedule(&graph, &platform).expect("schedules");

        for k in EDIT_SIZES {
            let edits = edit_sequence(&graph, k);
            let applied = apply_edits(&graph, &edits).expect("edits apply");
            let edited_platform =
                apply_platform_edits(&platform, &applied.edits).expect("platform applies");

            let mut warm_samples = Vec::new();
            let mut delta = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let out = repair_from(&graph, &prior.schedule, &edited_platform, &applied, 1)
                    .expect("repairs");
                warm_samples.push(t0.elapsed().as_secs_f64());
                delta = Some(out);
            }
            let delta = delta.expect("at least one run");

            let mut scratch_samples = Vec::new();
            let mut scratch = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let out = scheduler
                    .schedule(&applied.graph, &edited_platform)
                    .expect("schedules");
                scratch_samples.push(t0.elapsed().as_secs_f64());
                scratch = Some(out);
            }
            let scratch = scratch.expect("at least one run");

            let warm_median_s = median(warm_samples);
            let scratch_median_s = median(scratch_samples);
            let latency_ratio = warm_median_s / scratch_median_s;
            let warm_energy_nj = delta.outcome.stats.energy.total().as_nj();
            let scratch_energy_nj = scratch.stats.energy.total().as_nj();
            println!(
                "{:<22} {:>6} {:>6} {:>6} {:>10.4} {:>10.4} {:>7.2} {:>7.3}",
                graph.name(),
                graph.task_count(),
                k,
                delta.mask_tasks,
                warm_median_s,
                scratch_median_s,
                latency_ratio,
                warm_energy_nj / scratch_energy_nj,
            );
            if k == 1 && delta.warm_start && latency_ratio >= 0.5 {
                gate_failures.push(format!(
                    "{}: single-edit warm start took {latency_ratio:.2}x of scratch (gate < 0.5)",
                    graph.name()
                ));
            }
            cases.push(Case {
                graph: graph.name().to_owned(),
                tasks: graph.task_count(),
                edits: k,
                warm_start: delta.warm_start,
                reason: delta.reason.to_owned(),
                mask_tasks: delta.mask_tasks,
                warm_median_s,
                scratch_median_s,
                latency_ratio,
                warm_energy_nj,
                scratch_energy_nj,
                energy_ratio: warm_energy_nj / scratch_energy_nj,
                warm_tardiness: delta.outcome.report.total_tardiness().ticks(),
                scratch_tardiness: scratch.report.total_tardiness().ticks(),
                warm_misses: delta.outcome.report.deadline_misses.len(),
                scratch_misses: scratch.report.deadline_misses.len(),
            });
        }
    }

    // Persistent-store phase: the last graph's prior, written to a
    // segment log and resolved after a cold reopen, must repair to the
    // same bytes as the RAM-held prior.
    let mut cfg = TgffConfig::category_i(42);
    cfg.task_count = 64;
    cfg.width = 4;
    let graph = TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generates");
    let prior = scheduler.schedule(&graph, &platform).expect("schedules");
    let edits = edit_sequence(&graph, 1);
    let applied = apply_edits(&graph, &edits).expect("edits apply");
    let edited_platform =
        apply_platform_edits(&platform, &applied.edits).expect("platform applies");
    let ram_repair =
        repair_from(&graph, &prior.schedule, &edited_platform, &applied, 1).expect("repairs");
    let want = noc_svc::api::ScheduleResponse::from_outcome("eas", &ram_repair.outcome).to_json();
    let store_prior = store_prior_phase(&graph, &platform, &prior, &edits, &want);
    println!(
        "\nstore-resolved prior: reopen {:.4}s, resolve+repair {:.4}s, byte-identical: {}",
        store_prior.reopen_s, store_prior.resolve_s, store_prior.byte_identical
    );
    if !store_prior.byte_identical {
        gate_failures
            .push("disk-resolved prior repaired to different bytes than the RAM prior".to_owned());
    }

    let baseline = Baseline {
        bench: "delta".to_owned(),
        host_cpus,
        speedup_valid: host_cpus > 1,
        cases,
        store_prior,
    };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nBaseline written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize baseline: {e}");
            std::process::exit(1);
        }
    }
    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("gate failure: {failure}");
        }
        std::process::exit(1);
    }
    println!("gate passed: single-edit warm starts beat half the from-scratch latency");
}
