//! Extension study: EAS against the full baseline panorama — EDF
//! (energy-blind, deadline-driven), Sih & Lee's DLS (energy-blind,
//! communication-aware) and a simulated-annealing refinement of EAS (the
//! quality bound for the heuristic).

use noc_bench::experiments::{baseline_comparison, write_json_artifact};
use noc_bench::report::render_rows;

fn main() {
    println!("== Baseline panorama: EAS / DLS / EDF / anneal ==\n");
    let rows = baseline_comparison();
    println!("{}", render_rows(&rows));
    println!(
        "Reading guide: DLS usually beats EDF on makespan (communication-aware) yet\n\
         both remain energy-blind; the two-phase map-then-schedule baseline saves\n\
         energy over EDF but, blind to contention and slack while mapping, busts\n\
         deadlines the co-scheduling EAS meets — the paper's core argument;\n\
         annealing from the EAS schedule quantifies how close the heuristic is to\n\
         a local optimum (small residual gap, at orders of magnitude more runtime)."
    );
    if let Some(path) = write_json_artifact("baselines", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
