//! Persistent schedule-store microbenchmark for CI: fills a segment
//! log with deterministic schedule responses, measures disk-tier vs
//! RAM-tier hit latency, times cold-start recovery with and without
//! the packed index (index load vs full segment rescan), verifies
//! every recovered record byte-identically, and writes
//! `BENCH_store.json` (first argument overrides the path).
//!
//! The CI gate: every record must survive both reopen paths with its
//! exact bytes, and the store must never degrade during the run; the
//! process exits non-zero otherwise.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use noc_svc::cache::JobOutput;
use noc_svc::store::{Store, StoreConfig, StoreStats, TieredStore};

/// Records written to the store; bodies are ~2 KiB, so the log spans
/// several rotated segments at the 256 KiB threshold below.
const RECORDS: usize = 2000;
/// Segment rotation threshold — small, so recovery walks many files.
const SEGMENT_BYTES: u64 = 256 * 1024;
/// Lookups timed per tier.
const LOOKUPS: usize = 4000;

#[derive(Debug, Serialize)]
struct TierLatency {
    tier: String,
    lookups: usize,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

#[derive(Debug, Serialize)]
struct Recovery {
    /// `index` (packed `.idx` files present) or `rescan` (`.idx`
    /// deleted, every segment re-scanned and re-checksummed).
    path: String,
    open_s: f64,
    records: usize,
    segments: u64,
    /// All records re-read byte-identically after this open.
    byte_identical: bool,
}

#[derive(Debug, Serialize)]
struct StoreBench {
    bench: String,
    records: usize,
    segment_bytes: u64,
    fill_s: f64,
    rotations: u64,
    log_bytes: u64,
    latency: Vec<TierLatency>,
    recovery: Vec<Recovery>,
    degraded: bool,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[idx.clamp(1, sorted_us.len()) - 1] as f64
}

/// The deterministic (key, body) pair for record `i` — a synthetic
/// schedule response of realistic size.
fn record(i: usize) -> (String, String) {
    let key =
        format!("{{\"graph\":\"bench-{i:06}\",\"platform\":\"mesh:4x4\",\"scheduler\":\"eas\"}}");
    let mut body = String::with_capacity(2200);
    body.push_str("{\"scheduler\":\"eas\",\"schedule\":[");
    for t in 0..64usize {
        if t > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"task\":{t},\"pe\":{},\"start\":{},\"end\":{}}}",
            (i + t) % 16,
            t * 100 + i,
            t * 100 + i + 80
        ));
    }
    body.push_str(&format!(
        "],\"makespan\":{},\"energy_nj\":{}.5}}",
        6400 + i,
        900 + i
    ));
    (key, body)
}

/// Opens the store and verifies every record's bytes; returns the
/// timing row for the artifact.
fn timed_open(dir: &std::path::Path, path: &str) -> (Recovery, bool) {
    let stats = Arc::new(StoreStats::default());
    let t0 = Instant::now();
    let store = Store::open(
        StoreConfig {
            dir: dir.to_path_buf(),
            segment_max_bytes: SEGMENT_BYTES,
            faults: None,
        },
        Arc::clone(&stats),
    )
    .expect("store reopens");
    let open_s = t0.elapsed().as_secs_f64();
    let mut byte_identical = true;
    for i in 0..RECORDS {
        let (key, body) = record(i);
        match store.get(&key) {
            Some(output) if *output.body == body => {}
            _ => {
                eprintln!("error: record {i} diverged after {path} recovery");
                byte_identical = false;
            }
        }
    }
    let degraded = store.is_degraded();
    (
        Recovery {
            path: path.to_owned(),
            open_s,
            records: store.len(),
            segments: stats.segments.load(std::sync::atomic::Ordering::Relaxed),
            byte_identical,
        },
        degraded,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".to_owned());
    let dir = std::env::temp_dir().join(format!("noc-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("== Persistent store baseline: {RECORDS} records, {SEGMENT_BYTES}-byte segments ==\n");

    // Fill.
    let stats = Arc::new(StoreStats::default());
    let store = Store::open(
        StoreConfig {
            dir: dir.clone(),
            segment_max_bytes: SEGMENT_BYTES,
            faults: None,
        },
        Arc::clone(&stats),
    )
    .expect("store opens");
    let t0 = Instant::now();
    for i in 0..RECORDS {
        let (key, body) = record(i);
        assert!(
            store.put(&key, &JobOutput::new(Arc::new(body))),
            "fill write {i} must land"
        );
    }
    let fill_s = t0.elapsed().as_secs_f64();
    let rotations = stats.rotations.load(std::sync::atomic::Ordering::Relaxed);
    let log_bytes = std::fs::read_dir(&dir)
        .expect("store dir lists")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "log"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "fill: {RECORDS} records in {fill_s:.3}s ({rotations} rotations, {log_bytes} log bytes)"
    );

    // Disk-tier hit latency: a 1-entry memory tier forces every lookup
    // of a *different* key to the segment log.
    let disk_tier = TieredStore::with_disk(1, Some(store));
    let mut disk_us: Vec<u64> = Vec::with_capacity(LOOKUPS);
    for n in 0..LOOKUPS {
        let (key, _) = record((n * 7919) % RECORDS);
        let t0 = Instant::now();
        let hit = disk_tier.get(&key);
        disk_us.push(t0.elapsed().as_micros() as u64);
        assert!(hit.is_some(), "disk-tier lookup must hit");
    }
    disk_us.sort_unstable();

    // RAM-tier hit latency: a memory tier big enough to hold
    // everything, warmed by one promotion pass.
    let ram_tier = TieredStore::memory_only(RECORDS);
    for i in 0..RECORDS {
        let (key, body) = record(i);
        ram_tier.insert(&key, &JobOutput::new(Arc::new(body)));
    }
    let mut ram_us: Vec<u64> = Vec::with_capacity(LOOKUPS);
    for n in 0..LOOKUPS {
        let (key, _) = record((n * 7919) % RECORDS);
        let t0 = Instant::now();
        let hit = ram_tier.get(&key);
        ram_us.push(t0.elapsed().as_micros() as u64);
        assert!(hit.is_some(), "RAM-tier lookup must hit");
    }
    ram_us.sort_unstable();
    let latency = vec![
        TierLatency {
            tier: "ram".to_owned(),
            lookups: LOOKUPS,
            p50_us: percentile(&ram_us, 0.50),
            p99_us: percentile(&ram_us, 0.99),
            max_us: *ram_us.last().expect("samples") as f64,
        },
        TierLatency {
            tier: "disk".to_owned(),
            lookups: LOOKUPS,
            p50_us: percentile(&disk_us, 0.50),
            p99_us: percentile(&disk_us, 0.99),
            max_us: *disk_us.last().expect("samples") as f64,
        },
    ];
    for l in &latency {
        println!(
            "{:<4} tier: p50 {:>7.1}us  p99 {:>7.1}us  max {:>8.1}us",
            l.tier, l.p50_us, l.p99_us, l.max_us
        );
    }
    let fill_degraded = disk_tier.degraded();
    drop(disk_tier);

    // Cold-start recovery, packed-index path: reopen with `.idx` files
    // in place.
    let (with_index, degraded_a) = timed_open(&dir, "index");
    // Cold-start recovery, rescan path: delete every index file so
    // open must re-scan and re-checksum each segment.
    for entry in std::fs::read_dir(&dir).expect("store dir lists").flatten() {
        if entry.path().extension().is_some_and(|x| x == "idx") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    let (rescanned, degraded_b) = timed_open(&dir, "rescan");
    for r in [&with_index, &rescanned] {
        println!(
            "cold start ({:<6}): {:.4}s for {} records across {} segments",
            r.path, r.open_s, r.records, r.segments
        );
    }

    let report = StoreBench {
        bench: "store".to_owned(),
        records: RECORDS,
        segment_bytes: SEGMENT_BYTES,
        fill_s,
        rotations,
        log_bytes,
        latency,
        degraded: fill_degraded || degraded_a || degraded_b,
        recovery: vec![with_index, rescanned],
    };
    let failed = report.degraded || report.recovery.iter().any(|r| !r.byte_identical);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&out_path, json) {
            Ok(()) => println!("\nBaseline written to {out_path}"),
            Err(e) => {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot serialize baseline: {e}");
            std::process::exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if failed {
        eprintln!("gate failure: recovery diverged or the store degraded");
        std::process::exit(1);
    }
    println!("gate passed: both recovery paths reproduced every record byte-identically");
}
