//! Reproduces **Table 1**: EAS vs EDF on the MP3/H.263 A/V encoder
//! application (24 tasks) scheduled on a heterogeneous 2x2 NoC, for the
//! clips akiyo / foreman / toybox.

use noc_bench::experiments::{multimedia_table, write_json_artifact};
use noc_ctg::prelude::MultimediaApp;

fn main() {
    println!("== Table 1: A/V encoder (24 tasks, 2x2 NoC) ==\n");
    let table = multimedia_table(MultimediaApp::AvEncoder);
    println!("{}", table.render());
    if let Some(path) = write_json_artifact("table1_av_encoder", &table) {
        println!("JSON artifact: {}", path.display());
    }
}
