//! Standalone network-fault proxy for cluster partition drills: wraps
//! [`noc_svc::net::chaos::ChaosProxy`] with a line-based TCP control
//! port, so a CI job (or a human in another terminal) can flip faults
//! on a running cluster without touching the nodes.
//!
//! ```text
//! net_chaos --listen 127.0.0.1:19001 --upstream 127.0.0.1:18001 \
//!           --control 127.0.0.1:17001
//! ```
//!
//! Peers and clients dial `--listen`; bytes are forwarded to
//! `--upstream` until a control command changes the policy. Control
//! protocol — one command per line, one reply line per command:
//!
//! | command          | effect                                        |
//! |------------------|-----------------------------------------------|
//! | `deny on\|off`   | accept-and-close every connection (fast fail) |
//! | `blackhole on\|off` | accept, swallow bytes, never answer        |
//! | `latency <ms>`   | delay each request burst toward the upstream  |
//! | `status`         | report `deny=.. blackhole=.. latency_ms=..`   |
//!
//! Denying only one node's proxy is a *one-way* partition: nothing
//! reaches that node, but its own outbound dials (to the other nodes'
//! proxies) still work. The process runs until killed.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use noc_svc::net::chaos::ChaosProxy;

fn main() {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut upstream: Option<String> = None;
    let mut control = "127.0.0.1:0".to_owned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("error: {} needs a value", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--listen" => listen = flag_value(&mut i),
            "--upstream" => upstream = Some(flag_value(&mut i)),
            "--control" => control = flag_value(&mut i),
            flag => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(upstream) = upstream else {
        eprintln!("usage: net_chaos --listen <addr> --upstream <addr> [--control <addr>]");
        std::process::exit(2);
    };
    let upstream: SocketAddr = upstream.parse().unwrap_or_else(|_| {
        eprintln!("error: bad --upstream {upstream:?}");
        std::process::exit(2);
    });

    let proxy = ChaosProxy::start(&listen, upstream).unwrap_or_else(|e| {
        eprintln!("error: cannot start proxy on {listen}: {e}");
        std::process::exit(1);
    });
    let ctl = TcpListener::bind(&control).unwrap_or_else(|e| {
        eprintln!("error: cannot bind control port {control}: {e}");
        std::process::exit(1);
    });
    println!(
        "net_chaos: forwarding {} -> {upstream}, control on {}",
        proxy.addr(),
        ctl.local_addr().map_or(control, |a| a.to_string())
    );

    for conn in ctl.incoming() {
        let Ok(conn) = conn else { continue };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let reader = BufReader::new(conn);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let reply = apply(proxy.policy(), line.trim());
            if writer.write_all(reply.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
                || writer.flush().is_err()
            {
                break;
            }
        }
    }
}

/// Applies one control command, returning the reply line.
fn apply(policy: &noc_svc::net::chaos::ChaosPolicy, command: &str) -> String {
    let mut words = command.split_whitespace();
    match (words.next(), words.next()) {
        (Some("deny"), Some(state @ ("on" | "off"))) => {
            policy.set_deny(state == "on");
            format!("ok deny={}", u8::from(policy.denied()))
        }
        (Some("blackhole"), Some(state @ ("on" | "off"))) => {
            policy.set_blackhole(state == "on");
            format!("ok blackhole={}", u8::from(policy.blackholed()))
        }
        (Some("latency"), Some(ms)) => match ms.parse::<u64>() {
            Ok(ms) => {
                policy.set_latency(Duration::from_millis(ms));
                format!("ok latency_ms={}", policy.latency_ms())
            }
            Err(_) => format!("err bad latency {ms:?}"),
        },
        (Some("status"), None) => format!(
            "ok deny={} blackhole={} latency_ms={}",
            u8::from(policy.denied()),
            u8::from(policy.blackholed()),
            policy.latency_ms()
        ),
        _ => format!("err unknown command {command:?}"),
    }
}
