//! Runs every paper experiment back to back (Figs. 5–7, Tables 1–3, the
//! ablation) and writes all JSON artifacts — the one-shot reproduction
//! entry point referenced by `EXPERIMENTS.md`.

use noc_bench::experiments::{
    ablation_study_threads, multimedia_table, random_category_threads, tradeoff_sweep_threads,
    write_json_artifact, Category,
};
use noc_bench::report::{render_rows, render_series};
use noc_ctg::prelude::{Clip, MultimediaApp};

fn main() {
    let threads = noc_bench::threads_arg();
    println!("#### Fig. 5: category-I random benchmarks ####\n");
    let fig5 = random_category_threads(Category::I, 10, threads);
    println!("{}", render_rows(&fig5.rows));
    println!(
        "EDF overhead vs EAS: {:.0}% (paper: 55%); EAS-base misses on {:?} (paper: [0])\n",
        fig5.avg_edf_overhead_percent, fig5.base_miss_benchmarks
    );
    write_json_artifact("fig5_category1", &fig5);

    println!("#### Fig. 6: category-II random benchmarks ####\n");
    let fig6 = random_category_threads(Category::II, 10, threads);
    println!("{}", render_rows(&fig6.rows));
    println!(
        "EDF overhead vs EAS: {:.0}% (paper: 39%); EAS-base misses on {:?} (paper: [0, 5, 6])\n",
        fig6.avg_edf_overhead_percent, fig6.base_miss_benchmarks
    );
    write_json_artifact("fig6_category2", &fig6);

    for (name, app) in [
        ("Table 1: A/V encoder", MultimediaApp::AvEncoder),
        ("Table 2: A/V decoder", MultimediaApp::AvDecoder),
        (
            "Table 3: integrated A/V system",
            MultimediaApp::AvIntegrated,
        ),
    ] {
        println!("#### {name} ####\n");
        let table = multimedia_table(app);
        println!("{}", table.render());
        write_json_artifact(
            match app {
                MultimediaApp::AvEncoder => "table1_av_encoder",
                MultimediaApp::AvDecoder => "table2_av_decoder",
                MultimediaApp::AvIntegrated => "table3_av_integrated",
            },
            &table,
        );
    }

    println!("#### Fig. 7: energy vs performance ratio ####\n");
    let ratios: Vec<f64> = (0..=6).map(|i| 1.0 + 0.1 * f64::from(i)).collect();
    let fig7 = tradeoff_sweep_threads(Clip::Foreman, &ratios, threads);
    println!(
        "{}",
        render_series(
            "ratio",
            &fig7.ratios,
            &[
                ("eas(nJ)", fig7.eas_energy_nj.clone()),
                ("edf(nJ)", fig7.edf_energy_nj.clone())
            ],
        )
    );
    write_json_artifact("fig7_tradeoff", &fig7);

    println!("#### Ablation study ####\n");
    let ablation = ablation_study_threads(10, threads);
    for r in &ablation {
        println!(
            "{:<22} {:>12.1} nJ  {:>2} miss-benches  {:>3} misses  {:.3}s",
            r.config, r.mean_energy_nj, r.miss_benchmarks, r.total_misses, r.mean_runtime_s
        );
    }
    write_json_artifact("ablation", &ablation);
    println!("\nAll artifacts under target/experiments/.");
}
