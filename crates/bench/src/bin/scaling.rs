//! Extension study: scheduler scalability with platform size. The
//! workload grows proportionally to the tile count (~30 tasks per PE,
//! the paper's 500-tasks-on-16-PEs density), so per-PE pressure stays
//! constant while the scheduling problem grows.

use std::time::Instant;

use noc_bench::platforms;
use noc_bench::runner::ResultRow;
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

fn main() {
    println!("== Extension: scaling with mesh size (≈30 tasks per PE) ==\n");
    println!(
        "{:<7} {:>6} {:>6} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "mesh", "tasks", "arcs", "eas(nJ)", "edf(nJ)", "edf/eas", "eas t(s)", "edf t(s)"
    );
    let mut rows: Vec<ResultRow> = Vec::new();
    for n in [2u16, 3, 4, 5, 6] {
        let platform = platforms::mesh(n, n);
        let tiles = platform.tile_count();
        let mut cfg = TgffConfig::category_i(42);
        cfg.task_count = 30 * tiles;
        cfg.width = (cfg.task_count / 20).max(4);
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");

        let t0 = Instant::now();
        let eas = EasScheduler::full()
            .schedule(&graph, &platform)
            .expect("eas");
        let t1 = Instant::now();
        let edf = EdfScheduler::new()
            .schedule(&graph, &platform)
            .expect("edf");
        let t2 = Instant::now();

        println!(
            "{:<7} {:>6} {:>6} {:>14.1} {:>14.1} {:>9.2} {:>10.3} {:>10.3}",
            format!("{n}x{n}"),
            graph.task_count(),
            graph.edge_count(),
            eas.stats.energy.total().as_nj(),
            edf.stats.energy.total().as_nj(),
            edf.stats.energy.total().as_nj() / eas.stats.energy.total().as_nj(),
            (t1 - t0).as_secs_f64(),
            (t2 - t1).as_secs_f64(),
        );
        rows.push(ResultRow::from_outcome(
            graph.name(),
            &format!("eas@{n}x{n}"),
            &eas,
            (t1 - t0).as_secs_f64(),
        ));
        rows.push(ResultRow::from_outcome(
            graph.name(),
            &format!("edf@{n}x{n}"),
            &edf,
            (t2 - t1).as_secs_f64(),
        ));
    }
    println!(
        "\nReading guide: the energy advantage persists across platform sizes. EAS\n\
         runtime grows with tasks x PEs x ready-width (the trial F(i,k) loop) and\n\
         stays interactive past the paper's 4x4 scale — until a benchmark needs\n\
         search-and-repair, whose full-reschedule moves dominate (visible as a\n\
         runtime jump wherever EAS-base would miss a deadline)."
    );
    if let Some(path) = noc_bench::experiments::write_json_artifact("scaling", &rows) {
        println!("JSON artifact: {}", path.display());
    }
}
