//! Graceful-degradation gate for the fault-injection subsystem: with a
//! fixed seed, masked-resource re-repair must recover deadlines that the
//! pristine schedule, struck by the same faults mid-execution, misses —
//! and the whole sweep must be bit-deterministic.

use noc_bench::experiments::fault_sweep_study;

/// One fault on the 3x3 integrated-A/V workload, fixed seed. The
/// unrepaired run strands work and misses deadlines; EAS's
/// masked-resource repair gets a strict improvement back.
#[test]
fn masked_repair_recovers_missed_deadlines() {
    let rows = fault_sweep_study(1, 4, 7);
    // Rows come out scheduler-major: (eas, k=0), (eas, k=1), (edf, ...).
    let eas_k1 = rows
        .iter()
        .find(|r| r.scheduler == "eas" && r.faults == 1)
        .expect("eas k=1 row");
    assert!(
        eas_k1.recovered_deadlines > 0,
        "masked re-repair should recover deadlines the faulted run missed, got {eas_k1:?}"
    );
    assert!(
        eas_k1.repaired_met > eas_k1.unrepaired_met,
        "repaired deadline fraction should beat the unrepaired one, got {eas_k1:?}"
    );

    // Zero faults is the control: nothing to recover, nothing missed.
    for r in rows.iter().filter(|r| r.faults == 0) {
        assert_eq!(r.recovered_deadlines, 0, "k=0 must not recover: {r:?}");
        assert!(
            (r.repaired_met - r.unrepaired_met).abs() < 1e-12,
            "k=0 repaired == unrepaired: {r:?}"
        );
    }
}

/// The sweep is a pure function of its (max_faults, trials, seed) inputs.
#[test]
fn fault_sweep_is_deterministic() {
    let a = fault_sweep_study(1, 2, 7);
    let b = fault_sweep_study(1, 2, 7);
    assert_eq!(a, b);
}
