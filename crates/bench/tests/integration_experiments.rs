//! Shape checks of the paper's experiments at reduced scale: who wins,
//! by roughly what factor, and where the crossovers fall — the
//! properties `EXPERIMENTS.md` records at full scale.

use noc_bench::experiments::{multimedia_table, tradeoff_sweep};
use noc_bench::platforms;
use noc_bench::runner::{run_schedulers, savings_percent};
use noc_ctg::prelude::*;
use noc_eas::prelude::*;

/// Figs. 5/6 shape at 3-seed scale: EAS-base and EAS sit well below EDF;
/// EAS never misses; EAS-base ≈ EAS on energy.
#[test]
fn random_category_shape() {
    let platform = platforms::mesh_4x4();
    let eas_base = EasScheduler::base();
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    for seed in 0..3u64 {
        let mut cfg = TgffConfig::category_i(seed);
        cfg.task_count = 120; // reduced scale for test time
        cfg.width = 10;
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let rows = run_schedulers(
            &graph,
            &platform,
            &[&eas_base as &dyn Scheduler, &eas, &edf],
        )
        .expect("schedules");
        let (base, full, baseline) = (&rows[0], &rows[1], &rows[2]);
        assert!(
            baseline.energy_nj > full.energy_nj * 1.15,
            "seed {seed}: EDF should cost >15% more"
        );
        assert_eq!(
            full.deadline_misses, 0,
            "seed {seed}: EAS repairs everything"
        );
        let drift = (base.energy_nj - full.energy_nj).abs() / base.energy_nj;
        assert!(drift < 0.25, "seed {seed}: repair energy drift {drift}");
    }
}

/// Tables 1–3 shape: positive savings for every clip, EAS deadline-clean,
/// savings in the tens of percent (paper: 24–51%).
#[test]
fn multimedia_tables_shape() {
    for app in MultimediaApp::all() {
        let table = multimedia_table(app);
        for clip in &table.clips {
            assert_eq!(clip.eas_misses, 0, "{app} {}", clip.clip);
            assert!(
                clip.savings_percent > 10.0 && clip.savings_percent < 75.0,
                "{app} {}: savings {:.1}% out of plausible band",
                clip.clip,
                clip.savings_percent
            );
            // The comm-locality claim (EAS lowers hops/packet) is made
            // by the paper for the *integrated 3x3* system only and is
            // asserted in `integrated_reduces_both_energy_components`;
            // on the tiny 2x2 meshes hop averages are within noise.
            if app == MultimediaApp::AvIntegrated {
                assert!(
                    clip.eas_avg_hops <= clip.edf_avg_hops + 1e-9,
                    "{app} {}: EAS must not raise hops/packet on the 3x3 system",
                    clip.clip
                );
            }
        }
    }
}

/// Sec. 6.2 prose: on the integrated system EAS reduces *both*
/// computation and communication energy (foreman clip).
#[test]
fn integrated_reduces_both_energy_components() {
    let table = multimedia_table(MultimediaApp::AvIntegrated);
    let foreman = table
        .clips
        .iter()
        .find(|c| c.clip == "foreman")
        .expect("clip present");
    assert!(foreman.eas_computation_nj < foreman.edf_computation_nj);
    assert!(foreman.eas_communication_nj < foreman.edf_communication_nj);
    assert!(foreman.eas_avg_hops < foreman.edf_avg_hops);
}

/// Fig. 7 shape: EAS energy is non-decreasing in the performance ratio
/// and approaches EDF as flexibility vanishes.
#[test]
fn tradeoff_shape() {
    let result = tradeoff_sweep(Clip::Foreman, &[1.0, 1.2, 1.4]);
    for w in result.eas_energy_nj.windows(2) {
        assert!(
            w[1] >= w[0] * 0.995,
            "EAS energy must not drop when tightening: {w:?}"
        );
    }
    let gap_start = result.edf_energy_nj[0] - result.eas_energy_nj[0];
    let gap_end = result.edf_energy_nj[2] - result.eas_energy_nj[2];
    assert!(gap_start > 0.0);
    assert!(
        gap_end <= gap_start * 1.05,
        "the EAS/EDF gap should shrink as constraints tighten"
    );
    assert_eq!(result.eas_misses[0], 0, "baseline rate must be schedulable");
}

/// Ablation sanity at small scale: disabling budgeting must not reduce
/// energy below the paper configuration by more than noise, and the
/// paper configuration must not miss deadlines after repair.
#[test]
fn ablation_shape() {
    let platform = platforms::mesh_4x4();
    let paper = EasScheduler::full();
    let no_budget = EasScheduler::new(EasConfig {
        budgeting: false,
        ..EasConfig::default()
    });
    let fixed_delay = EasScheduler::new(EasConfig {
        comm_model: CommModel::FixedDelay,
        ..EasConfig::default()
    });
    let mut paper_misses = 0usize;
    let mut greedy_beats_paper = 0usize;
    for seed in 0..4u64 {
        let mut cfg = TgffConfig::category_ii(seed);
        cfg.task_count = 100;
        cfg.width = 10;
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let p = paper.schedule(&graph, &platform).expect("paper");
        let g = no_budget.schedule(&graph, &platform).expect("greedy");
        let f = fixed_delay.schedule(&graph, &platform).expect("fixed");
        paper_misses += p.report.deadline_misses.len();
        // Greedy (no budgets) optimizes energy unconstrained: it can only
        // be cheaper or equal before repair kicks in; both went through
        // repair so allow noise.
        if g.stats.energy.total() < p.stats.energy.total() {
            greedy_beats_paper += 1;
        }
        // Fixed-delay trials still yield valid (contention-aware
        // materialized) schedules.
        assert!(f.report.makespan.ticks() > 0);
    }
    assert_eq!(paper_misses, 0, "paper config must stay deadline-clean");
    // Not a strict theorem, but with loose coupling the greedy variant
    // usually wins energy on at least one seed; the real story is its
    // miss count, covered by the ablation binary at full scale.
    let _ = greedy_beats_paper;
}

/// Extension: pipelined frames stay deadline-clean with stable
/// per-frame energy.
#[test]
fn pipeline_extension_shape() {
    let rows = noc_bench::experiments::pipeline_extension(Clip::Akiyo, 2);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert_eq!(r.misses, 0, "{} frames", r.frames);
    }
    let drift = (rows[1].energy_per_frame_nj - rows[0].energy_per_frame_nj).abs()
        / rows[0].energy_per_frame_nj;
    assert!(
        drift < 0.2,
        "per-frame energy should be stable, drift {drift}"
    );
}

/// Extension: the two-phase mapping baseline lands between EAS and EDF
/// on energy for the integrated system.
#[test]
fn map_then_schedule_sits_between_eas_and_edf() {
    let platform = platforms::mesh_3x3();
    let graph = MultimediaApp::AvIntegrated
        .build(Clip::Foreman, &platform)
        .unwrap();
    let eas = EasScheduler::full().schedule(&graph, &platform).unwrap();
    let two_phase = noc_eas::prelude::MapThenScheduleScheduler::new()
        .schedule(&graph, &platform)
        .unwrap();
    let edf = EdfScheduler::new().schedule(&graph, &platform).unwrap();
    assert!(eas.stats.energy.total() <= two_phase.stats.energy.total());
    assert!(two_phase.stats.energy.total() < edf.stats.energy.total());
}

/// Extension: at zero jitter the robustness replay reproduces the
/// deadline-clean static behaviour for both schedulers.
#[test]
fn robustness_zero_jitter_is_clean() {
    let rows = noc_bench::experiments::robustness_study(&[0.0], 3);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert_eq!(
            r.miss_trials, 0,
            "{} must be clean at zero jitter",
            r.scheduler
        );
        assert!(r.mean_makespan > 0.0);
    }
}

/// Extension apps stay deadline-clean under EAS at every load.
#[test]
fn extension_apps_are_schedulable() {
    use noc_ctg::apps::{ExtensionApp, Load};
    for app in ExtensionApp::all() {
        let (c, r) = app.recommended_mesh();
        let platform = platforms::mesh(c, r);
        for load in Load::all() {
            let graph = app.build(load, &platform).unwrap();
            let out = EasScheduler::full().schedule(&graph, &platform).unwrap();
            assert!(
                out.report.meets_deadlines(),
                "{app} {load}: misses {:?}",
                out.report.deadline_misses
            );
            let edf = EdfScheduler::new().schedule(&graph, &platform).unwrap();
            assert!(
                out.stats.energy.total() < edf.stats.energy.total(),
                "{app} {load}"
            );
        }
    }
}

/// Savings formula convention (used across all tables).
#[test]
fn savings_convention() {
    assert!((savings_percent(56.0, 100.0) - 44.0).abs() < 1e-12);
}
