//! The CLI subcommands, written against the library crates so every
//! command is unit-testable without spawning processes.

use std::fs;

use noc_ctg::prelude::*;
use noc_schedule::prelude::*;
use noc_sim::prelude::*;

use crate::args::Args;
use crate::spec::{parse_platform, parse_platform_faulted, parse_scheduler};

/// Usage text for `noceas help`.
pub const USAGE: &str = "\
noceas — energy-aware communication and task scheduling for NoCs (DATE'04 EAS)

USAGE:
  noceas generate --platform mesh:4x4 --out graph.json
                  [--seed N] [--tasks N] [--laxity F]
      Generate a TGFF-style random task graph for a platform.

  noceas benchmark --app av-encoder|av-decoder|av-integrated
                   [--clip akiyo|foreman|toybox] --out graph.json
  noceas benchmark --app ofdm-transceiver|packet-pipeline
                   [--load light|nominal|heavy] --out graph.json
      Emit one of the built-in benchmark graphs.

  noceas schedule --graph graph.json --platform mesh:4x4
                  [--scheduler eas|eas-base|edf|dls|anneal]
                  [--faults tile:4,link:1-2]
                  [--threads N] [--budget-ms MS]
                  [--out schedule.json] [--vcd waves.vcd]
                  [--trace trace.json] [--trace-format chrome|jsonl]
                  [--gantt] [--links] [--csv] [--json]
      Schedule a task graph and report energy / deadline statistics.
      --trace records every pipeline decision (budgets, F(i,k) trials,
      PE selections, link reservations, repair moves, anneal chains)
      into FILE: `chrome` (default) writes Chrome trace-event JSON —
      open it in Perfetto or chrome://tracing for per-stage profiling —
      `jsonl` writes one event object per line with logical timestamps
      only, byte-identical for every --threads value. Tracing never
      changes the schedule (see docs/OBSERVABILITY.md).
      --budget-ms bounds the scheduler to a wall-clock compute budget;
      an exhausted budget is a clean typed error (no partial schedule),
      so retry with a larger budget or a cheaper scheduler.
      --json replaces the human-readable summary with the same compact
      JSON body the HTTP service answers (one serialization of a
      schedule, byte-identical across surfaces). The --out and --vcd
      artifacts are still written; --gantt/--links/--csv render into
      the replaced summary and are rejected alongside --json.
      --threads fans trial evaluation out over N workers (0 = all
      cores); the schedule is identical for every thread count.
      --faults masks permanently failed resources: dead PEs leave the
      candidate lists and routes detour around dead links
      (`tile:<id>`, `link:<a>-<b>` both ways, `link:<a>><b>` one way).

  noceas delta --graph prior_graph.json --schedule prior_schedule.json
               --platform mesh:4x4 --edits edits.json
               [--faults SPEC] [--threads N] [--budget-ms MS]
               [--out schedule.json] [--json] [--explain]
      Repair a previously computed schedule after a set of typed edits
      (tasks added/removed, costs or deadlines changed, edge volumes
      changed, PEs or links failed/restored) instead of rescheduling
      from scratch. --edits is a JSON array of edit objects, e.g.
      [{\"SetDeadline\":{\"task\":3,\"deadline\":900}},{\"FailPe\":{\"pe\":2}}];
      task/PE indices always refer to the *prior* graph and platform.
      The warm start masks only the affected region and re-runs search
      & repair; when the edits invalidate the warm start the command
      falls back to a full reschedule and says so (see docs/DELTA.md).
      --json prints the exact POST /v1/schedule/delta response body;
      --explain narrates why the warm start was or wasn't used.

  noceas validate --graph graph.json --schedule schedule.json --platform mesh:4x4
                  [--faults SPEC] [--json]
      Re-check a schedule against all Def. 3/4, dependency and deadline
      constraints (on the fault-masked platform when --faults is given).
      --json prints the service's validation body; structural
      violations then report {\"valid\":false,...} with exit code 0.

  noceas serve [--addr 127.0.0.1:8533] [--http-workers N]
               [--sched-workers N] [--queue N] [--cache N] [--threads N]
               [--budget-ms MS] [--journal PATH] [--store-dir DIR]
               [--store-segment-bytes N] [--net reactor|thread]
               [--peers ADDR,ADDR,...] [--self-addr ADDR]
               [--peer-timeout-ms MS] [--probe-ms MS] [--anti-entropy-ms MS]
               [--flight-recorder-entries N] [--slow-ms MS] [--log-json PATH]
      Run the scheduling service: POST /v1/schedule, POST /v1/validate,
      GET /v1/jobs/<id>, GET /healthz, GET /metrics. The job queue is
      bounded at --queue entries (429 + Retry-After past it) and
      responses are cached content-addressed in --cache entries.
      --budget-ms bounds each request's scheduler; past the budget the
      service answers the degraded energy-blind EDF fallback, marked
      \"degraded\":true plus a Degraded-Mode header, instead of a 500.
      --journal write-ahead-logs accepted async jobs to PATH; after a
      crash (even kill -9) the restarted server replays the journal,
      re-runs unfinished jobs and answers byte-identically.
      --store-dir persists every response to a checksummed segment log
      in DIR: restarts answer repeat requests byte-identically from
      disk with zero recomputes, corrupt records are quarantined, and
      any disk fault degrades the server to memory-only serving
      (Store-Degraded header + noc_svc_store_degraded metric) instead
      of failing requests. --store-segment-bytes caps a segment before
      rotation (default 8 MiB).
      --net picks the entry path: the default `reactor` multiplexes
      every connection over poll(2) event loops (tens of thousands of
      idle keep-alive clients on --http-workers threads); `thread`
      keeps the original blocking thread-per-connection pool. The two
      answer byte-identically.
      --peers runs multi-node: requests hash onto a consistent-hash
      ring over the peer list, cache misses probe the owning peer
      before computing locally, done-records replicate to the ring
      successor for failover, and every node answers byte-identically
      (see docs/CLUSTER.md). --self-addr sets this node's ring
      identity when it differs from --addr (e.g. behind NAT). A
      per-peer failure detector marks peers Down after consecutive
      failures so lookups and replication skip them in O(1);
      --peer-timeout-ms bounds each internal peer operation (default
      1000), --probe-ms sets the Down-peer re-probe backoff base
      (default 250, doubling to 16x), and --anti-entropy-ms sets the
      digest-exchange sweep period that re-replicates records a
      recovered peer missed (default 2000; 0 disables the sweep).
      Every request is traced: the response carries an X-Noc-Trace id
      whose per-hop spans land in a bounded per-node flight recorder
      (--flight-recorder-entries spans, default 4096, 0 disables);
      requests at or past --slow-ms (default 250) snapshot their span
      tree into GET /v1/internal/slow. --log-json appends structured
      JSONL service events (admissions rejected, peers flipping
      Up/Down, store degradation, journal replay) to PATH instead of
      stderr. See docs/OBSERVABILITY.md.

  noceas cluster status --nodes ADDR,ADDR,...
      Fan out to every node: ring ownership share, failure-detector
      peer states and replication retry backlog, in one table.

  noceas cluster trace ID --nodes ADDR,ADDR,...
      Collect the flight-recorder spans for trace ID from every node
      and assemble the cross-node span tree (the ID comes from any
      response's X-Noc-Trace header). Fails when the tree is missing
      or has dangling parents.

  noceas cluster slow --nodes ADDR,ADDR,...
      Dump every node's slow-request ring, slowest first.

  noceas simulate --graph graph.json --schedule schedule.json --platform mesh:4x4
                  [--buffers N] [--hop-latency N] [--faults SPEC]
      Replay a schedule on the flit-level wormhole simulator.

  noceas explain --graph graph.json --platform mesh:4x4
                 [--scheduler eas|eas-base|edf|dls|anneal]
                 [--faults SPEC] [--threads N] [--task N]
      Schedule the graph with tracing on and print a per-task narrative
      of every decision: why each task got its PE (urgency vs. energy
      regret), where transfers stalled on link contention, and which
      repair moves recovered deadlines. --task N narrows the story to
      one task index.

  noceas dot --graph graph.json
      Print the task graph in Graphviz DOT syntax.

  noceas info --graph graph.json [--bandwidth BITS_PER_TICK]
      Print shape/load statistics of a task graph (depth, width, CCR).

  noceas import --tgff file.tgff --platform mesh:4x4 --out graph.json
      Import a TGFF-format task graph (see noc_ctg::tgff_parse for the
      accepted subset), deriving per-PE costs from its @PE tables.

  noceas help
      Show this text.
";

/// Runs one parsed command, returning the text to print.
///
/// # Errors
///
/// Every user-facing failure (bad spec, missing file, invalid schedule)
/// is returned as a message; the binary maps it to exit code 1.
pub fn run(args: &Args) -> Result<String, String> {
    // Only `cluster` takes free-standing verbs; everywhere else a
    // stray positional is a mistake worth rejecting loudly.
    if args.command != "cluster" {
        if let Some(stray) = args.positionals.first() {
            return Err(format!("unexpected positional argument `{stray}`"));
        }
    }
    match args.command.as_str() {
        "generate" => generate(args),
        "cluster" => cluster_cmd(args),
        "benchmark" => benchmark(args),
        "schedule" => schedule(args),
        "delta" => delta_cmd(args),
        "validate" => validate_cmd(args),
        "simulate" => simulate(args),
        "explain" => explain_cmd(args),
        "serve" => serve(args),
        "dot" => dot(args),
        "info" => info(args),
        "import" => import(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown subcommand `{other}`; try `noceas help`")),
    }
}

fn load_graph(path: &str) -> Result<TaskGraph, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_schedule(path: &str) -> Result<Schedule, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn save_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

fn generate(args: &Args) -> Result<String, String> {
    let platform = parse_platform(args.require("platform")?)?;
    let mut cfg = TgffConfig::category_i(args.get_num("seed", 0u64)?);
    cfg.task_count = args.get_num("tasks", 100usize)?;
    cfg.width = (cfg.task_count / 20).max(2);
    cfg.deadline_laxity = args.get_num("laxity", cfg.deadline_laxity)?;
    let graph = TgffGenerator::new(cfg)
        .generate(&platform)
        .map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    save_json(out, &graph)?;
    Ok(format!(
        "wrote {} ({} tasks, {} arcs, {} PEs)\n",
        out,
        graph.task_count(),
        graph.edge_count(),
        graph.pe_count()
    ))
}

fn benchmark(args: &Args) -> Result<String, String> {
    // Extension apps take a --load profile instead of a --clip.
    if let Some(app) = match args.require("app")? {
        "ofdm-transceiver" => Some(noc_ctg::apps::ExtensionApp::OfdmTransceiver),
        "packet-pipeline" => Some(noc_ctg::apps::ExtensionApp::PacketPipeline),
        _ => None,
    } {
        let load = match args.get_or("load", "nominal") {
            "light" => noc_ctg::apps::Load::Light,
            "nominal" => noc_ctg::apps::Load::Nominal,
            "heavy" => noc_ctg::apps::Load::Heavy,
            other => return Err(format!("unknown load `{other}`")),
        };
        let (cols, rows) = app.recommended_mesh();
        let platform = parse_platform(&format!("mesh:{cols}x{rows}"))?;
        let graph = app.build(load, &platform).map_err(|e| e.to_string())?;
        let out = args.require("out")?;
        save_json(out, &graph)?;
        return Ok(format!(
            "wrote {} ({} on {cols}x{rows}, load {load})\n",
            out,
            app.name()
        ));
    }
    let app = match args.require("app")? {
        "av-encoder" => MultimediaApp::AvEncoder,
        "av-decoder" => MultimediaApp::AvDecoder,
        "av-integrated" => MultimediaApp::AvIntegrated,
        other => return Err(format!("unknown app `{other}`")),
    };
    let clip = match args.get_or("clip", "foreman") {
        "akiyo" => Clip::Akiyo,
        "foreman" => Clip::Foreman,
        "toybox" => Clip::Toybox,
        other => return Err(format!("unknown clip `{other}`")),
    };
    let (cols, rows) = app.recommended_mesh();
    let platform = parse_platform(&format!("mesh:{cols}x{rows}"))?;
    let ratio = args.get_num("ratio", 1.0f64)?;
    let graph = app
        .build_with_performance_ratio(clip, &platform, ratio)
        .map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    save_json(out, &graph)?;
    Ok(format!(
        "wrote {} ({} on {cols}x{rows}, clip {clip}, ratio {ratio})\n",
        out,
        app.name()
    ))
}

fn schedule(args: &Args) -> Result<String, String> {
    let platform = parse_platform_faulted(args.require("platform")?, args.get("faults"))?;
    let graph = load_graph(args.require("graph")?)?;
    let threads: usize = args.get_num("threads", 1)?;
    let scheduler = parse_scheduler(args.get_or("scheduler", "eas"), threads)?;
    let trace_format = args.get_or("trace-format", "chrome");
    if !matches!(trace_format, "chrome" | "jsonl") {
        return Err(format!(
            "unknown --trace-format `{trace_format}` (expected chrome or jsonl)"
        ));
    }
    let trace_path = args.get("trace");
    if trace_path.is_none() && args.get("trace-format").is_some() {
        return Err("--trace-format requires --trace FILE".into());
    }
    let budget = match args.get("budget-ms") {
        None => noc_eas::prelude::ComputeBudget::unlimited(),
        Some(text) => {
            let ms: u64 = text
                .parse()
                .map_err(|_| format!("bad --budget-ms `{text}` (milliseconds)"))?;
            noc_eas::prelude::ComputeBudget::wall_clock(std::time::Duration::from_millis(ms))
        }
    };
    let (outcome, trace_file) = match trace_path {
        None => (
            scheduler
                .schedule_with_budget(&graph, &platform, &budget)
                .map_err(|e| e.to_string())?,
            None,
        ),
        Some(path) => {
            // Chrome traces carry wall-clock spans for profiling; JSONL
            // keeps logical timestamps only, so its bytes are
            // deterministic for every thread count.
            let mut sink = if trace_format == "chrome" {
                noc_eas::trace::BufferSink::with_wall_clock()
            } else {
                noc_eas::trace::BufferSink::new()
            };
            let outcome = scheduler
                .schedule_traced(&graph, &platform, &budget, &mut sink)
                .map_err(|e| e.to_string())?;
            let events = sink.into_events();
            let text = if trace_format == "chrome" {
                noc_eas::trace::to_chrome_trace(&events)
            } else {
                noc_eas::trace::to_jsonl(&events)
            };
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            (outcome, Some(path))
        }
    };

    if args.has_flag("json") {
        // --gantt/--links/--csv render into the human-readable summary
        // that --json replaces; refuse the combination instead of
        // silently dropping them.
        for flag in ["gantt", "links", "csv"] {
            if args.has_flag(flag) {
                return Err(format!(
                    "--{flag} renders the human-readable summary and cannot be combined with --json"
                ));
            }
        }
        // The exact body the HTTP service answers: one serialization of
        // a schedule, shared via noc_svc::api. --vcd and --out produce
        // file artifacts, so both still apply.
        let response = noc_svc::api::ScheduleResponse::from_outcome(scheduler.name(), &outcome);
        if let Some(path) = args.get("vcd") {
            fs::write(
                path,
                noc_schedule::vcd::to_vcd(&outcome.schedule, &graph, &platform),
            )
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = args.get("out") {
            save_json(path, &outcome.schedule)?;
        }
        return Ok(format!("{}\n", response.to_json()));
    }

    let mut out = String::new();
    if !platform.faults().is_empty() {
        out.push_str(&format!(
            "faults masked: {} ({} tiles, {} links dead)\n",
            platform.faults(),
            platform.faults().failed_tiles().len(),
            platform.faults().failed_links().len(),
        ));
    }
    out.push_str(&format!(
        "{}: {} | deadlines {} ({} misses)\n",
        scheduler.name(),
        outcome.stats,
        if outcome.report.meets_deadlines() {
            "met"
        } else {
            "MISSED"
        },
        outcome.report.deadline_misses.len(),
    ));
    if args.has_flag("gantt") {
        out.push('\n');
        out.push_str(&render_gantt(&outcome.schedule, &graph, &platform, 100));
    }
    if args.has_flag("links") {
        out.push('\n');
        out.push_str(&render_link_occupancy(
            &outcome.schedule,
            &graph,
            &platform,
            10,
        ));
    }
    if args.has_flag("csv") {
        out.push('\n');
        out.push_str(&tasks_to_csv(&outcome.schedule, &graph));
        out.push('\n');
        out.push_str(&comms_to_csv(&outcome.schedule, &graph));
    }
    if let Some(path) = args.get("vcd") {
        fs::write(
            path,
            noc_schedule::vcd::to_vcd(&outcome.schedule, &graph, &platform),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = args.get("out") {
        save_json(path, &outcome.schedule)?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = trace_file {
        out.push_str(&format!("wrote {path} ({trace_format})\n"));
    }
    Ok(out)
}

fn explain_cmd(args: &Args) -> Result<String, String> {
    let platform = parse_platform_faulted(args.require("platform")?, args.get("faults"))?;
    let graph = load_graph(args.require("graph")?)?;
    let threads: usize = args.get_num("threads", 1)?;
    let scheduler = parse_scheduler(args.get_or("scheduler", "eas"), threads)?;
    let task: Option<usize> = match args.get("task") {
        None => None,
        Some(text) => {
            let t: usize = text
                .parse()
                .map_err(|_| format!("bad --task `{text}` (task index)"))?;
            if t >= graph.task_count() {
                return Err(format!(
                    "--task {t} out of range (graph has {} tasks)",
                    graph.task_count()
                ));
            }
            Some(t)
        }
    };
    let mut sink = noc_eas::trace::BufferSink::new();
    let outcome = scheduler
        .schedule_traced(
            &graph,
            &platform,
            &noc_eas::prelude::ComputeBudget::unlimited(),
            &mut sink,
        )
        .map_err(|e| e.to_string())?;
    let mut out = noc_eas::trace::explain(sink.events(), task);
    out.push_str(&format!(
        "result: {}: {} | deadlines {} ({} misses)\n",
        scheduler.name(),
        outcome.stats,
        if outcome.report.meets_deadlines() {
            "met"
        } else {
            "MISSED"
        },
        outcome.report.deadline_misses.len(),
    ));
    Ok(out)
}

fn delta_cmd(args: &Args) -> Result<String, String> {
    use noc_eas::prelude::{apply_edits, apply_platform_edits, repair_from_traced, Edit};
    let base_platform = parse_platform_faulted(args.require("platform")?, args.get("faults"))?;
    let prior_graph = load_graph(args.require("graph")?)?;
    let prior_schedule = load_schedule(args.require("schedule")?)?;
    let edits_path = args.require("edits")?;
    let edits_text =
        fs::read_to_string(edits_path).map_err(|e| format!("cannot read {edits_path}: {e}"))?;
    let edits: Vec<Edit> =
        serde_json::from_str(&edits_text).map_err(|e| format!("cannot parse {edits_path}: {e}"))?;
    let threads: usize = args.get_num("threads", 1)?;
    let budget = match args.get("budget-ms") {
        None => noc_eas::prelude::ComputeBudget::unlimited(),
        Some(text) => {
            let ms: u64 = text
                .parse()
                .map_err(|_| format!("bad --budget-ms `{text}` (milliseconds)"))?;
            noc_eas::prelude::ComputeBudget::wall_clock(std::time::Duration::from_millis(ms))
        }
    };
    let applied = apply_edits(&prior_graph, &edits)?;
    let platform = apply_platform_edits(&base_platform, &applied.edits)?;
    let mut sink = noc_eas::trace::BufferSink::new();
    let delta = repair_from_traced(
        &prior_graph,
        &prior_schedule,
        &platform,
        &applied,
        threads,
        &budget,
        &mut sink,
    )
    .map_err(|e| e.to_string())?;
    let outcome = &delta.outcome;

    if args.has_flag("json") {
        if args.has_flag("explain") {
            return Err(
                "--explain narrates the human-readable summary and cannot be combined with --json"
                    .into(),
            );
        }
        let response = noc_svc::api::DeltaResponse {
            warm_start: delta.warm_start,
            reason: delta.reason.to_owned(),
            edits: delta.edits,
            mask_tasks: delta.mask_tasks,
            result: noc_svc::api::ScheduleResponse::from_outcome("eas", outcome),
        };
        if let Some(path) = args.get("out") {
            save_json(path, &outcome.schedule)?;
        }
        return Ok(format!("{}\n", response.to_json()));
    }

    let mut out = String::new();
    if delta.warm_start {
        out.push_str(&format!(
            "warm start: prior schedule rebased and repaired — {} edits touching {} tasks\n",
            delta.edits, delta.mask_tasks
        ));
    } else {
        out.push_str(&format!(
            "full reschedule: warm start rejected ({}) — {} edits\n",
            delta.reason, delta.edits
        ));
    }
    out.push_str(&format!(
        "eas: {} | deadlines {} ({} misses)\n",
        outcome.stats,
        if outcome.report.meets_deadlines() {
            "met"
        } else {
            "MISSED"
        },
        outcome.report.deadline_misses.len(),
    ));
    if args.has_flag("explain") {
        out.push('\n');
        out.push_str(&noc_eas::trace::explain(sink.events(), None));
    }
    if let Some(path) = args.get("out") {
        save_json(path, &outcome.schedule)?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

fn validate_cmd(args: &Args) -> Result<String, String> {
    let platform = parse_platform_faulted(args.require("platform")?, args.get("faults"))?;
    let graph = load_graph(args.require("graph")?)?;
    let schedule = load_schedule(args.require("schedule")?)?;
    if args.has_flag("json") {
        // Mirror the service: structural violations are a successful
        // validation answering {"valid":false,...}.
        let response = match validate(&schedule, &graph, &platform) {
            Ok(report) => noc_svc::api::ValidateResponse::ok(&report),
            Err(e) => noc_svc::api::ValidateResponse::invalid(e.to_string()),
        };
        return Ok(format!("{}\n", response.to_json()));
    }
    let report = validate(&schedule, &graph, &platform).map_err(|e| e.to_string())?;
    Ok(format!("schedule is structurally valid: {report}\n"))
}

fn serve(args: &Args) -> Result<String, String> {
    let net = match args.get_or("net", "reactor") {
        "reactor" => noc_svc::NetMode::Reactor,
        "thread" => noc_svc::NetMode::Thread,
        other => return Err(format!("bad --net `{other}` (reactor|thread)")),
    };
    let peers = match args.get("peers") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect(),
    };
    let config = noc_svc::ServiceConfig {
        addr: args.get_or("addr", "127.0.0.1:8533").to_owned(),
        net,
        peers,
        self_addr: args.get("self-addr").map(str::to_owned),
        http_workers: args.get_num("http-workers", 4usize)?,
        sched_workers: args.get_num("sched-workers", 2usize)?,
        queue_capacity: args.get_num("queue", 64usize)?,
        cache_capacity: args.get_num("cache", 1024usize)?,
        threads: args.get_num("threads", 0usize)?,
        budget_ms: match args.get("budget-ms") {
            None => None,
            Some(text) => Some(
                text.parse()
                    .map_err(|_| format!("bad --budget-ms `{text}` (milliseconds)"))?,
            ),
        },
        journal: args.get("journal").map(str::to_owned),
        store_dir: args.get("store-dir").map(str::to_owned),
        store_segment_bytes: args
            .get_num("store-segment-bytes", noc_svc::store::DEFAULT_SEGMENT_BYTES)?,
        peer_timeout: std::time::Duration::from_millis(
            args.get_num("peer-timeout-ms", 1000u64)?.max(1),
        ),
        probe_interval: std::time::Duration::from_millis(args.get_num("probe-ms", 250u64)?.max(1)),
        anti_entropy_interval: std::time::Duration::from_millis(
            args.get_num("anti-entropy-ms", 2000u64)?,
        ),
        flight_recorder_entries: args.get_num("flight-recorder-entries", 4096usize)?,
        slow_ms: args.get_num("slow-ms", 250u64)?,
        log_json: args.get("log-json").map(str::to_owned),
        ..noc_svc::ServiceConfig::default()
    };
    let server = noc_svc::Server::start(config).map_err(|e| e.to_string())?;
    // Announce readiness eagerly: wait() blocks until the process is
    // signalled, so this line must not wait for run() to return.
    println!("noc-svc listening on http://{}", server.addr());
    server.wait();
    Ok(String::new())
}

fn simulate(args: &Args) -> Result<String, String> {
    let platform = parse_platform_faulted(args.require("platform")?, args.get("faults"))?;
    let graph = load_graph(args.require("graph")?)?;
    let schedule = load_schedule(args.require("schedule")?)?;
    let config = SimConfig::new(
        platform.link_bandwidth().round() as u64,
        args.get_num("buffers", 2u64)?,
    )
    .with_hop_latency(args.get_num("hop-latency", 0u64)?);
    let trace = ScheduleExecutor::new(&graph, &platform, config)
        .execute(&schedule)
        .map_err(|e| e.to_string())?;
    let worst = trace
        .slippage_vs(&schedule)
        .into_iter()
        .max()
        .unwrap_or(noc_platform::units::Time::ZERO);
    Ok(format!(
        "dynamic makespan {} (static {}), worst slip {} ticks, dynamic misses {}\n",
        trace.makespan,
        schedule.makespan(),
        worst,
        trace.deadline_misses.len()
    ))
}

fn dot(args: &Args) -> Result<String, String> {
    let graph = load_graph(args.require("graph")?)?;
    Ok(noc_ctg::dot::to_dot(&graph))
}

fn import(args: &Args) -> Result<String, String> {
    let platform = parse_platform(args.require("platform")?)?;
    let path = args.require("tgff")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file = noc_ctg::tgff_parse::TgffFile::parse(&text).map_err(|e| e.to_string())?;
    let graph = file.into_task_graph(&platform).map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    save_json(out, &graph)?;
    Ok(format!(
        "imported {path}: {} tasks, {} arcs -> {out}\n",
        graph.task_count(),
        graph.edge_count()
    ))
}

/// How many synthetic keys `cluster status` hashes onto the ring to
/// estimate each node's ownership share.
const RING_SAMPLE_KEYS: usize = 256;

/// `noceas cluster <status|trace|slow> --nodes a,b,c` — cluster-wide
/// introspection over the service's internal endpoints.
fn cluster_cmd(args: &Args) -> Result<String, String> {
    let verb = args
        .positionals
        .first()
        .map(String::as_str)
        .ok_or("cluster needs a verb: status, trace ID, or slow")?;
    let nodes: Vec<String> = args
        .require("nodes")?
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(str::to_owned)
        .collect();
    if nodes.is_empty() {
        return Err("--nodes lists no addresses".into());
    }
    match verb {
        "status" => {
            expect_extra_positionals(args, 1)?;
            cluster_status(&nodes)
        }
        "trace" => {
            let id = args
                .positionals
                .get(1)
                .ok_or("cluster trace needs the trace id (from an X-Noc-Trace header)")?;
            expect_extra_positionals(args, 2)?;
            cluster_trace(&nodes, id)
        }
        "slow" => {
            expect_extra_positionals(args, 1)?;
            cluster_slow(&nodes)
        }
        other => Err(format!(
            "unknown cluster verb `{other}` (expected status, trace or slow)"
        )),
    }
}

fn expect_extra_positionals(args: &Args, used: usize) -> Result<(), String> {
    match args.positionals.get(used) {
        Some(stray) => Err(format!("unexpected positional argument `{stray}`")),
        None => Ok(()),
    }
}

/// A short-timeout client for one node, or the connect error text.
fn node_client(node: &str) -> Result<noc_svc::client::Client, String> {
    use std::net::ToSocketAddrs;
    let addr = node
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{node}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{node}` resolves to no address"))?;
    Ok(noc_svc::client::Client::with_timeout(
        addr,
        std::time::Duration::from_secs(5),
    ))
}

fn cluster_status(nodes: &[String]) -> Result<String, String> {
    // Ownership share: hash a fixed synthetic key set onto the same
    // consistent-hash ring the service builds from this node list.
    let ring = noc_svc::cluster::Ring::new(nodes.to_vec());
    let mut owned: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for i in 0..RING_SAMPLE_KEYS {
        let hash = noc_svc::hash::content_hash(&format!("ring-sample-{i}"));
        *owned.entry(ring.owner(&hash)).or_default() += 1;
    }
    let mut out = format!("cluster status ({} nodes)\n\n", nodes.len());
    let mut unreachable = 0usize;
    for node in nodes {
        let share = owned.get(node.as_str()).copied().unwrap_or(0);
        out.push_str(&format!(
            "node {node} — ring share {share}/{RING_SAMPLE_KEYS} ({:.1}%)\n",
            share as f64 * 100.0 / RING_SAMPLE_KEYS as f64
        ));
        let body = node_client(node).and_then(|mut c| {
            c.get("/v1/internal/health")
                .map_err(|e| format!("GET /v1/internal/health failed: {e}"))
        });
        match body {
            Err(e) => {
                unreachable += 1;
                out.push_str(&format!("  UNREACHABLE: {e}\n"));
            }
            Ok(resp) if resp.status != 200 => {
                unreachable += 1;
                out.push_str(&format!("  health endpoint answered {}\n", resp.status));
            }
            Ok(resp) => match render_health_table(&resp.body) {
                Ok(table) => out.push_str(&table),
                Err(e) => out.push_str(&format!("  unparseable health body: {e}\n")),
            },
        }
    }
    out.push_str(&format!(
        "\n{}/{} nodes reachable\n",
        nodes.len() - unreachable,
        nodes.len()
    ));
    if unreachable == nodes.len() {
        return Err(format!("no node reachable:\n{out}"));
    }
    Ok(out)
}

/// The value as a non-negative integer, if it is a number.
fn value_u64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Number(n) => n.as_u64(),
        _ => None,
    }
}

/// Renders one node's `/v1/internal/health` body (parsed as a generic
/// JSON value — the `self` field name is a Rust keyword, so no derive).
fn render_health_table(body: &str) -> Result<String, String> {
    let value: serde_json::Value = serde_json::from_str(body).map_err(|e| e.to_string())?;
    let obj = value.as_object().ok_or("health body is not an object")?;
    let mut out = String::new();
    if let Some(me) = obj.get("self").and_then(serde_json::Value::as_str) {
        out.push_str(&format!("  ring identity: {me}\n"));
    }
    let peers = obj
        .get("peers")
        .and_then(serde_json::Value::as_array)
        .ok_or("health body has no peers array")?;
    if peers.is_empty() {
        out.push_str("  peers: none (single-node)\n");
    }
    for peer in peers {
        let peer = peer.as_object().ok_or("peer entry is not an object")?;
        let name = peer
            .get("peer")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?");
        let state = peer
            .get("state")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?");
        let fails = peer
            .get("consecutive_failures")
            .and_then(value_u64)
            .unwrap_or(0);
        let backlog = peer.get("retry_queue").and_then(value_u64).unwrap_or(0);
        out.push_str(&format!(
            "  peer {name}: {state} ({fails} consecutive failures, replication backlog {backlog})\n"
        ));
    }
    Ok(out)
}

fn cluster_trace(nodes: &[String], id: &str) -> Result<String, String> {
    let mut spans: Vec<noc_svc::obs::SpanWire> = Vec::new();
    let mut answered = 0usize;
    let mut errors: Vec<String> = Vec::new();
    for node in nodes {
        let resp = node_client(node).and_then(|mut c| {
            c.get(&format!("/v1/internal/trace/{id}"))
                .map_err(|e| format!("{node}: {e}"))
        });
        match resp {
            Err(e) => errors.push(e),
            Ok(resp) if resp.status == 404 => answered += 1, // no spans here
            Ok(resp) if resp.status != 200 => {
                errors.push(format!("{node}: trace endpoint answered {}", resp.status));
            }
            Ok(resp) => {
                answered += 1;
                let dump: noc_svc::obs::TraceDump = serde_json::from_str(&resp.body)
                    .map_err(|e| format!("{node}: unparseable trace body: {e}"))?;
                spans.extend(dump.spans);
            }
        }
    }
    if answered == 0 {
        return Err(format!(
            "no node answered for trace {id}: {}",
            errors.join("; ")
        ));
    }
    if spans.is_empty() {
        return Err(format!(
            "no spans recorded for trace {id} on any reachable node \
             (expired from the flight recorder, or the id is wrong)"
        ));
    }
    let contributing: std::collections::BTreeSet<&str> =
        spans.iter().map(|s| s.node.as_str()).collect();
    let mut out = format!(
        "trace {id} — {} spans across {} node{}\n\n",
        spans.len(),
        contributing.len(),
        if contributing.len() == 1 { "" } else { "s" }
    );
    let (tree, dangling) = render_span_tree(&spans);
    out.push_str(&tree);
    for e in &errors {
        out.push_str(&format!("\nwarning: {e}\n"));
    }
    if !dangling.is_empty() {
        return Err(format!(
            "{out}\ntrace {id} is disconnected: {} span(s) reference parents no node \
             recorded (in-flight hops, or ring-evicted spans)",
            dangling.len()
        ));
    }
    Ok(out)
}

/// Renders collected spans as an indented tree (children under their
/// parent, allocation order within a level). Returns the rendering and
/// the spans whose parent id no collected span carries.
fn render_span_tree(spans: &[noc_svc::obs::SpanWire]) -> (String, Vec<u64>) {
    use std::collections::{BTreeMap, HashSet};
    let known: HashSet<u64> = spans.iter().map(|s| s.span).collect();
    // parent span id -> children, ordered by span id (mint order).
    let mut children: BTreeMap<u64, Vec<&noc_svc::obs::SpanWire>> = BTreeMap::new();
    let mut roots: Vec<&noc_svc::obs::SpanWire> = Vec::new();
    let mut dangling: Vec<u64> = Vec::new();
    for span in spans {
        if span.parent_span == 0 {
            roots.push(span);
        } else if known.contains(&span.parent_span) {
            children.entry(span.parent_span).or_default().push(span);
        } else {
            dangling.push(span.span);
            roots.push(span); // still rendered, flagged below
        }
    }
    let mut out = String::new();
    let mut stack: Vec<(&noc_svc::obs::SpanWire, usize)> =
        roots.into_iter().rev().map(|s| (s, 0)).collect();
    while let Some((span, depth)) = stack.pop() {
        let missing_parent = span.parent_span != 0 && !known.contains(&span.parent_span);
        out.push_str(&format!(
            "{}{} {} [{}] {} µs{}\n",
            "  ".repeat(depth),
            span.node,
            span.stage,
            span.outcome,
            span.wall_us,
            if missing_parent {
                " (parent span missing)"
            } else {
                ""
            }
        ));
        if let Some(kids) = children.get(&span.span) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    (out, dangling)
}

fn cluster_slow(nodes: &[String]) -> Result<String, String> {
    let mut entries: Vec<noc_svc::obs::SlowWire> = Vec::new();
    let mut answered = 0usize;
    let mut errors: Vec<String> = Vec::new();
    for node in nodes {
        let resp = node_client(node).and_then(|mut c| {
            c.get("/v1/internal/slow")
                .map_err(|e| format!("{node}: {e}"))
        });
        match resp {
            Err(e) => errors.push(e),
            Ok(resp) if resp.status != 200 => {
                errors.push(format!("{node}: slow endpoint answered {}", resp.status));
            }
            Ok(resp) => {
                answered += 1;
                let dump: noc_svc::obs::SlowDump = serde_json::from_str(&resp.body)
                    .map_err(|e| format!("{node}: unparseable slow body: {e}"))?;
                entries.extend(dump.slow);
            }
        }
    }
    if answered == 0 {
        return Err(format!("no node reachable: {}", errors.join("; ")));
    }
    entries.sort_by_key(|e| std::cmp::Reverse(e.wall_us));
    let mut out = format!(
        "slow requests ({} entries from {answered} node{})\n\n",
        entries.len(),
        if answered == 1 { "" } else { "s" }
    );
    for e in &entries {
        out.push_str(&format!(
            "{} {} [{}] {} µs — trace {} ({} spans)\n",
            e.node,
            e.endpoint,
            e.outcome,
            e.wall_us,
            e.trace,
            e.spans.len()
        ));
    }
    for e in &errors {
        out.push_str(&format!("warning: {e}\n"));
    }
    Ok(out)
}

fn info(args: &Args) -> Result<String, String> {
    let graph = load_graph(args.require("graph")?)?;
    let bandwidth = args.get_num("bandwidth", 32.0f64)?;
    if bandwidth <= 0.0 {
        return Err("bandwidth must be positive".into());
    }
    let stats = noc_ctg::stats::GraphStats::compute(&graph, bandwidth);
    Ok(format!("{}\n{stats}\n", graph.name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| (*s).to_owned())).expect("parses")
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("noceas-cli-tests");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_schedule_validate_simulate_round_trip() {
        let graph_path = tmp("g.json");
        let sched_path = tmp("s.json");
        let out = run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "12",
            "--seed",
            "5",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        assert!(out.contains("12 tasks"));

        let out = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--out",
            &sched_path,
            "--gantt",
        ]))
        .expect("schedule");
        assert!(out.contains("eas:"));
        assert!(out.contains("PE0"));

        let out = run(&args(&[
            "validate",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
        ]))
        .expect("validate");
        assert!(out.contains("structurally valid"));

        let out = run(&args(&[
            "simulate",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
        ]))
        .expect("simulate");
        assert!(out.contains("dynamic makespan"));
    }

    #[test]
    fn benchmark_and_dot() {
        let graph_path = tmp("enc.json");
        let out = run(&args(&[
            "benchmark",
            "--app",
            "av-encoder",
            "--clip",
            "akiyo",
            "--out",
            &graph_path,
        ]))
        .expect("benchmark");
        assert!(out.contains("av-encoder"));
        let dot = run(&args(&["dot", "--graph", &graph_path])).expect("dot");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("motion_est"));
    }

    #[test]
    fn schedule_with_edf_and_csv() {
        let graph_path = tmp("g2.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "8",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        let out = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--scheduler",
            "edf",
            "--csv",
        ]))
        .expect("schedule");
        assert!(out.contains("edf:"));
        assert!(out.contains("task,name,pe,start,finish,deadline"));
    }

    #[test]
    fn faulted_schedule_round_trip() {
        let graph_path = tmp("gf.json");
        let sched_path = tmp("sf.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "3",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        let out = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--faults",
            "tile:3",
            "--out",
            &sched_path,
        ]))
        .expect("faulted schedule");
        assert!(out.contains("faults masked"));
        assert!(out.contains("1 tiles, 0 links dead"));
        // The produced schedule validates and simulates on the same
        // fault-masked platform.
        let out = run(&args(&[
            "validate",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--faults",
            "tile:3",
        ]))
        .expect("faulted validate");
        assert!(out.contains("structurally valid"));
        let out = run(&args(&[
            "simulate",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--faults",
            "tile:3",
        ]))
        .expect("faulted simulate");
        assert!(out.contains("dynamic makespan"));
        // Malformed fault specs surface a readable error.
        assert!(run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--faults",
            "tile:99",
        ]))
        .is_err());
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&args(&["explode"]))
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(run(&args(&["schedule"]))
            .unwrap_err()
            .contains("missing required option"));
        assert!(
            run(&args(&["generate", "--platform", "blob:1x1", "--out", "x"]))
                .unwrap_err()
                .contains("unknown topology")
        );
        let missing = run(&args(&[
            "schedule",
            "--graph",
            "/nonexistent.json",
            "--platform",
            "mesh:2x2",
        ]))
        .unwrap_err();
        assert!(missing.contains("cannot read"));
    }

    #[test]
    fn help_text_lists_every_subcommand() {
        let help = run(&args(&["help"])).expect("help");
        for cmd in [
            "generate",
            "benchmark",
            "schedule",
            "delta",
            "validate",
            "simulate",
            "explain",
            "serve",
            "cluster status",
            "cluster trace",
            "cluster slow",
            "dot",
            "info",
        ] {
            assert!(help.contains(cmd), "help must mention {cmd}");
        }
    }

    #[test]
    fn stray_positionals_still_fail_outside_cluster() {
        let err = run(&args(&["schedule", "stray"])).unwrap_err();
        assert!(err.contains("unexpected positional argument `stray`"));
    }

    #[test]
    fn cluster_verbs_validate_their_arguments() {
        assert!(run(&args(&["cluster"]))
            .unwrap_err()
            .contains("needs a verb"));
        assert!(run(&args(&["cluster", "status"]))
            .unwrap_err()
            .contains("--nodes"));
        assert!(run(&args(&["cluster", "reboot", "--nodes", "127.0.0.1:1"]))
            .unwrap_err()
            .contains("unknown cluster verb"));
        assert!(run(&args(&["cluster", "trace", "--nodes", "127.0.0.1:1"]))
            .unwrap_err()
            .contains("trace id"));
        assert!(run(&args(&[
            "cluster",
            "status",
            "extra",
            "--nodes",
            "127.0.0.1:1"
        ]))
        .unwrap_err()
        .contains("unexpected positional"));
        // An unreachable node set fails with the connection story, not
        // a panic (port 9 on loopback answers nothing).
        let err = run(&args(&["cluster", "slow", "--nodes", "127.0.0.1:9"])).unwrap_err();
        assert!(err.contains("no node reachable"), "got {err}");
    }

    #[test]
    fn cluster_span_tree_renders_and_flags_dangling_parents() {
        let span = |node: &str, span, parent, stage: &str, outcome: &str| noc_svc::obs::SpanWire {
            trace: "aa".repeat(16),
            node: node.to_owned(),
            span,
            parent_span: parent,
            stage: stage.to_owned(),
            wall_us: 10,
            outcome: outcome.to_owned(),
        };
        let spans = vec![
            span("n1", 1, 0, "/v1/schedule", "peer"),
            span("n1", 2, 1, "peer_fill", "hit"),
            span("n2", 3, 2, "/v1/internal/lookup", "ok"),
        ];
        let (tree, dangling) = render_span_tree(&spans);
        assert!(dangling.is_empty());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("n1 /v1/schedule"));
        assert!(lines[1].starts_with("  n1 peer_fill"));
        assert!(lines[2].starts_with("    n2 /v1/internal/lookup"));

        let broken = vec![
            span("n1", 1, 0, "/v1/schedule", "miss"),
            span("n2", 5, 99, "/v1/internal/record", "ok"),
        ];
        let (tree, dangling) = render_span_tree(&broken);
        assert_eq!(dangling, vec![5]);
        assert!(tree.contains("(parent span missing)"));
    }

    #[test]
    fn schedule_and_validate_json_emit_the_service_body() {
        let graph_path = tmp("gj.json");
        let sched_path = tmp("sj.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "2",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        let out = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--json",
            "--out",
            &sched_path,
        ]))
        .expect("schedule");
        let resp: noc_svc::api::ScheduleResponse =
            serde_json::from_str(out.trim()).expect("parses as the service body");
        assert_eq!(resp.scheduler, "eas");
        assert_eq!(
            format!("{}\n", resp.to_json()),
            out,
            "CLI --json is the service serialization, byte for byte"
        );

        let out = run(&args(&[
            "validate",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--json",
        ]))
        .expect("validate");
        let resp: noc_svc::api::ValidateResponse =
            serde_json::from_str(out.trim()).expect("parses as the service body");
        assert!(resp.valid);
        // A schedule checked against the wrong graph is a *successful*
        // validation with valid:false under --json.
        let other_graph = tmp("gj2.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "8",
            "--seed",
            "9",
            "--out",
            &other_graph,
        ]))
        .expect("generate");
        let out = run(&args(&[
            "validate",
            "--graph",
            &other_graph,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--json",
        ]))
        .expect("validate --json never errors structurally");
        let resp: noc_svc::api::ValidateResponse =
            serde_json::from_str(out.trim()).expect("parses");
        assert!(!resp.valid);
        assert!(resp.error.is_some());
    }

    #[test]
    fn delta_repairs_and_emits_the_service_body() {
        let graph_path = tmp("dg.json");
        let sched_path = tmp("ds.json");
        let edits_path = tmp("de.json");
        let repaired_path = tmp("dr.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "4",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--json",
            "--out",
            &sched_path,
        ]))
        .expect("schedule");
        fs::write(&edits_path, r#"[{"SetDeadline":{"task":0}}]"#).expect("write edits");

        let out = run(&args(&[
            "delta",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--edits",
            &edits_path,
            "--json",
            "--out",
            &repaired_path,
        ]))
        .expect("delta");
        let resp: noc_svc::api::DeltaResponse =
            serde_json::from_str(out.trim()).expect("parses as the delta body");
        assert!(resp.warm_start, "a deadline tweak must warm start");
        assert_eq!(resp.reason, "warm-start");
        assert_eq!(resp.edits, 1);
        assert_eq!(resp.result.scheduler, "eas");

        let human = run(&args(&[
            "delta",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--edits",
            &edits_path,
            "--explain",
        ]))
        .expect("delta human output");
        assert!(human.contains("warm start"));
        assert!(human.contains("delta:"), "--explain narrates the decision");

        // --json refuses --explain instead of silently dropping it.
        assert!(run(&args(&[
            "delta",
            "--graph",
            &graph_path,
            "--schedule",
            &sched_path,
            "--platform",
            "mesh:2x2",
            "--edits",
            &edits_path,
            "--json",
            "--explain",
        ]))
        .is_err());
    }

    #[test]
    fn schedule_json_keeps_artifacts_and_rejects_summary_flags() {
        let graph_path = tmp("gjf.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "8",
            "--seed",
            "3",
            "--out",
            &graph_path,
        ]))
        .expect("generate");

        // --vcd is a file artifact, not summary output: it must still be
        // written when --json replaces the summary.
        let vcd_path = tmp("gjf.vcd");
        let _ = fs::remove_file(&vcd_path);
        run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--json",
            "--vcd",
            &vcd_path,
        ]))
        .expect("schedule --json --vcd");
        let vcd = fs::read_to_string(&vcd_path).expect("vcd artifact written under --json");
        assert!(vcd.contains("$timescale"));

        // Summary renderers cannot combine with --json: error, never a
        // silent drop.
        for flag in ["--gantt", "--links", "--csv"] {
            let err = run(&args(&[
                "schedule",
                "--graph",
                &graph_path,
                "--platform",
                "mesh:2x2",
                "--json",
                flag,
            ]))
            .expect_err("summary flag with --json must be rejected");
            assert!(
                err.contains(flag),
                "error must name the offending flag: {err}"
            );
        }
    }

    #[test]
    fn schedule_budget_exhaustion_is_a_clean_typed_error() {
        let graph_path = tmp("gb.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "4",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        // A zero budget interrupts EAS at its first checkpoint.
        let err = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--budget-ms",
            "0",
        ]))
        .expect_err("zero budget must interrupt");
        assert!(err.contains("budget"), "typed budget error, got `{err}`");
        // A generous budget changes nothing: same summary as no budget.
        let bounded = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--budget-ms",
            "600000",
        ]))
        .expect("schedules within budget");
        let unbounded = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
        ]))
        .expect("schedules");
        assert_eq!(bounded, unbounded, "budgets never change the result");
        // Garbage budgets are rejected up front.
        assert!(run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--budget-ms",
            "soon",
        ]))
        .is_err());
    }

    #[test]
    fn schedule_trace_writes_chrome_and_jsonl_without_changing_the_schedule() {
        let graph_path = tmp("gt.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "7",
            "--out",
            &graph_path,
        ]))
        .expect("generate");

        // Chrome (default format): parses, contains the stage spans.
        let chrome_path = tmp("gt-trace.json");
        let sched_traced = tmp("gt-s1.json");
        let out = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--out",
            &sched_traced,
            "--trace",
            &chrome_path,
        ]))
        .expect("traced schedule");
        assert!(out.contains(&format!("wrote {chrome_path} (chrome)")));
        let text = fs::read_to_string(&chrome_path).unwrap();
        let _chrome: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        for span in ["budgeting", "level:0", "comm", "repair", "validate"] {
            assert!(text.contains(&format!("\"{span}\"")), "missing span {span}");
        }

        // Tracing never changes the schedule artifact.
        let sched_plain = tmp("gt-s2.json");
        run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--out",
            &sched_plain,
        ]))
        .expect("plain schedule");
        assert_eq!(
            fs::read_to_string(&sched_traced).unwrap(),
            fs::read_to_string(&sched_plain).unwrap(),
            "traced and untraced schedules must be byte-identical"
        );

        // JSONL: one valid object per line, no wall-clock stamps.
        let jsonl_path = tmp("gt-trace.jsonl");
        run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--trace",
            &jsonl_path,
            "--trace-format",
            "jsonl",
        ]))
        .expect("jsonl trace");
        let jsonl = fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.lines().count() > 10);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
            let obj = v.as_object().expect("object");
            assert!(obj.get("wall_us").is_none(), "jsonl is logical-time only");
        }

        // Bad combinations are rejected up front.
        assert!(run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--trace",
            &jsonl_path,
            "--trace-format",
            "xml",
        ]))
        .unwrap_err()
        .contains("trace-format"));
        assert!(run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--trace-format",
            "jsonl",
        ]))
        .unwrap_err()
        .contains("--trace"));
    }

    #[test]
    fn explain_narrates_decisions_and_filters_by_task() {
        let graph_path = tmp("ge.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--seed",
            "6",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        let out = run(&args(&[
            "explain",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
        ]))
        .expect("explain");
        assert!(out.contains("schedule narrative:"));
        assert!(out.contains("place: t0"));
        assert!(out.contains("result: eas:"));

        let focused = run(&args(&[
            "explain",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--task",
            "3",
        ]))
        .expect("explain --task");
        assert!(focused.contains("place: t3"));
        assert!(!focused.contains("place: t0"));

        assert!(run(&args(&[
            "explain",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
            "--task",
            "99",
        ]))
        .unwrap_err()
        .contains("out of range"));
    }

    #[test]
    fn info_reports_graph_statistics() {
        let graph_path = tmp("info.json");
        run(&args(&[
            "generate",
            "--platform",
            "mesh:2x2",
            "--tasks",
            "10",
            "--out",
            &graph_path,
        ]))
        .expect("generate");
        let out = run(&args(&["info", "--graph", &graph_path])).expect("info");
        assert!(out.contains("CCR"));
        assert!(out.contains("tasks"));
        assert!(run(&args(&[
            "info",
            "--graph",
            &graph_path,
            "--bandwidth",
            "-3"
        ]))
        .is_err());
    }

    #[test]
    fn import_tgff_round_trip() {
        let tgff_path = tmp("w.tgff");
        fs::write(
            &tgff_path,
            "@TASK_GRAPH 0 {\nTASK a TYPE 0\nTASK b TYPE 0\nARC x FROM a TO b TYPE 0\n}\n\
             @COMMUN_QUANT 0 {\n0 512\n}\n@PE 0 {\n0 100 1.0\n}\n",
        )
        .expect("write tgff");
        let graph_path = tmp("imported.json");
        let out = run(&args(&[
            "import",
            "--tgff",
            &tgff_path,
            "--platform",
            "mesh:2x2",
            "--out",
            &graph_path,
        ]))
        .expect("import");
        assert!(out.contains("2 tasks"));
        let sched = run(&args(&[
            "schedule",
            "--graph",
            &graph_path,
            "--platform",
            "mesh:2x2",
        ]))
        .expect("schedule imported");
        assert!(sched.contains("eas:"));
    }

    #[test]
    fn extension_app_benchmarks_emit() {
        let graph_path = tmp("ofdm.json");
        let out = run(&args(&[
            "benchmark",
            "--app",
            "ofdm-transceiver",
            "--load",
            "heavy",
            "--out",
            &graph_path,
        ]))
        .expect("benchmark");
        assert!(out.contains("ofdm-transceiver"));
        let info = run(&args(&["info", "--graph", &graph_path])).expect("info");
        assert!(info.contains("tasks            22"));
    }
}
