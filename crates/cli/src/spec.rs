//! Platform / scheduler / fault spec parsing. The parsers moved to
//! [`noc_svc::spec`] so the HTTP service and the CLI are guaranteed to
//! resolve identical specs identically; this module re-exports them to
//! keep the CLI's internal imports stable.

pub use noc_svc::spec::*;
