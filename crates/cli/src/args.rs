//! A small dependency-free argument parser: `--key value` options,
//! `--flag` booleans, and free-standing positionals (verbs like
//! `cluster status`) after a subcommand.

use std::collections::HashMap;

/// Parsed command line: the subcommand and its options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first free-standing argument).
    pub command: String,
    /// Free-standing arguments after the subcommand, in order.
    /// Subcommands that take none reject leftovers at dispatch.
    pub positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Rejects missing subcommands and options without values.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut iter = argv.into_iter().peekable();
        let command = iter.next().ok_or("missing subcommand; try `noceas help`")?;
        if command.starts_with('-') {
            return Err(format!("expected a subcommand before `{command}`"));
        }
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                args.positionals.push(token);
                continue;
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.options.insert(key.to_owned(), value);
                }
                _ => args.flags.push(key.to_owned()),
            }
        }
        Ok(args)
    }

    /// The value of `--key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key` or a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// The value of `--key`, or an error naming the option.
    ///
    /// # Errors
    ///
    /// When the option is absent.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// When present but unparsable.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key} has invalid value `{v}`")),
        }
    }

    /// `true` if `--key` appeared without a value.
    #[must_use]
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["schedule", "--graph", "g.json", "--gantt", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "schedule");
        assert_eq!(a.get("graph"), Some("g.json"));
        assert_eq!(a.get_num::<u64>("seed", 0).unwrap(), 7);
        assert!(a.has_flag("gantt"));
        assert!(!a.has_flag("csv"));
    }

    #[test]
    fn missing_subcommand_is_rejected() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--graph", "x"]).is_err());
    }

    #[test]
    fn positional_arguments_are_collected_in_order() {
        let a = parse(&["cluster", "trace", "00c0ffee", "--nodes", "a,b"]).unwrap();
        assert_eq!(a.positionals, vec!["trace", "00c0ffee"]);
        assert_eq!(a.get("nodes"), Some("a,b"));
        // Commands that take no positionals reject them at dispatch,
        // not here; the parser just carries them through.
        let b = parse(&["schedule", "stray"]).unwrap();
        assert_eq!(b.positionals, vec!["stray"]);
    }

    #[test]
    fn require_and_defaults() {
        let a = parse(&["run", "--x", "1"]).unwrap();
        assert_eq!(a.require("x").unwrap(), "1");
        assert!(a.require("y").is_err());
        assert_eq!(a.get_or("z", "fallback"), "fallback");
        assert!(a.get_num::<u32>("x", 9).unwrap() == 1);
        let bad = parse(&["run", "--x", "NaNsense"]).unwrap();
        assert!(bad.get_num::<u32>("x", 0).is_err());
    }

    #[test]
    fn trailing_flag_parses() {
        let a = parse(&["validate", "--strict"]).unwrap();
        assert!(a.has_flag("strict"));
    }
}
