//! `noceas` — command-line front end for the DATE'04 energy-aware NoC
//! scheduler. Run `noceas help` for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
