//! Deterministic parallel execution primitives.
//!
//! Everything in this crate preserves a hard invariant: **results are
//! identical to a serial left-to-right evaluation**, independent of the
//! thread count. Parallelism only changes *when* each job runs, never
//! which jobs run or how their results are ordered:
//!
//! * [`par_map`] — an ordered fan-out over a slice. Items are split into
//!   contiguous chunks (one per worker) and the per-chunk results are
//!   concatenated in chunk order, so the output `Vec` is index-aligned
//!   with the input regardless of scheduling.
//! * [`RoundPool`] — persistent workers for *iterated* fan-outs (one
//!   round per scheduling pass). Spawning threads once and reusing them
//!   across hundreds of rounds keeps the per-round overhead to a single
//!   mutex round-trip per worker instead of a thread spawn.
//!
//! Jobs must be pure with respect to the shared round context: workers
//! receive `&Ctx` and may only mutate their own per-chunk scratch state.
//!
//! # Panic isolation
//!
//! A panicking job must never take down the caller's process or hang a
//! pool. Worker closures run under [`std::panic::catch_unwind`]:
//! [`try_par_map`] reports the first panicking chunk (in chunk order, so
//! the error is deterministic) as a typed [`WorkerPanic`], and
//! [`RoundPool::try_run_round`] does the same per round — the panicking
//! worker still reports its round as finished, keeping the pool's
//! bookkeeping intact, and stays alive for subsequent rounds.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{Scope, ScopedJoinHandle};

/// A worker closure panicked during a parallel evaluation.
///
/// Carries a best-effort rendering of the panic payload (`&str` and
/// `String` payloads verbatim; anything else is labelled opaque). When
/// several workers panic in one evaluation, the first chunk in input
/// order wins, so the reported error is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Human-readable panic payload.
    pub message: String,
}

impl WorkerPanic {
    /// Renders a `catch_unwind` payload into a typed panic error — also
    /// used by downstream crates (the service engine) that isolate
    /// panics with their own `catch_unwind`.
    #[must_use]
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_owned()
        };
        WorkerPanic { message }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Number of hardware threads available to this process (at least 1).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a user-facing thread-count knob: `0` means "use all
/// available hardware threads", anything else is taken literally.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `len` items into `parts` contiguous chunks; returns the bounds
/// of chunk `index`. Chunks tile `0..len` in ascending order, so
/// concatenating per-chunk results in index order reproduces the input
/// order.
#[must_use]
pub fn chunk_bounds(len: usize, parts: usize, index: usize) -> (usize, usize) {
    debug_assert!(parts >= 1 && index < parts);
    (index * len / parts, (index + 1) * len / parts)
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. With `threads <= 1` (or fewer than two items)
/// this is a plain serial map with zero thread overhead; the output is
/// byte-identical either way. `f` receives the item index alongside the
/// item so callers can derive per-item seeds or labels.
///
/// # Panics
///
/// If `f` panics: the panic is re-raised on the calling thread with the
/// original payload message (see [`try_par_map`] for the non-panicking
/// variant).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map(threads, items, f) {
        Ok(out) => out,
        Err(p) => panic!("par_map worker panicked: {}", p.message),
    }
}

/// [`par_map`] with typed panic handling: a panic in `f` fails *this
/// map call only* with a [`WorkerPanic`] instead of unwinding through
/// (or crashing) the caller. All scoped workers are joined before
/// returning, so no detached thread outlives the call; results computed
/// by non-panicking chunks are discarded.
///
/// `f` is run under [`AssertUnwindSafe`]: on `Err` every result is
/// dropped, so no partially-built output is ever observable, but
/// caller-supplied interior mutability updated by `f` before the panic
/// is the caller's responsibility (the workspace's schedulers only hand
/// out per-chunk scratch state, which dies with the call).
///
/// # Errors
///
/// The [`WorkerPanic`] of the first panicking chunk in input order.
pub fn try_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
        }))
        .map_err(WorkerPanic::from_payload);
    }
    let chunks: Vec<Result<Vec<R>, WorkerPanic>> = std::thread::scope(|scope| {
        let handles: Vec<ScopedJoinHandle<'_, Result<Vec<R>, WorkerPanic>>> = (0..workers)
            .map(|w| {
                let f = &f;
                let (lo, hi) = chunk_bounds(items.len(), workers, w);
                let slice = &items[lo..hi];
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        slice
                            .iter()
                            .enumerate()
                            .map(|(i, t)| f(lo + i, t))
                            .collect()
                    }))
                    .map_err(WorkerPanic::from_payload)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("panics are caught inside the worker"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.append(&mut chunk?);
    }
    Ok(out)
}

struct Inner<Ctx, Job, Out> {
    /// Monotone round counter; workers run one evaluation per tick.
    round: u64,
    shutdown: bool,
    /// Context and jobs of the active round, shared read-only.
    work: Option<(Arc<Ctx>, Arc<Vec<Job>>)>,
    /// Per-worker chunk results of the active round (`Err` = the worker
    /// panicked this round; it stays alive for the next one).
    results: Vec<Option<Result<Vec<Out>, WorkerPanic>>>,
    /// Workers that have not finished the active round yet.
    remaining: usize,
}

struct Shared<Ctx, Job, Out> {
    inner: Mutex<Inner<Ctx, Job, Out>>,
    start: Condvar,
    done: Condvar,
}

/// A pool of persistent scoped workers evaluating one batch of jobs per
/// [`run_round`](RoundPool::run_round) call.
///
/// Each round, worker `w` evaluates the `w`-th contiguous chunk of the
/// job list against the shared round context; the per-chunk result
/// vectors are concatenated in worker order, so `run_round` returns
/// results index-aligned with its `jobs` argument — exactly what a
/// serial `jobs.iter().map(...)` would produce.
///
/// The pool must live inside a [`std::thread::scope`]; dropping it (or
/// leaving the scope) shuts the workers down.
pub struct RoundPool<'scope, Ctx, Job, Out> {
    shared: Arc<Shared<Ctx, Job, Out>>,
    threads: usize,
    _handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope, Ctx, Job, Out> RoundPool<'scope, Ctx, Job, Out>
where
    Ctx: Send + Sync + 'scope,
    Job: Send + Sync + 'scope,
    Out: Send + 'scope,
{
    /// Spawns `threads` workers on `scope`. Each round, every worker
    /// calls `eval(&ctx, chunk)` once with its contiguous job chunk and
    /// must return one result per job, in chunk order.
    pub fn new<'env, E>(scope: &'scope Scope<'scope, 'env>, threads: usize, eval: E) -> Self
    where
        E: Fn(&Ctx, &[Job]) -> Vec<Out> + Send + Sync + 'scope,
    {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                round: 0,
                shutdown: false,
                work: None,
                results: (0..threads).map(|_| None).collect(),
                remaining: 0,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let eval = Arc::new(eval);
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let eval = Arc::clone(&eval);
                scope.spawn(move || worker_loop(w, threads, &shared, eval.as_ref()))
            })
            .collect();
        RoundPool {
            shared,
            threads,
            _handles: handles,
        }
    }

    /// Evaluates `jobs` against `ctx` across all workers and returns the
    /// results in job order. Blocks until the round completes; on return
    /// no worker holds a reference to `ctx` or `jobs` any more.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on the calling thread (the pool itself
    /// stays usable); see [`try_run_round`](RoundPool::try_run_round).
    pub fn run_round(&self, ctx: Ctx, jobs: Vec<Job>) -> Vec<Out> {
        match self.try_run_round(ctx, jobs) {
            Ok(out) => out,
            Err(p) => panic!("round pool worker panicked: {}", p.message),
        }
    }

    /// [`run_round`](RoundPool::run_round) with typed panic handling: a
    /// panicking `eval` fails this round with a [`WorkerPanic`] (first
    /// panicking worker in chunk order) instead of hanging or unwinding.
    /// The panicking worker reports its round as complete and keeps
    /// serving subsequent rounds — no respawn needed.
    ///
    /// # Errors
    ///
    /// The [`WorkerPanic`] of the first panicking chunk.
    pub fn try_run_round(&self, ctx: Ctx, jobs: Vec<Job>) -> Result<Vec<Out>, WorkerPanic> {
        let expected = jobs.len();
        let mut inner = self.shared.inner.lock().expect("pool lock");
        inner.work = Some((Arc::new(ctx), Arc::new(jobs)));
        inner.round += 1;
        inner.remaining = self.threads;
        for slot in &mut inner.results {
            *slot = None;
        }
        self.shared.start.notify_all();
        while inner.remaining > 0 {
            inner = self.shared.done.wait(inner).expect("pool lock");
        }
        inner.work = None; // last references: ctx and jobs die here
        let mut out = Vec::with_capacity(expected);
        for slot in &mut inner.results {
            out.append(&mut slot.take().expect("worker reported its chunk")?);
        }
        debug_assert_eq!(out.len(), expected, "eval must return one result per job");
        Ok(out)
    }

    /// Number of workers in the pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<Ctx, Job, Out> Drop for RoundPool<'_, Ctx, Job, Out> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("pool lock");
        inner.shutdown = true;
        self.shared.start.notify_all();
    }
}

fn worker_loop<Ctx, Job, Out, E>(
    worker: usize,
    threads: usize,
    shared: &Shared<Ctx, Job, Out>,
    eval: &E,
) where
    E: Fn(&Ctx, &[Job]) -> Vec<Out>,
{
    let mut seen_round = 0u64;
    loop {
        let (ctx, jobs) = {
            let mut inner = shared.inner.lock().expect("pool lock");
            loop {
                if inner.shutdown {
                    return;
                }
                if inner.round > seen_round {
                    break;
                }
                inner = shared.start.wait(inner).expect("pool lock");
            }
            seen_round = inner.round;
            let (ctx, jobs) = inner.work.as_ref().expect("active round has work");
            (Arc::clone(ctx), Arc::clone(jobs))
        };
        let (lo, hi) = chunk_bounds(jobs.len(), threads, worker);
        // A panicking eval must still decrement `remaining` below, or
        // run_round would wait forever; catch it and report it typed.
        let out = catch_unwind(AssertUnwindSafe(|| eval(&ctx, &jobs[lo..hi])))
            .map_err(WorkerPanic::from_payload);
        // Drop the shared references *before* reporting completion so
        // `run_round` can hand the context back to the caller by value.
        drop(jobs);
        drop(ctx);
        let mut inner = shared.inner.lock().expect("pool lock");
        inner.results[worker] = Some(out);
        inner.remaining -= 1;
        if inner.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_bounds_tile_the_range() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in 1..=8 {
                let mut covered = 0;
                for i in 0..parts {
                    let (lo, hi) = chunk_bounds(len, parts, i);
                    assert_eq!(lo, covered, "len={len} parts={parts} i={i}");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn par_map_matches_serial_map_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0usize, 1, 2, 3, 4, 7, 128] {
            let parallel = par_map(threads.max(1), &items, |_, &x| x * x + 1);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_global_indices() {
        let items = vec!["a"; 37];
        let indices = par_map(4, &items, |i, _| i);
        assert_eq!(indices, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn round_pool_orders_results_across_rounds() {
        std::thread::scope(|scope| {
            let pool: RoundPool<'_, u64, u64, u64> =
                RoundPool::new(scope, 3, |offset: &u64, jobs: &[u64]| {
                    jobs.iter().map(|j| j * 10 + offset).collect()
                });
            for round in 0..50u64 {
                let jobs: Vec<u64> = (0..13).collect();
                let expect: Vec<u64> = jobs.iter().map(|j| j * 10 + round).collect();
                assert_eq!(pool.run_round(round, jobs), expect);
            }
        });
    }

    #[test]
    fn round_pool_runs_every_job_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let pool = RoundPool::new(scope, 4, |(): &(), jobs: &[u32]| {
                CALLS.fetch_add(jobs.len(), Ordering::SeqCst);
                jobs.to_vec()
            });
            let jobs: Vec<u32> = (0..101).collect();
            let out = pool.run_round((), jobs.clone());
            assert_eq!(out, jobs);
        });
        assert_eq!(CALLS.load(Ordering::SeqCst), 101);
    }

    #[test]
    fn round_pool_tolerates_empty_rounds() {
        std::thread::scope(|scope| {
            let pool = RoundPool::new(scope, 2, |(): &(), jobs: &[u8]| jobs.to_vec());
            assert!(pool.run_round((), Vec::new()).is_empty());
            assert_eq!(pool.run_round((), vec![1, 2, 3]), vec![1, 2, 3]);
        });
    }

    #[test]
    fn round_pool_context_is_returned_exclusively() {
        // The context must have no outstanding references after
        // run_round: an Arc handed in by value would be unwrappable.
        std::thread::scope(|scope| {
            let pool = RoundPool::new(scope, 2, |ctx: &Arc<Vec<u32>>, jobs: &[usize]| {
                jobs.iter().map(|&j| ctx[j]).collect::<Vec<u32>>()
            });
            let ctx = Arc::new(vec![5u32, 6, 7]);
            let out = pool.run_round(Arc::clone(&ctx), vec![2, 0, 1]);
            assert_eq!(out, vec![7, 5, 6]);
            assert_eq!(Arc::strong_count(&ctx), 1, "workers must release the ctx");
        });
    }

    #[test]
    fn effective_threads_resolves_zero_to_hardware() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(0), available_threads());
    }

    /// One panicking item fails only that map call — the next call on
    /// the same inputs (minus the poison) succeeds, and the error names
    /// the panic payload.
    #[test]
    fn try_par_map_isolates_a_panicking_item() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1usize, 2, 4, 7] {
            let err = try_par_map(threads, &items, |_, &x| {
                assert!(x != 17, "poison item");
                x * 2
            })
            .expect_err("item 17 panics");
            assert!(err.message.contains("poison item"), "got: {}", err.message);
            assert!(err.to_string().contains("worker panicked"));
            // The same closure without the poison works immediately after.
            let ok = try_par_map(threads, &items, |_, &x| x * 2).expect("no panic");
            assert_eq!(ok, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    /// When several chunks panic, the first chunk in input order wins,
    /// so the reported error is deterministic for every thread count.
    #[test]
    fn try_par_map_reports_the_first_panicking_chunk() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [2usize, 4, 8] {
            let err = try_par_map(threads, &items, |_, &x| -> u32 {
                panic!("boom at {x}");
            })
            .expect_err("everything panics");
            assert_eq!(err.message, "boom at 0", "threads={threads}");
        }
    }

    #[test]
    fn par_map_propagates_the_panic_message() {
        let caught = std::panic::catch_unwind(|| {
            par_map(2, &[1u32, 2, 3], |_, &x| {
                assert!(x != 2, "unlucky");
                x
            })
        })
        .expect_err("must panic");
        let msg = caught.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("unlucky"), "got: {msg}");
    }

    /// A worker panic fails the round but neither hangs `run_round` nor
    /// kills the pool: the same workers serve the next round.
    #[test]
    fn round_pool_survives_a_panicking_round() {
        std::thread::scope(|scope| {
            let pool = RoundPool::new(scope, 3, |poison: &bool, jobs: &[u32]| {
                assert!(!poison, "poisoned round");
                jobs.to_vec()
            });
            let jobs: Vec<u32> = (0..23).collect();
            let err = pool
                .try_run_round(true, jobs.clone())
                .expect_err("poisoned round fails");
            assert!(err.message.contains("poisoned round"));
            // The pool is intact: clean rounds still work afterwards.
            for _ in 0..3 {
                assert_eq!(pool.try_run_round(false, jobs.clone()), Ok(jobs.clone()));
            }
        });
    }
}
