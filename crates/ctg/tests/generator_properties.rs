//! Property-based tests of the CTG substrate: generated graphs are
//! always well-formed, analyses agree with brute-force recomputation,
//! and pipeline unrolling preserves structure.

use proptest::prelude::*;

use noc_ctg::analysis::{critical_path_length, effective_deadlines, GraphAnalysis};
use noc_ctg::pipeline::{unroll, InterFrameEdge};
use noc_ctg::prelude::*;
use noc_platform::prelude::*;
use noc_platform::units::Volume;

fn platform() -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(4, 4))
        .build()
        .expect("mesh builds")
}

fn small_config() -> impl Strategy<Value = TgffConfig> {
    (0u64..500, 5usize..60, 1.1f64..3.5, 0.0f64..0.4).prop_map(
        |(seed, task_count, laxity, ctrl)| {
            let mut cfg = TgffConfig::small(seed);
            cfg.task_count = task_count;
            cfg.deadline_laxity = laxity;
            cfg.control_edge_prob = ctrl;
            cfg.width = (task_count / 5).max(2);
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated graphs are DAGs with consistent adjacency and in-range
    /// cost vectors.
    #[test]
    fn generated_graphs_are_well_formed(cfg in small_config()) {
        let p = platform();
        let g = TgffGenerator::new(cfg.clone()).generate(&p).expect("generates");
        prop_assert_eq!(g.task_count(), cfg.task_count);
        prop_assert_eq!(g.pe_count(), p.tile_count());
        // Topological order covers everything exactly once.
        let mut seen = vec![false; g.task_count()];
        for &t in g.topological_order() {
            prop_assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
        // Adjacency agrees with the edge list.
        for e in g.edge_ids() {
            let edge = *g.edge(e);
            prop_assert!(g.outgoing(edge.src).contains(&e));
            prop_assert!(g.incoming(edge.dst).contains(&e));
        }
        // Volumes within the configured range (control edges aside).
        for e in g.edges() {
            if !e.volume.is_zero() {
                prop_assert!((cfg.volume_range.0..=cfg.volume_range.1)
                    .contains(&e.volume.bits()));
            }
        }
    }

    /// mean_finish is the true longest path (brute-force check on the
    /// DP via a second, edge-relaxing pass).
    #[test]
    fn mean_finish_matches_relaxation(cfg in small_config()) {
        let p = platform();
        let g = TgffGenerator::new(cfg).generate(&p).expect("generates");
        let analysis = GraphAnalysis::new(&g);
        let mut finish = vec![0.0f64; g.task_count()];
        for &t in g.topological_order() {
            let mut start = 0.0f64;
            for pr in g.predecessors(t) {
                start = start.max(finish[pr.index()]);
            }
            finish[t.index()] = start + g.task(t).mean_exec_time();
        }
        for t in g.task_ids() {
            prop_assert!((analysis.mean_finish(t) - finish[t.index()]).abs() < 1e-9);
        }
        let cp = critical_path_length(&g);
        let max = finish.iter().cloned().fold(0.0, f64::max);
        prop_assert!((cp - max).abs() < 1e-9);
    }

    /// Effective deadlines are monotone along edges and never exceed the
    /// explicit deadline.
    #[test]
    fn effective_deadlines_are_consistent(cfg in small_config()) {
        let p = platform();
        let g = TgffGenerator::new(cfg).generate(&p).expect("generates");
        let eff = effective_deadlines(&g);
        for t in g.task_ids() {
            if let Some(d) = g.task(t).deadline() {
                prop_assert!(eff[t.index()] <= d);
            }
            for s in g.successors(t) {
                if !eff[s.index()].is_infinite() {
                    prop_assert!(eff[t.index()] < eff[s.index()]);
                }
            }
        }
    }

    /// Unrolling multiplies tasks/edges as specified and keeps the DAG
    /// property with any single inter-frame template edge.
    #[test]
    fn unrolling_preserves_structure(cfg in small_config(), frames in 1usize..4) {
        let p = platform();
        let g = TgffGenerator::new(cfg).generate(&p).expect("generates");
        // Use sink -> source as the cross-frame edge (always legal:
        // next frame starts after previous frame's sink).
        let src = g.sources().next().expect("has source");
        let sink = g.sinks().next().expect("has sink");
        let tmpl = InterFrameEdge::new(sink, src, Volume::from_bits(64));
        let u = unroll(&g, frames, Time::new(10_000), &[tmpl]).expect("unrolls");
        prop_assert_eq!(u.task_count(), g.task_count() * frames);
        prop_assert_eq!(
            u.edge_count(),
            g.edge_count() * frames + (frames - 1)
        );
        prop_assert_eq!(u.topological_order().len(), u.task_count());
    }
}
