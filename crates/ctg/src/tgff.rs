//! A TGFF-style random task-graph generator.
//!
//! The paper evaluates on "random benchmarks generated using TGFF \[8\]",
//! with around 500 tasks and 1000 communication transactions per graph
//! (Sec. 6.1). The TGFF tool itself is external C++ software, so this
//! module provides an equivalent seeded generator exposing the same
//! knobs: task count, fan-in/out bounds, parallelism width, execution
//! time and communication volume ranges, and deadline laxity. Two presets
//! mirror the paper's **category I** (looser deadlines) and **category
//! II** (tighter deadlines) benchmark families.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use noc_platform::units::{Time, Volume};
use noc_platform::Platform;

use crate::analysis::GraphAnalysis;
use crate::costs::CostSynthesizer;
use crate::graph::TaskGraph;
use crate::task::{Task, TaskId};
use crate::CtgError;

/// Parameters of the random generator.
///
/// ```
/// use noc_ctg::tgff::TgffConfig;
/// let cfg = TgffConfig::category_i(0);
/// assert_eq!(cfg.task_count, 500);
/// assert!(cfg.deadline_laxity > TgffConfig::category_ii(0).deadline_laxity);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TgffConfig {
    /// RNG seed; equal seeds produce equal graphs for equal platforms.
    pub seed: u64,
    /// Number of tasks to generate.
    pub task_count: usize,
    /// Approximate ratio of arcs to tasks (the paper's graphs have ~2x).
    pub edge_factor: f64,
    /// Maximum fan-in per task.
    pub max_in_degree: usize,
    /// Parallelism width: new tasks pick parents among roughly the last
    /// `2 * width` created tasks, so larger widths give broader graphs.
    pub width: usize,
    /// Range of base execution times (ticks on the reference PE).
    pub base_time_range: (f64, f64),
    /// Range of communication volumes in bits.
    pub volume_range: (u64, u64),
    /// Probability that an arc is a pure control dependency.
    pub control_edge_prob: f64,
    /// Per-PE cost jitter (e.g. `0.15` for ±15%).
    pub cost_jitter: f64,
    /// Deadline laxity: sink deadlines are `laxity *` a makespan estimate
    /// (see [`TgffGenerator::generate`]). Lower is tighter.
    pub deadline_laxity: f64,
    /// Fraction of sink tasks that receive explicit deadlines.
    pub deadline_fraction: f64,
}

impl TgffConfig {
    /// The paper's category-I preset: ~500 tasks, ~1000 arcs, loose
    /// deadlines.
    #[must_use]
    pub fn category_i(seed: u64) -> Self {
        TgffConfig {
            seed,
            task_count: 500,
            edge_factor: 2.0,
            max_in_degree: 4,
            width: 24,
            base_time_range: (100.0, 400.0),
            volume_range: (512, 8192),
            control_edge_prob: 0.1,
            cost_jitter: 0.15,
            deadline_laxity: 1.9,
            deadline_fraction: 1.0,
        }
    }

    /// The paper's category-II preset: same scale, tighter deadlines.
    ///
    /// The laxity is calibrated so EAS-base misses deadlines on roughly
    /// 3 of 10 seeds (the paper reports benchmarks 0, 5 and 6 failing),
    /// while EDF still meets them.
    #[must_use]
    pub fn category_ii(seed: u64) -> Self {
        TgffConfig {
            deadline_laxity: 1.55,
            ..TgffConfig::category_i(seed)
        }
    }

    /// A small smoke-test preset (fast in debug builds).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        TgffConfig {
            task_count: 40,
            edge_factor: 1.8,
            width: 6,
            ..TgffConfig::category_i(seed)
        }
    }
}

/// Seeded random CTG generator; see the [module documentation](self).
#[derive(Debug, Clone)]
pub struct TgffGenerator {
    config: TgffConfig,
}

impl TgffGenerator {
    /// Creates a generator with the given configuration.
    #[must_use]
    pub fn new(config: TgffConfig) -> Self {
        TgffGenerator { config }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &TgffConfig {
        &self.config
    }

    /// Generates a CTG targeting `platform` (cost vectors are derived
    /// from the platform's PE classes).
    ///
    /// Sink deadlines are set to
    /// `laxity * max(mean_finish(sink), total_mean_work / pe_count)`:
    /// the first term covers dependency-chain-bound graphs, the second
    /// throughput-bound ones, so the laxity knob stays meaningful across
    /// shapes.
    ///
    /// # Errors
    ///
    /// Propagates [`CtgError`] from graph construction (which indicates a
    /// bug in the generator rather than bad user input).
    #[allow(clippy::needless_range_loop)] // parallel index into builder ids and in_degree
    pub fn generate(&self, platform: &Platform) -> Result<TaskGraph, CtgError> {
        let cfg = &self.config;
        assert!(cfg.task_count > 0, "task_count must be positive");
        assert!(cfg.width > 0, "width must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let classes = platform.pe_classes();
        let synth = CostSynthesizer::new(classes);

        let mut builder = TaskGraph::builder(format!("tgff-{}", cfg.seed), platform.tile_count());

        // 1. Tasks with heterogeneous costs.
        for i in 0..cfg.task_count {
            let base: f64 = rng.random_range(cfg.base_time_range.0..=cfg.base_time_range.1);
            let affinity: f64 = rng.random_range(0.0..=1.0);
            let (times, energies) =
                synth.vectors_with_jitter(base, affinity, cfg.cost_jitter, &mut rng);
            builder.add_task(Task::new(format!("t{i}"), times, energies));
        }

        // 2. Backbone arcs: every non-root picks one or two parents from
        //    a recent window, giving a connected layered DAG.
        let mut in_degree = vec![0usize; cfg.task_count];
        let mut edges_added = 0usize;
        for i in 1..cfg.task_count {
            let window = 2 * cfg.width;
            let lo = i.saturating_sub(window);
            let parents = rng.random_range(1..=2usize.min(i - lo).max(1));
            let candidates: Vec<usize> = (lo..i).collect();
            let picks: Vec<usize> = candidates
                .choose_multiple(&mut rng, parents)
                .copied()
                .collect();
            for p in picks {
                let volume = self.sample_volume(&mut rng);
                if builder
                    .add_edge(TaskId::new(p as u32), TaskId::new(i as u32), volume)
                    .is_ok()
                {
                    in_degree[i] += 1;
                    edges_added += 1;
                }
            }
        }

        // 3. Extra cross arcs until the target edge count is reached,
        //    honouring the fan-in cap.
        let target_edges = (cfg.task_count as f64 * cfg.edge_factor) as usize;
        let mut attempts = 0usize;
        while edges_added < target_edges && attempts < target_edges * 20 {
            attempts += 1;
            let a = rng.random_range(0..cfg.task_count);
            let span = rng.random_range(1..=(3 * cfg.width).max(2));
            let b = a + span;
            if b >= cfg.task_count || in_degree[b] >= cfg.max_in_degree {
                continue;
            }
            let volume = self.sample_volume(&mut rng);
            if builder
                .add_edge(TaskId::new(a as u32), TaskId::new(b as u32), volume)
                .is_ok()
            {
                in_degree[b] += 1;
                edges_added += 1;
            }
        }

        // 4. Deadlines on sinks.
        let graph = builder.build()?;
        let analysis = GraphAnalysis::new(&graph);
        let total_work: f64 = graph
            .task_ids()
            .map(|t| graph.task(t).mean_exec_time())
            .sum();
        let throughput_bound = total_work / platform.tile_count() as f64;

        let mut builder = TaskGraph::builder(graph.name().to_owned(), platform.tile_count());
        for t in graph.tasks() {
            builder.add_task(t.clone());
        }
        for e in graph.edges() {
            builder
                .add_edge(e.src, e.dst, e.volume)
                .expect("re-adding validated edges cannot fail");
        }
        let sinks: Vec<TaskId> = graph.sinks().collect();
        for s in sinks {
            if rng.random_range(0.0..1.0) >= cfg.deadline_fraction {
                continue;
            }
            let bound = analysis.mean_finish(s).max(throughput_bound);
            let deadline = Time::new((cfg.deadline_laxity * bound).round() as u64);
            let task = builder.task_mut(s);
            *task = task.clone().with_deadline(deadline);
        }
        builder.build()
    }

    fn sample_volume(&self, rng: &mut StdRng) -> Volume {
        if rng.random_range(0.0..1.0) < self.config.control_edge_prob {
            Volume::ZERO
        } else {
            Volume::from_bits(
                rng.random_range(self.config.volume_range.0..=self.config.volume_range.1),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn category_i_hits_paper_scale() {
        let g = TgffGenerator::new(TgffConfig::category_i(1))
            .generate(&platform())
            .unwrap();
        assert_eq!(g.task_count(), 500);
        let e = g.edge_count();
        assert!(
            (900..=1100).contains(&e),
            "edge count {e} should be near 1000"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = platform();
        let a = TgffGenerator::new(TgffConfig::small(9))
            .generate(&p)
            .unwrap();
        let b = TgffGenerator::new(TgffConfig::small(9))
            .generate(&p)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = TgffGenerator::new(TgffConfig::small(10))
            .generate(&p)
            .unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn all_sinks_have_deadlines_with_fraction_one() {
        let p = platform();
        let g = TgffGenerator::new(TgffConfig::small(3))
            .generate(&p)
            .unwrap();
        for s in g.sinks() {
            assert!(g.task(s).has_deadline(), "sink {s} should carry a deadline");
        }
    }

    #[test]
    fn category_ii_deadlines_are_tighter() {
        let p = platform();
        let mut cfg_i = TgffConfig::small(5);
        cfg_i.deadline_laxity = TgffConfig::category_i(5).deadline_laxity;
        let mut cfg_ii = TgffConfig::small(5);
        cfg_ii.deadline_laxity = TgffConfig::category_ii(5).deadline_laxity;
        let gi = TgffGenerator::new(cfg_i).generate(&p).unwrap();
        let gii = TgffGenerator::new(cfg_ii).generate(&p).unwrap();
        for (a, b) in gi.task_ids().zip(gii.task_ids()) {
            if let (Some(da), Some(db)) = (gi.task(a).deadline(), gii.task(b).deadline()) {
                assert!(
                    db < da,
                    "category II deadline {db} should be tighter than {da}"
                );
            }
        }
    }

    #[test]
    fn generated_graph_is_connected_enough() {
        let p = platform();
        let g = TgffGenerator::new(TgffConfig::small(2))
            .generate(&p)
            .unwrap();
        // Only the first task may be parentless by construction.
        let roots = g.sources().count();
        assert!(roots >= 1);
        assert!(
            roots <= 2,
            "backbone should keep the graph nearly single-rooted"
        );
    }

    #[test]
    fn deadline_fraction_zero_leaves_everything_unconstrained() {
        let p = platform();
        let mut cfg = TgffConfig::small(8);
        cfg.deadline_fraction = 0.0;
        let g = TgffGenerator::new(cfg).generate(&p).unwrap();
        assert_eq!(g.deadline_tasks().count(), 0);
    }

    #[test]
    fn costs_are_heterogeneous() {
        let p = platform();
        let g = TgffGenerator::new(TgffConfig::small(4))
            .generate(&p)
            .unwrap();
        let hetero = g
            .task_ids()
            .filter(|&t| g.task(t).exec_time_variance() > 0.0)
            .count();
        assert!(hetero > g.task_count() / 2);
    }
}
