//! Graphviz DOT export of task graphs, for inspection and papers.

use std::fmt::Write as _;

use crate::graph::TaskGraph;

/// Renders `graph` in Graphviz DOT syntax.
///
/// Tasks show their name, mean execution time and (when present)
/// deadline; data arcs are labelled with their volume, control arcs
/// drawn dashed.
///
/// ```
/// use noc_ctg::prelude::*;
/// use noc_ctg::dot::to_dot;
/// use noc_platform::units::{Energy, Time, Volume};
///
/// # fn main() -> Result<(), CtgError> {
/// let mut b = TaskGraph::builder("demo", 1);
/// let a = b.add_task(Task::uniform("a", 1, Time::new(10), Energy::from_nj(1.0)));
/// let c = b.add_task(Task::uniform("c", 1, Time::new(10), Energy::from_nj(1.0)));
/// b.add_edge(a, c, Volume::from_bits(64))?;
/// let dot = to_dot(&b.build()?);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("a -> c") || dot.contains("t0 -> t1"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for t in graph.task_ids() {
        let task = graph.task(t);
        let mut label = format!("{}\\nM={:.0}", escape(task.name()), task.mean_exec_time());
        if let Some(d) = task.deadline() {
            let _ = write!(label, "\\nd={d}");
        }
        let style = if task.has_deadline() {
            ", penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(out, "  {t} [label=\"{label}\"{style}];");
    }
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        if edge.is_control() {
            let _ = writeln!(out, "  {} -> {} [style=dashed];", edge.src, edge.dst);
        } else {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}b\"];",
                edge.src,
                edge.dst,
                edge.volume.bits()
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use noc_platform::units::{Energy, Time, Volume};

    fn sample() -> TaskGraph {
        let mut b = TaskGraph::builder("dot \"demo\"", 1);
        let a = b.add_task(Task::uniform("a", 1, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(
            Task::uniform("c", 1, Time::new(50), Energy::from_nj(1.0))
                .with_deadline(Time::new(400)),
        );
        let d = b.add_task(Task::uniform("d", 1, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(128)).unwrap();
        b.add_control_edge(a, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_every_task_and_edge() {
        let dot = to_dot(&sample());
        assert!(dot.contains("t0 ["));
        assert!(dot.contains("t1 ["));
        assert!(dot.contains("t2 ["));
        assert!(dot.contains("t0 -> t1 [label=\"128b\"]"));
        assert!(dot.contains("t0 -> t2 [style=dashed]"));
    }

    #[test]
    fn deadlines_are_rendered_bold() {
        let dot = to_dot(&sample());
        assert!(dot.contains("d=400"));
        assert!(dot.contains("penwidth=2"));
    }

    #[test]
    fn quotes_are_escaped() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph \"dot \\\"demo\\\"\""));
    }

    #[test]
    fn output_is_balanced() {
        let dot = to_dot(&sample());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.ends_with("}\n"));
    }
}
