//! Additional realistic application benchmarks beyond the paper's
//! multimedia set: an OFDM baseband transceiver and an IP packet
//! processing pipeline.
//!
//! Both are classic NoC-mapping workloads in the literature following
//! the paper (e.g. the E3S suite and 802.11 baseband studies) and
//! exercise regimes the MSB graphs do not: the OFDM graph is
//! DSP-saturated with wide fan-out/fan-in stages; the packet pipeline is
//! control-heavy with modest communication volumes. They extend the
//! evaluation surface of the schedulers (see `DESIGN.md`'s extension
//! experiments) and give downstream users ready-made workloads.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::units::{Time, Volume};
use noc_platform::Platform;

use crate::costs::CostSynthesizer;
use crate::graph::TaskGraph;
use crate::task::Task;
use crate::CtgError;

/// Workload intensity profile (the analogue of the multimedia clips).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Load {
    /// Light traffic / narrow channel.
    Light,
    /// Nominal operating point.
    Nominal,
    /// Saturated channel / worst-case traffic.
    Heavy,
}

impl Load {
    /// All loads, ascending.
    #[must_use]
    pub const fn all() -> [Load; 3] {
        [Load::Light, Load::Nominal, Load::Heavy]
    }

    /// Multiplier applied to data-dependent costs.
    #[must_use]
    pub const fn factor(self) -> f64 {
        match self {
            Load::Light => 0.7,
            Load::Nominal => 1.0,
            Load::Heavy => 1.3,
        }
    }

    /// Lower-case name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Load::Light => "light",
            Load::Nominal => "nominal",
            Load::Heavy => "heavy",
        }
    }
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The extension application benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtensionApp {
    /// An 802.11a-style OFDM baseband transceiver (TX + RX chains,
    /// 22 tasks): scrambler / coder / interleaver / mapper / IFFT on the
    /// way out, synchronizer / FFT / equalizer / demapper / decoder on
    /// the way in. Deadline: one OFDM symbol period per direction.
    OfdmTransceiver,
    /// An IP packet-processing pipeline (18 tasks): parse / checksum /
    /// route-lookup / classify / meter / queue on the fast path with a
    /// slow-path exception branch. Deadline: one line-rate batch period.
    PacketPipeline,
}

impl ExtensionApp {
    /// All extension applications.
    #[must_use]
    pub const fn all() -> [ExtensionApp; 2] {
        [ExtensionApp::OfdmTransceiver, ExtensionApp::PacketPipeline]
    }

    /// The task count of the application graph.
    #[must_use]
    pub const fn task_count(self) -> usize {
        match self {
            ExtensionApp::OfdmTransceiver => 22,
            ExtensionApp::PacketPipeline => 18,
        }
    }

    /// The mesh `(cols, rows)` the benchmark is sized for.
    #[must_use]
    pub const fn recommended_mesh(self) -> (u16, u16) {
        match self {
            ExtensionApp::OfdmTransceiver => (3, 2),
            ExtensionApp::PacketPipeline => (2, 2),
        }
    }

    /// Short name for reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ExtensionApp::OfdmTransceiver => "ofdm-transceiver",
            ExtensionApp::PacketPipeline => "packet-pipeline",
        }
    }

    /// Builds the application CTG for `load` on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates [`CtgError`] from graph assembly.
    pub fn build(self, load: Load, platform: &Platform) -> Result<TaskGraph, CtgError> {
        let f = load.factor();
        let synth = CostSynthesizer::new(platform.pe_classes());
        let name = format!("{}-{}", self.name(), load.name());
        let mut b = TaskGraph::builder(name, platform.tile_count());
        let mut add = |name: &str, base: f64, affinity: f64, deadline: Option<u64>| {
            let (times, energies) = synth.vectors(base, affinity);
            let mut task = Task::new(name, times, energies);
            if let Some(d) = deadline {
                task = task.with_deadline(Time::new(d));
            }
            b.add_task(task)
        };

        match self {
            ExtensionApp::OfdmTransceiver => {
                // Symbol period at nominal load; both chains share it.
                let period = 9_000u64;
                // --- TX chain (10 tasks) ---
                let src = add("mac_tx", 220.0, 0.1, None);
                let scram = add("scrambler", 260.0 * f, 0.6, None);
                let coder = add("conv_coder", 520.0 * f, 0.7, None);
                let ilv = add("interleaver", 380.0 * f, 0.5, None);
                let map = add("qam_mapper", 460.0 * f, 0.8, None);
                let pilot = add("pilot_insert", 240.0, 0.5, None);
                let ifft = add("ifft64", 1_250.0 * f, 0.98, None);
                let cp = add("cyclic_prefix", 260.0, 0.4, None);
                let wind = add("windowing", 320.0, 0.7, None);
                let dac = add("dac_frontend", 300.0, 0.2, Some(period));
                // --- RX chain (12 tasks) ---
                let adc = add("adc_frontend", 300.0, 0.2, None);
                let sync = add("sync_detect", 640.0 * f, 0.85, None);
                let cfo = add("cfo_correct", 420.0 * f, 0.8, None);
                let fft = add("fft64", 1_250.0 * f, 0.98, None);
                let chest = add("chan_estimate", 760.0 * f, 0.9, None);
                let eq = add("equalizer", 680.0 * f, 0.9, None);
                let demap = add("qam_demapper", 460.0 * f, 0.75, None);
                let deilv = add("deinterleaver", 380.0 * f, 0.5, None);
                let vit = add("viterbi", 1_450.0 * f, 0.92, None);
                let descr = add("descrambler", 260.0 * f, 0.6, None);
                let crc = add("crc_check", 240.0, 0.3, None);
                let mac_rx = add("mac_rx", 220.0, 0.1, Some(period));

                let v = |bits: f64| Volume::from_bits((bits * f).round() as u64);
                for (s, d, bits) in [
                    (src, scram, 2_048.0),
                    (scram, coder, 2_048.0),
                    (coder, ilv, 4_096.0),
                    (ilv, map, 4_096.0),
                    (map, pilot, 3_072.0),
                    (pilot, ifft, 3_584.0),
                    (ifft, cp, 4_096.0),
                    (cp, wind, 4_608.0),
                    (wind, dac, 4_608.0),
                    (adc, sync, 4_608.0),
                    (sync, cfo, 4_608.0),
                    (cfo, fft, 4_096.0),
                    (fft, chest, 3_584.0),
                    (fft, eq, 3_584.0),
                    (chest, eq, 1_024.0),
                    (eq, demap, 3_072.0),
                    (demap, deilv, 4_096.0),
                    (deilv, vit, 4_096.0),
                    (vit, descr, 2_048.0),
                    (descr, crc, 2_048.0),
                    (crc, mac_rx, 2_048.0),
                ] {
                    b.add_edge(s, d, v(bits))?;
                }
            }
            ExtensionApp::PacketPipeline => {
                let period = 6_000u64;
                let rx = add("rx_dma", 200.0, 0.1, None);
                let parse = add("hdr_parse", 360.0 * f, 0.3, None);
                let csum = add("checksum", 420.0 * f, 0.7, None);
                let lookup = add("route_lookup", 780.0 * f, 0.4, None);
                let classify = add("classify", 620.0 * f, 0.4, None);
                let acl = add("acl_filter", 540.0 * f, 0.3, None);
                let meter = add("meter", 320.0, 0.4, None);
                let mark = add("dscp_mark", 240.0, 0.3, None);
                let frag = add("fragment", 460.0 * f, 0.5, None);
                let encap = add("encap", 380.0, 0.4, None);
                let sched = add("qos_sched", 520.0 * f, 0.3, None);
                let queue = add("queue_mgr", 420.0, 0.2, None);
                let tx = add("tx_dma", 200.0, 0.1, Some(period));
                // Slow path (exceptions, stats) — control-heavy branch.
                let except = add("slow_path", 900.0 * f, 0.15, None);
                let arp = add("arp_resolve", 480.0, 0.15, None);
                let icmp = add("icmp_gen", 380.0, 0.2, None);
                let stats = add("stats_update", 300.0, 0.25, Some(period));
                let log = add("flow_log", 340.0, 0.2, Some(period));

                let v = |bits: f64| Volume::from_bits((bits * f).round() as u64);
                for (s, d, bits) in [
                    (rx, parse, 8_192.0),
                    (parse, csum, 2_048.0),
                    (parse, lookup, 1_024.0),
                    (parse, classify, 1_024.0),
                    (csum, acl, 512.0),
                    (lookup, acl, 512.0),
                    (classify, meter, 512.0),
                    (acl, meter, 512.0),
                    (meter, mark, 512.0),
                    (mark, frag, 8_192.0),
                    (frag, encap, 8_192.0),
                    (encap, sched, 1_024.0),
                    (sched, queue, 1_024.0),
                    (queue, tx, 8_192.0),
                    (parse, except, 1_024.0),
                    (except, arp, 512.0),
                    (except, icmp, 512.0),
                    (arp, stats, 256.0),
                    (icmp, stats, 256.0),
                    (meter, log, 512.0),
                    (stats, log, 256.0),
                ] {
                    b.add_edge(s, d, v(bits))?;
                }
            }
        }
        b.build()
    }
}

impl fmt::Display for ExtensionApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    fn platform_for(app: ExtensionApp) -> Platform {
        let (c, r) = app.recommended_mesh();
        Platform::builder()
            .topology(TopologySpec::mesh(c, r))
            .build()
            .unwrap()
    }

    #[test]
    fn task_counts_match_declaration() {
        for app in ExtensionApp::all() {
            let p = platform_for(app);
            let g = app.build(Load::Nominal, &p).unwrap();
            assert_eq!(g.task_count(), app.task_count(), "{app}");
        }
    }

    #[test]
    fn graphs_are_dags_with_deadlines() {
        for app in ExtensionApp::all() {
            let p = platform_for(app);
            let g = app.build(Load::Nominal, &p).unwrap();
            assert!(g.deadline_tasks().count() >= 1, "{app} needs deadlines");
            assert_eq!(g.topological_order().len(), g.task_count());
        }
    }

    #[test]
    fn heavier_loads_cost_more() {
        for app in ExtensionApp::all() {
            let p = platform_for(app);
            let light = app.build(Load::Light, &p).unwrap();
            let heavy = app.build(Load::Heavy, &p).unwrap();
            let work =
                |g: &TaskGraph| -> f64 { g.task_ids().map(|t| g.task(t).mean_exec_time()).sum() };
            assert!(work(&heavy) > work(&light), "{app}");
            assert!(heavy.total_volume() > light.total_volume(), "{app}");
        }
    }

    #[test]
    fn ofdm_has_dsp_dominant_kernels() {
        let p = platform_for(ExtensionApp::OfdmTransceiver);
        let g = ExtensionApp::OfdmTransceiver
            .build(Load::Nominal, &p)
            .unwrap();
        let fft = g.task_ids().find(|&t| g.task(t).name() == "fft64").unwrap();
        // On a heterogeneous platform the FFT shows high cost variance —
        // exactly what EAS's weights reward.
        assert!(g.task(fft).exec_time_variance() > 0.0);
    }

    #[test]
    fn names_and_loads_round_trip() {
        assert_eq!(
            ExtensionApp::OfdmTransceiver.to_string(),
            "ofdm-transceiver"
        );
        assert_eq!(Load::Heavy.to_string(), "heavy");
        assert!(Load::Heavy.factor() > Load::Light.factor());
    }
}
