//! The Communication Task Graph container and its builder.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

use noc_platform::units::Volume;

use crate::edge::{Edge, EdgeId};
use crate::task::{Task, TaskId};
use crate::CtgError;

/// A validated Communication Task Graph (Def. 1): a DAG of [`Task`]s
/// connected by [`Edge`]s, with all per-PE cost vectors sized for the
/// same `pe_count`.
///
/// Construct with [`TaskGraph::builder`]; see the [crate-level
/// documentation](crate) for an example. Validation (acyclicity, cost
/// vector sizes, duplicate arcs) happens once at build time so queries
/// are infallible afterwards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    pe_count: usize,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per task.
    succs: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per task.
    preds: Vec<Vec<EdgeId>>,
    /// A fixed topological order (deterministic: Kahn with min-id choice).
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Starts building a graph whose cost vectors target `pe_count` PEs.
    #[must_use]
    pub fn builder(name: impl Into<String>, pe_count: usize) -> TaskGraphBuilder {
        TaskGraphBuilder {
            name: name.into(),
            pe_count,
            tasks: Vec::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
        }
    }

    /// Graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of PEs the cost vectors target.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pe_count
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependency arcs.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId::new)
    }

    /// All edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All tasks, id order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges, id order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of arcs leaving `id` (to its consumers).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn outgoing(&self, id: TaskId) -> &[EdgeId] {
        &self.succs[id.index()]
    }

    /// Ids of arcs entering `id` (from its producers) — the task's
    /// *receiving communication transactions* (the paper's LCT).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn incoming(&self, id: TaskId) -> &[EdgeId] {
        &self.preds[id.index()]
    }

    /// Successor task ids of `id`.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].dst)
    }

    /// Predecessor task ids of `id`.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].src)
    }

    /// A fixed topological order of all tasks (deterministic).
    #[must_use]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|t| self.preds[t.index()].is_empty())
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|t| self.succs[t.index()].is_empty())
    }

    /// Tasks carrying an explicit deadline.
    pub fn deadline_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|t| self.task(*t).has_deadline())
    }

    /// Total communication volume over all arcs.
    #[must_use]
    pub fn total_volume(&self) -> Volume {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// Validates that a task id is within range.
    ///
    /// # Errors
    ///
    /// [`CtgError::UnknownTask`] if out of range.
    pub fn check_task(&self, task: TaskId) -> Result<(), CtgError> {
        if task.index() < self.tasks.len() {
            Ok(())
        } else {
            Err(CtgError::UnknownTask {
                task,
                task_count: self.tasks.len(),
            })
        }
    }
}

impl fmt::Display for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} tasks, {} arcs, {} PEs",
            self.name,
            self.task_count(),
            self.edge_count(),
            self.pe_count
        )
    }
}

/// Incrementally assembles a [`TaskGraph`]; see [`TaskGraph::builder`].
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    name: String,
    pe_count: usize,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    edge_set: HashSet<(TaskId, TaskId)>,
}

impl TaskGraphBuilder {
    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId::new(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Adds a dependency arc with the given communication volume.
    ///
    /// # Errors
    ///
    /// * [`CtgError::UnknownTask`] if either endpoint has not been added,
    /// * [`CtgError::SelfLoop`] if `src == dst`,
    /// * [`CtgError::DuplicateEdge`] if the arc already exists.
    pub fn add_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        volume: Volume,
    ) -> Result<EdgeId, CtgError> {
        for t in [src, dst] {
            if t.index() >= self.tasks.len() {
                return Err(CtgError::UnknownTask {
                    task: t,
                    task_count: self.tasks.len(),
                });
            }
        }
        if src == dst {
            return Err(CtgError::SelfLoop(src));
        }
        if !self.edge_set.insert((src, dst)) {
            return Err(CtgError::DuplicateEdge { src, dst });
        }
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(Edge::new(src, dst, volume));
        Ok(id)
    }

    /// Adds a pure control dependency (zero volume).
    ///
    /// # Errors
    ///
    /// Same as [`add_edge`](Self::add_edge).
    pub fn add_control_edge(&mut self, src: TaskId, dst: TaskId) -> Result<EdgeId, CtgError> {
        self.add_edge(src, dst, Volume::ZERO)
    }

    /// Number of tasks added so far.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Mutable access to an already-added task (e.g. to set a deadline
    /// once the graph shape is known).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Validates and seals the graph.
    ///
    /// # Errors
    ///
    /// * [`CtgError::EmptyGraph`] if no tasks were added,
    /// * [`CtgError::CostVectorMismatch`] if any task's vectors do not
    ///   match the builder's `pe_count`,
    /// * [`CtgError::CyclicGraph`] if the arcs are not acyclic.
    pub fn build(self) -> Result<TaskGraph, CtgError> {
        if self.tasks.is_empty() {
            return Err(CtgError::EmptyGraph);
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.exec_times().len() != self.pe_count || t.exec_energies().len() != self.pe_count {
                return Err(CtgError::CostVectorMismatch {
                    task: TaskId::new(i as u32),
                    expected: self.pe_count,
                    times: t.exec_times().len(),
                    energies: t.exec_energies().len(),
                });
            }
        }
        let n = self.tasks.len();
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            succs[e.src.index()].push(EdgeId::new(i as u32));
            preds[e.dst.index()].push(EdgeId::new(i as u32));
        }

        // Kahn's algorithm with a min-id ready set for determinism.
        let mut in_deg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = in_deg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            let id = TaskId::new(i);
            topo.push(id);
            for &e in &succs[id.index()] {
                let d = self.edges[e.index()].dst;
                in_deg[d.index()] -= 1;
                if in_deg[d.index()] == 0 {
                    ready.push(std::cmp::Reverse(d.raw()));
                }
            }
        }
        if topo.len() != n {
            let witness = in_deg
                .iter()
                .position(|&d| d > 0)
                .map(|i| TaskId::new(i as u32))
                .expect("cycle implies a task with nonzero in-degree");
            return Err(CtgError::CyclicGraph { witness });
        }

        Ok(TaskGraph {
            name: self.name,
            pe_count: self.pe_count,
            tasks: self.tasks,
            edges: self.edges,
            succs,
            preds,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::units::{Energy, Time};

    fn task(name: &str) -> Task {
        Task::uniform(name, 2, Time::new(10), Energy::from_nj(1.0))
    }

    /// Builds the diamond a -> {b, c} -> d.
    fn diamond() -> TaskGraph {
        let mut b = TaskGraph::builder("diamond", 2);
        let a = b.add_task(task("a"));
        let b1 = b.add_task(task("b"));
        let c = b.add_task(task("c"));
        let d = b.add_task(task("d"));
        b.add_edge(a, b1, Volume::from_bits(8)).unwrap();
        b.add_edge(a, c, Volume::from_bits(8)).unwrap();
        b.add_edge(b1, d, Volume::from_bits(8)).unwrap();
        b.add_edge(c, d, Volume::from_bits(8)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![TaskId::new(0)]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![TaskId::new(3)]);
        assert_eq!(g.incoming(TaskId::new(3)).len(), 2);
        assert_eq!(g.outgoing(TaskId::new(0)).len(), 2);
        assert_eq!(
            g.predecessors(TaskId::new(3)).collect::<Vec<_>>(),
            vec![TaskId::new(1), TaskId::new(2)]
        );
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let topo = g.topological_order();
        let pos: Vec<usize> = g
            .task_ids()
            .map(|t| topo.iter().position(|&x| x == t).unwrap())
            .collect();
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaskGraph::builder("cyclic", 2);
        let x = b.add_task(task("x"));
        let y = b.add_task(task("y"));
        b.add_edge(x, y, Volume::ZERO).unwrap();
        b.add_edge(y, x, Volume::ZERO).unwrap();
        assert!(matches!(b.build(), Err(CtgError::CyclicGraph { .. })));
    }

    #[test]
    fn self_loop_and_duplicate_are_rejected() {
        let mut b = TaskGraph::builder("bad", 2);
        let x = b.add_task(task("x"));
        let y = b.add_task(task("y"));
        assert!(matches!(
            b.add_edge(x, x, Volume::ZERO),
            Err(CtgError::SelfLoop(_))
        ));
        b.add_edge(x, y, Volume::ZERO).unwrap();
        assert!(matches!(
            b.add_edge(x, y, Volume::ZERO),
            Err(CtgError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut b = TaskGraph::builder("bad", 2);
        let x = b.add_task(task("x"));
        let ghost = TaskId::new(9);
        assert!(matches!(
            b.add_edge(x, ghost, Volume::ZERO),
            Err(CtgError::UnknownTask { .. })
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert!(matches!(
            TaskGraph::builder("e", 2).build(),
            Err(CtgError::EmptyGraph)
        ));
    }

    #[test]
    fn cost_vector_mismatch_is_rejected() {
        let mut b = TaskGraph::builder("bad", 3);
        b.add_task(task("x")); // 2-PE vectors in a 3-PE graph
        assert!(matches!(
            b.build(),
            Err(CtgError::CostVectorMismatch { expected: 3, .. })
        ));
    }

    #[test]
    fn deadline_tasks_iterates_only_constrained() {
        let mut b = TaskGraph::builder("d", 2);
        b.add_task(task("a"));
        let t = b.add_task(task("b"));
        b.task_mut(t)
            .clone_from(&task("b").with_deadline(Time::new(100)));
        let g = b.build().unwrap();
        assert_eq!(g.deadline_tasks().collect::<Vec<_>>(), vec![t]);
    }

    #[test]
    fn total_volume_sums_edges() {
        let g = diamond();
        assert_eq!(g.total_volume(), Volume::from_bits(32));
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.task_count(), 4);
        assert_eq!(back.topological_order(), g.topological_order());
    }

    #[test]
    fn control_edge_has_zero_volume() {
        let mut b = TaskGraph::builder("c", 2);
        let x = b.add_task(task("x"));
        let y = b.add_task(task("y"));
        let e = b.add_control_edge(x, y).unwrap();
        let g = b.build().unwrap();
        assert!(g.edge(e).is_control());
    }
}
