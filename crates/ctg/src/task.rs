//! Tasks: the vertices of a CTG (Def. 1).

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};

/// Identifies a task within a [`crate::TaskGraph`]. Ids are dense indices
/// in `0..task_count`.
///
/// ```
/// use noc_ctg::task::TaskId;
/// assert_eq!(TaskId::new(4).to_string(), "t4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// Returns the dense index as a `usize`, for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("t{}", self.0))
    }
}

/// A computation task with per-PE execution costs and an optional
/// deadline.
///
/// The `j`-th element of [`exec_times`](Task::exec_times) /
/// [`exec_energies`](Task::exec_energies) is the execution time / energy
/// of the task on PE `j` of the target architecture — the paper's `R_i`
/// and `E_i` arrays. A deadline of [`Time::INFINITY`] means "unspecified"
/// (the paper's `d(t_i) = ∞`).
///
/// ```
/// use noc_ctg::task::Task;
/// use noc_platform::units::{Energy, Time};
///
/// let t = Task::new(
///     "fir",
///     vec![Time::new(80), Time::new(120)],
///     vec![Energy::from_nj(40.0), Energy::from_nj(12.0)],
/// )
/// .with_deadline(Time::new(500));
/// assert_eq!(t.deadline(), Some(Time::new(500)));
/// assert_eq!(t.pe_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    exec_times: Vec<Time>,
    exec_energies: Vec<Energy>,
    deadline: Time,
}

impl Task {
    /// Creates a task from explicit per-PE cost vectors and no deadline.
    ///
    /// The two vectors must have the same length, equal to the PE count
    /// of the [`crate::TaskGraph`] the task will join (checked at
    /// [`crate::TaskGraphBuilder::build`] time).
    #[must_use]
    pub fn new(name: impl Into<String>, exec_times: Vec<Time>, exec_energies: Vec<Energy>) -> Self {
        Task {
            name: name.into(),
            exec_times,
            exec_energies,
            deadline: Time::INFINITY,
        }
    }

    /// Creates a task with identical cost on all `pe_count` PEs — handy
    /// for homogeneous examples and tests.
    #[must_use]
    pub fn uniform(name: impl Into<String>, pe_count: usize, time: Time, energy: Energy) -> Self {
        Task::new(name, vec![time; pe_count], vec![energy; pe_count])
    }

    /// Sets the deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = deadline;
        self
    }

    /// Human-readable task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution time on a specific PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn exec_time(&self, pe: PeId) -> Time {
        self.exec_times[pe.index()]
    }

    /// Execution energy on a specific PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn exec_energy(&self, pe: PeId) -> Energy {
        self.exec_energies[pe.index()]
    }

    /// The full per-PE execution-time vector (`R_i`).
    #[must_use]
    pub fn exec_times(&self) -> &[Time] {
        &self.exec_times
    }

    /// The full per-PE energy vector (`E_i`).
    #[must_use]
    pub fn exec_energies(&self) -> &[Energy] {
        &self.exec_energies
    }

    /// Number of PEs the cost vectors cover.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.exec_times.len()
    }

    /// The deadline, or `None` if unspecified.
    #[must_use]
    pub fn deadline(&self) -> Option<Time> {
        if self.deadline.is_infinite() {
            None
        } else {
            Some(self.deadline)
        }
    }

    /// The deadline as a raw [`Time`] (`Time::INFINITY` when
    /// unspecified), convenient for min/compare chains.
    #[must_use]
    pub fn deadline_or_infinity(&self) -> Time {
        self.deadline
    }

    /// `true` if the task carries an explicit deadline.
    #[must_use]
    pub fn has_deadline(&self) -> bool {
        !self.deadline.is_infinite()
    }

    /// Mean execution time across PEs (the paper's `M_ti`).
    #[must_use]
    pub fn mean_exec_time(&self) -> f64 {
        if self.exec_times.is_empty() {
            return 0.0;
        }
        self.exec_times.iter().map(|t| t.as_f64()).sum::<f64>() / self.exec_times.len() as f64
    }

    /// Population variance of execution time across PEs (`VAR_ri`).
    #[must_use]
    pub fn exec_time_variance(&self) -> f64 {
        variance(self.exec_times.iter().map(|t| t.as_f64()))
    }

    /// Population variance of execution energy across PEs (`VAR_ei`).
    #[must_use]
    pub fn exec_energy_variance(&self) -> f64 {
        variance(self.exec_energies.iter().map(|e| e.as_nj()))
    }

    /// Minimum execution time across PEs.
    ///
    /// # Panics
    ///
    /// Panics if the cost vector is empty.
    #[must_use]
    pub fn min_exec_time(&self) -> Time {
        *self.exec_times.iter().min().expect("non-empty cost vector")
    }

    /// Minimum execution energy across PEs.
    #[must_use]
    pub fn min_exec_energy(&self) -> Energy {
        self.exec_energies
            .iter()
            .copied()
            .fold(None, |best: Option<Energy>, e| {
                Some(match best {
                    None => e,
                    Some(b) if e < b => e,
                    Some(b) => b,
                })
            })
            .expect("non-empty cost vector")
    }
}

fn variance(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} PEs", self.name, self.pe_count())?;
        if let Some(d) = self.deadline() {
            write!(f, ", deadline {d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Task {
        Task::new(
            "t",
            vec![Time::new(100), Time::new(200), Time::new(300)],
            vec![
                Energy::from_nj(10.0),
                Energy::from_nj(20.0),
                Energy::from_nj(60.0),
            ],
        )
    }

    #[test]
    fn mean_and_variance() {
        let t = sample();
        assert!((t.mean_exec_time() - 200.0).abs() < 1e-12);
        // Population variance of {100,200,300} = 6666.66..
        assert!((t.exec_time_variance() - 20000.0 / 3.0).abs() < 1e-9);
        assert!(t.exec_energy_variance() > 0.0);
    }

    #[test]
    fn uniform_task_has_zero_variance() {
        let t = Task::uniform("u", 5, Time::new(50), Energy::from_nj(5.0));
        assert_eq!(t.exec_time_variance(), 0.0);
        assert_eq!(t.exec_energy_variance(), 0.0);
        assert_eq!(t.pe_count(), 5);
    }

    #[test]
    fn deadline_handling() {
        let t = sample();
        assert_eq!(t.deadline(), None);
        assert!(!t.has_deadline());
        assert!(t.deadline_or_infinity().is_infinite());
        let t = t.with_deadline(Time::new(999));
        assert_eq!(t.deadline(), Some(Time::new(999)));
        assert!(t.has_deadline());
    }

    #[test]
    fn min_costs() {
        let t = sample();
        assert_eq!(t.min_exec_time(), Time::new(100));
        assert!((t.min_exec_energy().as_nj() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn per_pe_lookup() {
        let t = sample();
        assert_eq!(t.exec_time(PeId::new(1)), Time::new(200));
        assert!((t.exec_energy(PeId::new(2)).as_nj() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_deadline() {
        let t = sample().with_deadline(Time::new(5));
        assert!(t.to_string().contains("deadline 5"));
    }
}
