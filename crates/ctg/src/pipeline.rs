//! Periodic pipeline unrolling: schedule several frames of a streaming
//! application at once.
//!
//! The paper schedules one frame of the A/V applications against the
//! frame period. Real encoders are *pipelined*: frame `k+1`'s motion
//! estimation consumes frame `k`'s reconstructed reference frame. This
//! module unrolls a per-frame CTG into an `n`-frame CTG with
//!
//! * per-frame deadline staggering (`d + k * period`), and
//! * explicit **inter-frame data dependencies** between chosen producer
//!   tasks of frame `k` and consumer tasks of frame `k+1`,
//!
//! letting the scheduler overlap frames on the NoC — a larger, harder
//! instance of exactly the same scheduling problem (listed as an
//! extension experiment in `DESIGN.md`).

use noc_platform::units::{Time, Volume};

use crate::graph::TaskGraph;
use crate::task::TaskId;
use crate::CtgError;

/// An inter-frame dependency template: frame `k`'s `producer` feeds
/// frame `k+1`'s `consumer` with `volume` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterFrameEdge {
    /// Producer task (id within the per-frame graph).
    pub producer: TaskId,
    /// Consumer task (id within the per-frame graph).
    pub consumer: TaskId,
    /// Communication volume of the cross-frame transfer.
    pub volume: Volume,
}

impl InterFrameEdge {
    /// Creates a template edge.
    #[must_use]
    pub const fn new(producer: TaskId, consumer: TaskId, volume: Volume) -> Self {
        InterFrameEdge {
            producer,
            consumer,
            volume,
        }
    }
}

/// Unrolls `frame` into `frames` back-to-back instances.
///
/// Frame `k`'s task `t` becomes task `k * n + t.index()`; deadlines are
/// staggered by `k * period`; every `inter_frame` template adds an arc
/// from frame `k`'s producer to frame `k+1`'s consumer.
///
/// # Errors
///
/// * [`CtgError::UnknownTask`] if a template references a task outside
///   the per-frame graph,
/// * construction errors from re-assembly (duplicate template edges).
///
/// # Panics
///
/// Panics if `frames` is zero.
pub fn unroll(
    frame: &TaskGraph,
    frames: usize,
    period: Time,
    inter_frame: &[InterFrameEdge],
) -> Result<TaskGraph, CtgError> {
    assert!(frames > 0, "need at least one frame");
    for e in inter_frame {
        frame.check_task(e.producer)?;
        frame.check_task(e.consumer)?;
    }
    let n = frame.task_count() as u32;
    let mut builder = TaskGraph::builder(format!("{}-x{}", frame.name(), frames), frame.pe_count());
    for k in 0..frames {
        let offset = period * k as u64;
        for t in frame.tasks() {
            let mut task = t.clone();
            if let Some(d) = t.deadline() {
                task = task.with_deadline(d + offset);
            }
            let mut renamed = crate::task::Task::new(
                format!("f{k}.{}", t.name()),
                task.exec_times().to_vec(),
                task.exec_energies().to_vec(),
            );
            renamed = renamed.with_deadline(task.deadline_or_infinity());
            builder.add_task(renamed);
        }
    }
    let id = |k: usize, t: TaskId| TaskId::new(k as u32 * n + t.raw());
    for k in 0..frames {
        for e in frame.edges() {
            builder.add_edge(id(k, e.src), id(k, e.dst), e.volume)?;
        }
    }
    for k in 0..frames.saturating_sub(1) {
        for e in inter_frame {
            builder.add_edge(id(k, e.producer), id(k + 1, e.consumer), e.volume)?;
        }
    }
    builder.build()
}

/// Finds a task by name in a per-frame graph (helper for building
/// [`InterFrameEdge`] templates from the multimedia benchmarks).
#[must_use]
pub fn task_by_name(graph: &TaskGraph, name: &str) -> Option<TaskId> {
    graph.task_ids().find(|&t| graph.task(t).name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multimedia::{Clip, MultimediaApp};
    use crate::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::Energy;

    fn frame_graph() -> TaskGraph {
        let mut b = TaskGraph::builder("frame", 2);
        let src = b.add_task(Task::uniform("src", 2, Time::new(10), Energy::from_nj(1.0)));
        let sink = b.add_task(
            Task::uniform("sink", 2, Time::new(10), Energy::from_nj(1.0))
                .with_deadline(Time::new(100)),
        );
        b.add_edge(src, sink, Volume::from_bits(64)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unroll_replicates_tasks_and_staggers_deadlines() {
        let f = frame_graph();
        let g = unroll(&f, 3, Time::new(100), &[]).unwrap();
        assert_eq!(g.task_count(), 6);
        assert_eq!(g.edge_count(), 3);
        // Frame 0 sink: 100; frame 2 sink: 300.
        assert_eq!(g.task(TaskId::new(1)).deadline(), Some(Time::new(100)));
        assert_eq!(g.task(TaskId::new(5)).deadline(), Some(Time::new(300)));
        assert_eq!(g.task(TaskId::new(4)).name(), "f2.src");
    }

    #[test]
    fn inter_frame_edges_chain_frames() {
        let f = frame_graph();
        let tmpl = InterFrameEdge::new(TaskId::new(1), TaskId::new(0), Volume::from_bits(32));
        let g = unroll(&f, 3, Time::new(100), &[tmpl]).unwrap();
        // 3 intra-frame + 2 cross-frame edges.
        assert_eq!(g.edge_count(), 5);
        // Frame 1's src depends on frame 0's sink.
        let preds: Vec<TaskId> = g.predecessors(TaskId::new(2)).collect();
        assert!(preds.contains(&TaskId::new(1)));
        // Still a DAG with a valid topological order.
        assert_eq!(g.topological_order().len(), 6);
    }

    #[test]
    fn bad_template_is_rejected() {
        let f = frame_graph();
        let tmpl = InterFrameEdge::new(TaskId::new(9), TaskId::new(0), Volume::ZERO);
        assert!(matches!(
            unroll(&f, 2, Time::new(100), &[tmpl]),
            Err(CtgError::UnknownTask { .. })
        ));
    }

    #[test]
    fn single_frame_unroll_is_isomorphic() {
        let f = frame_graph();
        let g = unroll(&f, 1, Time::new(100), &[]).unwrap();
        assert_eq!(g.task_count(), f.task_count());
        assert_eq!(g.edge_count(), f.edge_count());
        assert_eq!(
            g.task(TaskId::new(1)).deadline(),
            f.task(TaskId::new(1)).deadline()
        );
    }

    #[test]
    fn multimedia_encoder_pipelines_via_frame_store() {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .build()
            .unwrap();
        let frame = MultimediaApp::AvEncoder
            .build(Clip::Foreman, &platform)
            .unwrap();
        let store = task_by_name(&frame, "frame_store").expect("task exists");
        let me = task_by_name(&frame, "motion_est").expect("task exists");
        let tmpl = InterFrameEdge::new(store, me, Volume::from_bits(16_384));
        let g = unroll(
            &frame,
            3,
            Time::new(crate::multimedia::ENCODER_PERIOD),
            &[tmpl],
        )
        .unwrap();
        assert_eq!(g.task_count(), 72);
        // The cross edge makes frame 1's ME an ancestor-dependent task.
        let me1 = TaskId::new(frame.task_count() as u32 + me.raw());
        let preds: Vec<TaskId> = g.predecessors(me1).collect();
        assert!(preds.iter().any(|p| g.task(*p).name() == "f0.frame_store"));
    }

    #[test]
    fn unknown_name_lookup_returns_none() {
        let f = frame_graph();
        assert!(task_by_name(&f, "ghost").is_none());
        assert_eq!(task_by_name(&f, "src"), Some(TaskId::new(0)));
    }
}
