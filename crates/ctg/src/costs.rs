//! Synthesis of heterogeneous per-PE cost vectors.
//!
//! The paper's benchmarks come with profiled per-PE execution time and
//! energy arrays; the profiles themselves are not published. This module
//! derives plausible `R_i` / `E_i` vectors from a platform's
//! [`PeClass`]es: a task with a given *base* execution time and a given
//! DSP-affinity runs faster/leaner on PEs whose affinity matches, scaled
//! by the class speed/energy factors, with optional per-PE jitter. The
//! resulting heterogeneity (nonzero `VAR_r`, `VAR_e`) is exactly what the
//! EAS weights consume.

use rand::Rng;

use noc_platform::catalog::PeClass;
use noc_platform::units::{Energy, Time};

/// Nominal computation power used to convert execution time to energy:
/// a task running for `T` ticks on the reference PE consumes
/// `T * NOMINAL_POWER_NJ_PER_TICK` nJ.
pub const NOMINAL_POWER_NJ_PER_TICK: f64 = 1.0;

/// Derives per-PE execution cost vectors from PE classes.
///
/// ```
/// use noc_ctg::costs::CostSynthesizer;
/// use noc_platform::catalog::PeCatalog;
///
/// let classes = PeCatalog::date04().mix_for(4);
/// let synth = CostSynthesizer::new(&classes);
/// let (times, energies) = synth.vectors(200.0, 0.9);
/// assert_eq!(times.len(), 4);
/// assert_eq!(energies.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CostSynthesizer<'a> {
    classes: &'a [PeClass],
    nominal_power: f64,
}

impl<'a> CostSynthesizer<'a> {
    /// Creates a synthesizer over the given per-tile PE classes.
    #[must_use]
    pub fn new(classes: &'a [PeClass]) -> Self {
        CostSynthesizer {
            classes,
            nominal_power: NOMINAL_POWER_NJ_PER_TICK,
        }
    }

    /// Overrides the nominal computation power (nJ per tick on the
    /// reference PE).
    #[must_use]
    pub fn with_nominal_power(mut self, nj_per_tick: f64) -> Self {
        self.nominal_power = nj_per_tick;
        self
    }

    /// Multipliers applied to the base time/energy on one class for a
    /// task with the given affinity: a perfect affinity match earns a
    /// 20% discount, a complete mismatch a 20% penalty.
    fn class_multipliers(&self, class: &PeClass, affinity: f64) -> (f64, f64) {
        let matching = 1.0 - (affinity - class.affinity).abs();
        let skew = 1.2 - 0.4 * matching;
        (class.speed_factor * skew, class.energy_factor * skew)
    }

    /// Deterministic cost vectors (no jitter) for a task with the given
    /// base execution time (ticks on the reference PE) and affinity in
    /// `0..=1`.
    #[must_use]
    pub fn vectors(&self, base_time: f64, affinity: f64) -> (Vec<Time>, Vec<Energy>) {
        let mut times = Vec::with_capacity(self.classes.len());
        let mut energies = Vec::with_capacity(self.classes.len());
        for class in self.classes {
            let (ts, es) = self.class_multipliers(class, affinity);
            times.push(Time::new(((base_time * ts).round() as u64).max(1)));
            energies.push(Energy::from_nj(
                (base_time * self.nominal_power * es).max(1e-6),
            ));
        }
        (times, energies)
    }

    /// Cost vectors with multiplicative per-PE jitter drawn uniformly
    /// from `1 ± jitter` (e.g. `0.1` for ±10%), modelling per-task
    /// idiosyncrasies the class factors cannot capture.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not within `0.0..1.0`.
    #[must_use]
    pub fn vectors_with_jitter<R: Rng + ?Sized>(
        &self,
        base_time: f64,
        affinity: f64,
        jitter: f64,
        rng: &mut R,
    ) -> (Vec<Time>, Vec<Energy>) {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in 0.0..1.0");
        let mut times = Vec::with_capacity(self.classes.len());
        let mut energies = Vec::with_capacity(self.classes.len());
        for class in self.classes {
            let (ts, es) = self.class_multipliers(class, affinity);
            let jt: f64 = rng.random_range(1.0 - jitter..=1.0 + jitter);
            let je: f64 = rng.random_range(1.0 - jitter..=1.0 + jitter);
            times.push(Time::new(((base_time * ts * jt).round() as u64).max(1)));
            energies.push(Energy::from_nj(
                (base_time * self.nominal_power * es * je).max(1e-6),
            ));
        }
        (times, energies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::catalog::PeCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn heterogeneous_classes_yield_nonzero_variance() {
        let classes = PeCatalog::date04().mix_for(4);
        let synth = CostSynthesizer::new(&classes);
        let (times, energies) = synth.vectors(300.0, 0.8);
        let tmin = times.iter().min().unwrap();
        let tmax = times.iter().max().unwrap();
        assert!(tmax > tmin, "times should differ across classes: {times:?}");
        let emin = energies
            .iter()
            .map(|e| e.as_nj())
            .fold(f64::INFINITY, f64::min);
        let emax = energies.iter().map(|e| e.as_nj()).fold(0.0, f64::max);
        assert!(emax > emin);
    }

    #[test]
    fn homogeneous_classes_yield_equal_costs() {
        let classes = PeCatalog::homogeneous().mix_for(4);
        let synth = CostSynthesizer::new(&classes);
        let (times, energies) = synth.vectors(300.0, 0.5);
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        assert!(energies.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dsp_affine_task_is_cheaper_on_dsp() {
        let classes = PeCatalog::date04().mix_for(4); // [fast-cpu, mid, low-power, dsp]
        let synth = CostSynthesizer::new(&classes);
        let (_, high) = synth.vectors(300.0, 0.95); // DSP-affine
        let (_, low) = synth.vectors(300.0, 0.05); // control-code task
                                                   // Energy on DSP (index 3) relative to mid CPU (index 1) should
                                                   // improve for the DSP-affine task.
        let ratio_high = high[3].as_nj() / high[1].as_nj();
        let ratio_low = low[3].as_nj() / low[1].as_nj();
        assert!(ratio_high < ratio_low);
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let classes = PeCatalog::date04().mix_for(4);
        let synth = CostSynthesizer::new(&classes);
        let (base_t, _) = synth.vectors(500.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let (jt, _) = synth.vectors_with_jitter(500.0, 0.5, 0.1, &mut rng);
        for (a, b) in base_t.iter().zip(&jt) {
            let ratio = b.as_f64() / a.as_f64();
            assert!(
                (0.85..=1.15).contains(&ratio),
                "jitter out of bounds: {ratio}"
            );
        }
        // Determinism under the same seed.
        let mut rng2 = StdRng::seed_from_u64(7);
        let (jt2, _) = synth.vectors_with_jitter(500.0, 0.5, 0.1, &mut rng2);
        assert_eq!(jt, jt2);
    }

    #[test]
    fn times_never_round_to_zero() {
        let classes = PeCatalog::date04().mix_for(4);
        let synth = CostSynthesizer::new(&classes);
        let (times, _) = synth.vectors(0.1, 0.5);
        assert!(times.iter().all(|t| t.ticks() >= 1));
    }

    #[test]
    fn nominal_power_scales_energy() {
        let classes = PeCatalog::homogeneous().mix_for(1);
        let synth = CostSynthesizer::new(&classes).with_nominal_power(2.0);
        let (_, e2) = synth.vectors(100.0, 0.5);
        let synth1 = CostSynthesizer::new(&classes);
        let (_, e1) = synth1.vectors(100.0, 0.5);
        assert!((e2[0].as_nj() - 2.0 * e1[0].as_nj()).abs() < 1e-9);
    }
}
