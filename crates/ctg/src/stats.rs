//! Task-graph characterization statistics.
//!
//! The scheduling literature characterizes benchmark graphs by a few
//! standard figures — depth, width, degree, and the
//! communication-to-computation ratio (CCR) — which predict how much a
//! communication-aware scheduler can matter. These are reported by the
//! CLI's `info` command and usable for workload sanity checks.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::analysis::GraphAnalysis;
use crate::graph::TaskGraph;

/// Shape and load statistics of one task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependency arcs.
    pub edges: usize,
    /// Longest chain length (number of tasks on the longest path).
    pub depth: usize,
    /// Maximum antichain estimate: the largest number of tasks sharing
    /// the same longest-path depth level.
    pub width: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Total mean computation (sum of `M_ti`), in ticks.
    pub total_mean_work: f64,
    /// Total communication volume, in bits.
    pub total_volume_bits: u64,
    /// Communication-to-computation ratio: mean transfer time (at
    /// `bits_per_tick`) over mean execution time, per edge/task.
    pub ccr: f64,
    /// Tasks carrying explicit deadlines.
    pub deadline_tasks: usize,
}

impl GraphStats {
    /// Computes the statistics, pricing communication at
    /// `bits_per_tick` (pass the platform's link bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_tick` is not positive.
    #[must_use]
    pub fn compute(graph: &TaskGraph, bits_per_tick: f64) -> Self {
        assert!(bits_per_tick > 0.0, "bandwidth must be positive");
        let analysis = GraphAnalysis::new(graph);

        // Depth levels by longest chain (task count, not time).
        let mut level = vec![0usize; graph.task_count()];
        for &t in graph.topological_order() {
            let l = graph
                .predecessors(t)
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[t.index()] = l;
        }
        let depth = level.iter().max().map_or(0, |m| m + 1);
        let mut per_level = vec![0usize; depth.max(1)];
        for &l in &level {
            per_level[l] += 1;
        }
        let width = per_level.iter().copied().max().unwrap_or(0);

        let total_mean_work: f64 = graph
            .task_ids()
            .map(|t| graph.task(t).mean_exec_time())
            .sum();
        let total_volume_bits = graph.total_volume().bits();
        let mean_exec = total_mean_work / graph.task_count() as f64;
        let data_edges = graph.edges().iter().filter(|e| !e.volume.is_zero()).count();
        let mean_comm = if data_edges == 0 {
            0.0
        } else {
            (total_volume_bits as f64 / bits_per_tick) / data_edges as f64
        };
        let _ = analysis; // analysis retained for future path statistics

        GraphStats {
            tasks: graph.task_count(),
            edges: graph.edge_count(),
            depth,
            width,
            avg_out_degree: graph.edge_count() as f64 / graph.task_count() as f64,
            total_mean_work,
            total_volume_bits,
            ccr: if mean_exec == 0.0 {
                0.0
            } else {
                mean_comm / mean_exec
            },
            deadline_tasks: graph.deadline_tasks().count(),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tasks            {}", self.tasks)?;
        writeln!(f, "arcs             {}", self.edges)?;
        writeln!(f, "depth            {}", self.depth)?;
        writeln!(f, "width            {}", self.width)?;
        writeln!(f, "avg out-degree   {:.2}", self.avg_out_degree)?;
        writeln!(f, "mean work        {:.0} ticks", self.total_mean_work)?;
        writeln!(f, "total volume     {} bits", self.total_volume_bits)?;
        writeln!(f, "CCR              {:.3}", self.ccr)?;
        write!(f, "deadline tasks   {}", self.deadline_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use noc_platform::units::{Energy, Time, Volume};

    /// chain a -> b -> c plus parallel d: depth 3, width 2.
    fn sample() -> TaskGraph {
        let mut b = TaskGraph::builder("s", 1);
        let a = b.add_task(Task::uniform("a", 1, Time::new(100), Energy::from_nj(1.0)));
        let t2 = b.add_task(Task::uniform("b", 1, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(
            Task::uniform("c", 1, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(500)),
        );
        let _d = b.add_task(Task::uniform("d", 1, Time::new(100), Energy::from_nj(1.0)));
        b.add_edge(a, t2, Volume::from_bits(3200)).unwrap();
        b.add_edge(t2, c, Volume::from_bits(3200)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shape_statistics() {
        let s = GraphStats::compute(&sample(), 32.0);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 2);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 2); // level 0 holds a and d
        assert_eq!(s.deadline_tasks, 1);
        assert!((s.avg_out_degree - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ccr_prices_communication_against_computation() {
        // Each edge: 3200 bits / 32 = 100 ticks; mean exec 100 ticks.
        let s = GraphStats::compute(&sample(), 32.0);
        assert!((s.ccr - 1.0).abs() < 1e-12);
        // Faster links halve the CCR.
        let s = GraphStats::compute(&sample(), 64.0);
        assert!((s.ccr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn control_only_graph_has_zero_ccr() {
        let mut b = TaskGraph::builder("c", 1);
        let a = b.add_task(Task::uniform("a", 1, Time::new(10), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 1, Time::new(10), Energy::from_nj(1.0)));
        b.add_control_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g, 32.0);
        assert_eq!(s.ccr, 0.0);
        assert_eq!(s.total_volume_bits, 0);
    }

    #[test]
    fn display_lists_all_fields() {
        let text = GraphStats::compute(&sample(), 32.0).to_string();
        for key in ["tasks", "depth", "width", "CCR", "deadline"] {
            assert!(text.contains(key), "missing {key}");
        }
    }
}
