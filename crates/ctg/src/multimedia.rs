//! The paper's multimedia system benchmarks (MSB) as synthetic profiled
//! CTGs.
//!
//! Sec. 6.2 of the paper evaluates three systems:
//!
//! 1. an **MP3/H.263 A/V encoder** pair partitioned into 24 tasks,
//!    scheduled on a 2x2 heterogeneous NoC,
//! 2. an **MP3/H.263 A/V decoder** pair with 16 tasks on a 2x2 NoC,
//! 3. the **integrated** encoder + decoder system with 40 tasks on a
//!    3x3 NoC,
//!
//! each profiled with three video clips (*akiyo*, *foreman*, *toybox*).
//! The authors' profiled task graphs are not published, so this module
//! reconstructs structurally faithful task graphs from the well-known
//! MP3 and H.263 codec block diagrams (sub-band analysis / MDCT /
//! psychoacoustics / quantization / Huffman on the audio side; motion
//! estimation / DCT / quantization / reconstruction loop / VLC on the
//! video side), and models clips as complexity profiles that scale the
//! motion-, texture- and audio-dependent task costs and communication
//! volumes. See `DESIGN.md` §4 for the substitution rationale.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::units::{Time, Volume};
use noc_platform::Platform;

use crate::costs::CostSynthesizer;
use crate::graph::{TaskGraph, TaskGraphBuilder};
use crate::task::{Task, TaskId};
use crate::CtgError;

/// Encoder frame period in ticks at performance ratio 1.0 (the paper's
/// baseline 40 frames/s).
pub const ENCODER_PERIOD: u64 = 12_000;
/// Decoder frame period in ticks at performance ratio 1.0 (the paper's
/// baseline 67 frames/s, i.e. `40/67` of the encoder period).
pub const DECODER_PERIOD: u64 = 7_200;

/// A video clip complexity profile.
///
/// ```
/// use noc_ctg::multimedia::Clip;
/// assert!(Clip::Toybox.motion() > Clip::Akiyo.motion());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Clip {
    /// Head-and-shoulders news sequence: little motion, smooth texture.
    Akiyo,
    /// Construction-site sequence: medium motion and texture.
    Foreman,
    /// Toy-box sequence: high motion, busy texture.
    Toybox,
}

impl Clip {
    /// All clips in paper order.
    #[must_use]
    pub const fn all() -> [Clip; 3] {
        [Clip::Akiyo, Clip::Foreman, Clip::Toybox]
    }

    /// Lower-case clip name as used in the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Clip::Akiyo => "akiyo",
            Clip::Foreman => "foreman",
            Clip::Toybox => "toybox",
        }
    }

    /// Motion-complexity multiplier (drives ME/MC and residual coding).
    #[must_use]
    pub const fn motion(self) -> f64 {
        match self {
            Clip::Akiyo => 0.6,
            Clip::Foreman => 1.0,
            Clip::Toybox => 1.4,
        }
    }

    /// Texture-complexity multiplier (drives DCT/quantizer/VLC).
    #[must_use]
    pub const fn texture(self) -> f64 {
        match self {
            Clip::Akiyo => 0.8,
            Clip::Foreman => 1.0,
            Clip::Toybox => 1.2,
        }
    }

    /// Audio-complexity multiplier (drives the MP3 chain).
    #[must_use]
    pub const fn audio(self) -> f64 {
        match self {
            Clip::Akiyo => 0.9,
            Clip::Foreman => 1.0,
            Clip::Toybox => 1.1,
        }
    }
}

impl fmt::Display for Clip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which clip-complexity dimension scales a task or transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Fixed,
    Motion,
    Texture,
    Audio,
}

impl Scale {
    fn factor(self, clip: Clip) -> f64 {
        match self {
            Scale::Fixed => 1.0,
            Scale::Motion => clip.motion(),
            Scale::Texture => clip.texture(),
            Scale::Audio => clip.audio(),
        }
    }
}

/// Declarative task row: (name, base time, DSP affinity, scaling).
struct TaskSpec(&'static str, f64, f64, Scale);
/// Declarative edge row: (src name, dst name, base bits, scaling).
struct EdgeSpec(&'static str, &'static str, u64, Scale);

/// The multimedia system benchmark applications of Sec. 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultimediaApp {
    /// MP3 + H.263 encoder pair, 24 tasks (Table 1).
    AvEncoder,
    /// MP3 + H.263 decoder pair, 16 tasks (Table 2).
    AvDecoder,
    /// Integrated encoder + decoder system, 40 tasks (Table 3).
    AvIntegrated,
}

impl MultimediaApp {
    /// All applications in paper order.
    #[must_use]
    pub const fn all() -> [MultimediaApp; 3] {
        [
            MultimediaApp::AvEncoder,
            MultimediaApp::AvDecoder,
            MultimediaApp::AvIntegrated,
        ]
    }

    /// The task count the paper reports for the application.
    #[must_use]
    pub const fn task_count(self) -> usize {
        match self {
            MultimediaApp::AvEncoder => 24,
            MultimediaApp::AvDecoder => 16,
            MultimediaApp::AvIntegrated => 40,
        }
    }

    /// The mesh `(cols, rows)` the paper schedules the application onto.
    #[must_use]
    pub const fn recommended_mesh(self) -> (u16, u16) {
        match self {
            MultimediaApp::AvEncoder | MultimediaApp::AvDecoder => (2, 2),
            MultimediaApp::AvIntegrated => (3, 3),
        }
    }

    /// Short name for reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MultimediaApp::AvEncoder => "av-encoder",
            MultimediaApp::AvDecoder => "av-decoder",
            MultimediaApp::AvIntegrated => "av-integrated",
        }
    }

    /// Builds the application's CTG for `clip` at the baseline
    /// performance (ratio 1.0).
    ///
    /// # Errors
    ///
    /// Propagates [`CtgError`] from graph assembly.
    pub fn build(self, clip: Clip, platform: &Platform) -> Result<TaskGraph, CtgError> {
        self.build_with_performance_ratio(clip, platform, 1.0)
    }

    /// Builds the application's CTG with all deadlines divided by
    /// `ratio` — the paper's Fig. 7 "unified performance ratio" sweep
    /// (e.g. `1.4` means 40 x 1.4 = 56 encoded frames/s and
    /// 67 x 1.4 ≈ 93.8 decoded frames/s are required).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    ///
    /// # Errors
    ///
    /// Propagates [`CtgError`] from graph assembly.
    pub fn build_with_performance_ratio(
        self,
        clip: Clip,
        platform: &Platform,
        ratio: f64,
    ) -> Result<TaskGraph, CtgError> {
        assert!(ratio > 0.0, "performance ratio must be positive");
        let name = format!("{}-{}", self.name(), clip.name());
        let mut builder = TaskGraph::builder(name, platform.tile_count());
        match self {
            MultimediaApp::AvEncoder => {
                build_section(
                    &mut builder,
                    platform,
                    clip,
                    ratio,
                    &encoder_tasks(),
                    &encoder_edges(),
                    "",
                )?;
            }
            MultimediaApp::AvDecoder => {
                build_section(
                    &mut builder,
                    platform,
                    clip,
                    ratio,
                    &decoder_tasks(),
                    &decoder_edges(),
                    "",
                )?;
            }
            MultimediaApp::AvIntegrated => {
                build_section(
                    &mut builder,
                    platform,
                    clip,
                    ratio,
                    &encoder_tasks(),
                    &encoder_edges(),
                    "enc.",
                )?;
                build_section(
                    &mut builder,
                    platform,
                    clip,
                    ratio,
                    &decoder_tasks(),
                    &decoder_edges(),
                    "dec.",
                )?;
            }
        }
        builder.build()
    }
}

impl fmt::Display for MultimediaApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// MP3 + H.263 **encoder**: 24 tasks. Names, base times (ticks on the
/// reference PE), DSP affinity, and the clip dimension that scales them.
fn encoder_tasks() -> Vec<TaskSpec> {
    vec![
        // --- MP3 encoder chain (9 tasks) ---
        TaskSpec("src_audio", 220.0, 0.10, Scale::Fixed),
        TaskSpec("subband_l", 620.0, 0.92, Scale::Audio),
        TaskSpec("subband_r", 620.0, 0.92, Scale::Audio),
        TaskSpec("mdct_l", 540.0, 0.96, Scale::Audio),
        TaskSpec("mdct_r", 540.0, 0.96, Scale::Audio),
        TaskSpec("psycho", 900.0, 0.70, Scale::Audio),
        TaskSpec("quant_a", 760.0, 0.62, Scale::Audio),
        TaskSpec("huffman", 500.0, 0.28, Scale::Audio),
        TaskSpec("pack_audio", 260.0, 0.12, Scale::Fixed),
        // --- H.263 encoder chain (14 tasks) ---
        TaskSpec("src_video", 320.0, 0.08, Scale::Fixed),
        TaskSpec("preproc", 560.0, 0.55, Scale::Texture),
        TaskSpec("motion_est", 1_500.0, 0.85, Scale::Motion),
        TaskSpec("motion_comp", 760.0, 0.82, Scale::Motion),
        TaskSpec("dct", 820.0, 0.97, Scale::Texture),
        TaskSpec("quant_v", 520.0, 0.66, Scale::Texture),
        TaskSpec("zigzag", 240.0, 0.40, Scale::Texture),
        TaskSpec("vlc", 640.0, 0.30, Scale::Texture),
        TaskSpec("rate_ctrl", 300.0, 0.18, Scale::Fixed),
        TaskSpec("inv_quant", 380.0, 0.68, Scale::Texture),
        TaskSpec("idct", 780.0, 0.97, Scale::Texture),
        TaskSpec("reconstruct", 480.0, 0.60, Scale::Motion),
        TaskSpec("loop_filter", 520.0, 0.78, Scale::Texture),
        TaskSpec("frame_store", 280.0, 0.15, Scale::Fixed),
        // --- A/V mux (1 task) ---
        TaskSpec("mux", 240.0, 0.10, Scale::Fixed),
    ]
}

fn encoder_edges() -> Vec<EdgeSpec> {
    vec![
        // MP3 side.
        EdgeSpec("src_audio", "subband_l", 4_096, Scale::Audio),
        EdgeSpec("src_audio", "subband_r", 4_096, Scale::Audio),
        EdgeSpec("src_audio", "psycho", 4_096, Scale::Audio),
        EdgeSpec("subband_l", "mdct_l", 3_072, Scale::Audio),
        EdgeSpec("subband_r", "mdct_r", 3_072, Scale::Audio),
        EdgeSpec("mdct_l", "quant_a", 3_072, Scale::Audio),
        EdgeSpec("mdct_r", "quant_a", 3_072, Scale::Audio),
        EdgeSpec("psycho", "quant_a", 1_024, Scale::Audio),
        EdgeSpec("quant_a", "huffman", 2_048, Scale::Audio),
        EdgeSpec("huffman", "pack_audio", 1_536, Scale::Audio),
        EdgeSpec("pack_audio", "mux", 1_536, Scale::Audio),
        // H.263 side.
        EdgeSpec("src_video", "preproc", 16_384, Scale::Fixed),
        EdgeSpec("preproc", "motion_est", 16_384, Scale::Fixed),
        EdgeSpec("preproc", "motion_comp", 16_384, Scale::Fixed),
        EdgeSpec("motion_est", "motion_comp", 1_024, Scale::Motion),
        EdgeSpec("motion_comp", "dct", 8_192, Scale::Motion),
        EdgeSpec("dct", "quant_v", 6_144, Scale::Texture),
        EdgeSpec("quant_v", "zigzag", 4_096, Scale::Texture),
        EdgeSpec("zigzag", "vlc", 4_096, Scale::Texture),
        EdgeSpec("vlc", "rate_ctrl", 512, Scale::Fixed),
        EdgeSpec("vlc", "mux", 3_072, Scale::Texture),
        EdgeSpec("quant_v", "inv_quant", 4_096, Scale::Texture),
        EdgeSpec("inv_quant", "idct", 6_144, Scale::Texture),
        EdgeSpec("idct", "reconstruct", 8_192, Scale::Texture),
        EdgeSpec("motion_comp", "reconstruct", 8_192, Scale::Motion),
        EdgeSpec("reconstruct", "loop_filter", 16_384, Scale::Fixed),
        EdgeSpec("loop_filter", "frame_store", 16_384, Scale::Fixed),
    ]
}

/// MP3 + H.263 **decoder**: 16 tasks.
fn decoder_tasks() -> Vec<TaskSpec> {
    vec![
        TaskSpec("demux", 260.0, 0.10, Scale::Fixed),
        // MP3 decoder chain (7 tasks).
        TaskSpec("huff_dec", 520.0, 0.30, Scale::Audio),
        TaskSpec("dequant_a", 460.0, 0.62, Scale::Audio),
        TaskSpec("imdct_l", 560.0, 0.96, Scale::Audio),
        TaskSpec("imdct_r", 560.0, 0.96, Scale::Audio),
        TaskSpec("synth_l", 640.0, 0.92, Scale::Audio),
        TaskSpec("synth_r", 640.0, 0.92, Scale::Audio),
        TaskSpec("audio_out", 240.0, 0.12, Scale::Fixed),
        // H.263 decoder chain (8 tasks).
        TaskSpec("vld", 620.0, 0.30, Scale::Texture),
        TaskSpec("dequant_v", 380.0, 0.68, Scale::Texture),
        TaskSpec("idct_d", 780.0, 0.97, Scale::Texture),
        TaskSpec("motion_comp_d", 720.0, 0.82, Scale::Motion),
        TaskSpec("reconstruct_d", 460.0, 0.60, Scale::Motion),
        TaskSpec("frame_store_d", 280.0, 0.15, Scale::Fixed),
        TaskSpec("post_filter", 540.0, 0.75, Scale::Texture),
        TaskSpec("display", 300.0, 0.10, Scale::Fixed),
    ]
}

fn decoder_edges() -> Vec<EdgeSpec> {
    vec![
        EdgeSpec("demux", "huff_dec", 1_536, Scale::Audio),
        EdgeSpec("huff_dec", "dequant_a", 2_048, Scale::Audio),
        EdgeSpec("dequant_a", "imdct_l", 3_072, Scale::Audio),
        EdgeSpec("dequant_a", "imdct_r", 3_072, Scale::Audio),
        EdgeSpec("imdct_l", "synth_l", 3_072, Scale::Audio),
        EdgeSpec("imdct_r", "synth_r", 3_072, Scale::Audio),
        EdgeSpec("synth_l", "audio_out", 4_096, Scale::Audio),
        EdgeSpec("synth_r", "audio_out", 4_096, Scale::Audio),
        EdgeSpec("demux", "vld", 3_072, Scale::Texture),
        EdgeSpec("vld", "dequant_v", 4_096, Scale::Texture),
        EdgeSpec("dequant_v", "idct_d", 6_144, Scale::Texture),
        EdgeSpec("vld", "motion_comp_d", 1_024, Scale::Motion),
        EdgeSpec("idct_d", "reconstruct_d", 8_192, Scale::Texture),
        EdgeSpec("motion_comp_d", "reconstruct_d", 8_192, Scale::Motion),
        EdgeSpec("reconstruct_d", "frame_store_d", 16_384, Scale::Fixed),
        EdgeSpec("reconstruct_d", "post_filter", 16_384, Scale::Fixed),
        EdgeSpec("post_filter", "display", 16_384, Scale::Fixed),
    ]
}

/// Instantiates a task/edge table into `builder`, scaling costs by the
/// clip profile and deadlines by `1/ratio`.
fn build_section(
    builder: &mut TaskGraphBuilder,
    platform: &Platform,
    clip: Clip,
    ratio: f64,
    tasks: &[TaskSpec],
    edges: &[EdgeSpec],
    prefix: &str,
) -> Result<(), CtgError> {
    let synth = CostSynthesizer::new(platform.pe_classes());
    let is_decoder_section = tasks.iter().any(|t| t.0 == "demux");
    let period = if is_decoder_section {
        DECODER_PERIOD
    } else {
        ENCODER_PERIOD
    };
    let deadline = Time::new(((period as f64) / ratio).round() as u64);

    let base = builder.task_count() as u32;
    let mut index_of = std::collections::HashMap::new();
    for (i, TaskSpec(name, base_time, affinity, scale)) in tasks.iter().enumerate() {
        let scaled = base_time * scale.factor(clip);
        let (times, energies) = synth.vectors(scaled, *affinity);
        let mut task = Task::new(format!("{prefix}{name}"), times, energies);
        // Sinks of the per-frame dataflow must finish within the frame
        // period (resolved after edges are known; here we mark everything
        // and strip non-sinks below).
        task = task.with_deadline(deadline);
        let id = builder.add_task(task);
        index_of.insert(*name, id);
        debug_assert_eq!(id, TaskId::new(base + i as u32));
    }
    for EdgeSpec(src, dst, bits, scale) in edges {
        let v = Volume::from_bits(((*bits as f64) * scale.factor(clip)).round() as u64);
        builder.add_edge(index_of[src], index_of[dst], v)?;
    }
    // Keep deadlines only on dataflow sinks: interior tasks inherit their
    // constraints through the graph (the paper specifies deadlines per
    // constrained task; a per-frame pipeline constrains its outputs).
    let mut has_out = vec![false; tasks.len()];
    for EdgeSpec(src, _, _, _) in edges {
        has_out[index_of[src].index() - base as usize] = true;
    }
    for (i, TaskSpec(name, ..)) in tasks.iter().enumerate() {
        if has_out[i] {
            let id = index_of[name];
            let t = builder.task_mut(id);
            *t = t.clone().with_deadline(Time::INFINITY);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    fn mesh(cols: u16, rows: u16) -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(cols, rows))
            .build()
            .unwrap()
    }

    #[test]
    fn task_counts_match_the_paper() {
        let p22 = mesh(2, 2);
        let p33 = mesh(3, 3);
        for app in MultimediaApp::all() {
            let platform = if app == MultimediaApp::AvIntegrated {
                &p33
            } else {
                &p22
            };
            let g = app.build(Clip::Foreman, platform).unwrap();
            assert_eq!(g.task_count(), app.task_count(), "{app}");
        }
    }

    #[test]
    fn graphs_are_dags_with_deadlines_on_sinks() {
        let p = mesh(2, 2);
        let g = MultimediaApp::AvEncoder.build(Clip::Akiyo, &p).unwrap();
        for s in g.sinks() {
            assert!(
                g.task(s).has_deadline(),
                "sink {} must carry a deadline",
                g.task(s).name()
            );
        }
        // Interior tasks carry none.
        for t in g.task_ids() {
            if g.outgoing(t).iter().next().is_some() {
                assert!(
                    !g.task(t).has_deadline(),
                    "interior {} has deadline",
                    g.task(t).name()
                );
            }
        }
    }

    #[test]
    fn toybox_is_heavier_than_akiyo() {
        let p = mesh(2, 2);
        let heavy = MultimediaApp::AvEncoder.build(Clip::Toybox, &p).unwrap();
        let light = MultimediaApp::AvEncoder.build(Clip::Akiyo, &p).unwrap();
        let work =
            |g: &TaskGraph| -> f64 { g.task_ids().map(|t| g.task(t).mean_exec_time()).sum() };
        assert!(work(&heavy) > work(&light));
        assert!(heavy.total_volume() > light.total_volume());
    }

    #[test]
    fn performance_ratio_tightens_deadlines() {
        let p = mesh(2, 2);
        let base = MultimediaApp::AvEncoder.build(Clip::Foreman, &p).unwrap();
        let tight = MultimediaApp::AvEncoder
            .build_with_performance_ratio(Clip::Foreman, &p, 1.5)
            .unwrap();
        for (a, b) in base.task_ids().zip(tight.task_ids()) {
            match (base.task(a).deadline(), tight.task(b).deadline()) {
                (Some(da), Some(db)) => {
                    assert_eq!(db.ticks(), ((da.ticks() as f64) / 1.5).round() as u64)
                }
                (None, None) => {}
                _ => panic!("deadline presence must not change with ratio"),
            }
        }
    }

    #[test]
    fn integrated_app_is_disjoint_union() {
        let p = mesh(3, 3);
        let g = MultimediaApp::AvIntegrated
            .build(Clip::Foreman, &p)
            .unwrap();
        assert_eq!(g.task_count(), 40);
        // Encoder tasks are prefixed enc., decoder tasks dec..
        let enc = g
            .tasks()
            .iter()
            .filter(|t| t.name().starts_with("enc."))
            .count();
        let dec = g
            .tasks()
            .iter()
            .filter(|t| t.name().starts_with("dec."))
            .count();
        assert_eq!(enc, 24);
        assert_eq!(dec, 16);
        // No cross edges.
        for e in g.edges() {
            let a = g.task(e.src).name().starts_with("enc.");
            let b = g.task(e.dst).name().starts_with("enc.");
            assert_eq!(a, b, "encoder and decoder subgraphs must be disjoint");
        }
    }

    #[test]
    fn decoder_deadline_is_tighter_than_encoder() {
        let p = mesh(3, 3);
        let g = MultimediaApp::AvIntegrated
            .build(Clip::Foreman, &p)
            .unwrap();
        let enc_deadline = g
            .task_ids()
            .filter(|&t| g.task(t).name().starts_with("enc.") && g.task(t).has_deadline())
            .map(|t| g.task(t).deadline().unwrap())
            .max()
            .unwrap();
        let dec_deadline = g
            .task_ids()
            .filter(|&t| g.task(t).name().starts_with("dec.") && g.task(t).has_deadline())
            .map(|t| g.task(t).deadline().unwrap())
            .max()
            .unwrap();
        assert!(dec_deadline < enc_deadline);
    }

    #[test]
    #[should_panic(expected = "performance ratio")]
    fn non_positive_ratio_is_rejected() {
        let p = mesh(2, 2);
        let _ = MultimediaApp::AvEncoder.build_with_performance_ratio(Clip::Akiyo, &p, 0.0);
    }

    #[test]
    fn dsp_kernels_have_high_variance_on_heterogeneous_mesh() {
        let p = mesh(2, 2);
        let g = MultimediaApp::AvEncoder.build(Clip::Foreman, &p).unwrap();
        let dct = g.task_ids().find(|&t| g.task(t).name() == "dct").unwrap();
        assert!(g.task(dct).exec_time_variance() > 0.0);
        assert!(g.task(dct).exec_energy_variance() > 0.0);
    }
}
