//! DAG analyses on task graphs: longest paths, ancestry, and derived
//! (effective) deadlines.
//!
//! These are the graph-theoretic building blocks of both the EAS slack
//! budgeting step (longest mean-execution paths to deadline tasks) and
//! the EDF baseline (deadline propagation to unconstrained ancestors).

use crate::graph::TaskGraph;
use crate::task::TaskId;
use noc_platform::units::Time;

/// Cached analysis results for one [`TaskGraph`].
///
/// ```
/// use noc_ctg::prelude::*;
/// use noc_platform::units::{Energy, Time, Volume};
///
/// # fn main() -> Result<(), CtgError> {
/// let mut b = TaskGraph::builder("chain", 1);
/// let a = b.add_task(Task::uniform("a", 1, Time::new(100), Energy::from_nj(1.0)));
/// let c = b.add_task(Task::uniform("c", 1, Time::new(200), Energy::from_nj(1.0)));
/// b.add_edge(a, c, Volume::from_bits(8))?;
/// let g = b.build()?;
/// let analysis = GraphAnalysis::new(&g);
/// assert_eq!(analysis.mean_finish(c).round() as u64, 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphAnalysis {
    /// Longest mean-exec-time finish per task (forward DP).
    mean_finish: Vec<f64>,
    /// Predecessor on the longest mean path (for path extraction).
    mean_finish_pred: Vec<Option<TaskId>>,
    /// `ancestors[t]` marks all strict ancestors of `t`.
    ancestors: Vec<Vec<bool>>,
}

impl GraphAnalysis {
    /// Runs all analyses for `graph`.
    #[must_use]
    pub fn new(graph: &TaskGraph) -> Self {
        let n = graph.task_count();
        let mut mean_finish = vec![0.0f64; n];
        let mut mean_finish_pred: Vec<Option<TaskId>> = vec![None; n];
        for &t in graph.topological_order() {
            let mean = graph.task(t).mean_exec_time();
            let mut best_start = 0.0f64;
            let mut best_pred = None;
            for p in graph.predecessors(t) {
                let f = mean_finish[p.index()];
                if f > best_start {
                    best_start = f;
                    best_pred = Some(p);
                }
            }
            mean_finish[t.index()] = best_start + mean;
            mean_finish_pred[t.index()] = best_pred;
        }

        let mut ancestors: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for &t in graph.topological_order() {
            // ancestors(t) = union over preds p of ({p} ∪ ancestors(p)).
            let mut row = vec![false; n];
            for p in graph.predecessors(t) {
                row[p.index()] = true;
                let pa = &ancestors[p.index()];
                for i in 0..n {
                    if pa[i] {
                        row[i] = true;
                    }
                }
            }
            ancestors[t.index()] = row;
        }

        GraphAnalysis {
            mean_finish,
            mean_finish_pred,
            ancestors,
        }
    }

    /// Longest-path finish time of `t` when every task costs its *mean*
    /// execution time (`M_ti`) and communication is free — the quantity
    /// the paper's slack budgeting reasons about.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn mean_finish(&self, t: TaskId) -> f64 {
        self.mean_finish[t.index()]
    }

    /// The longest mean-exec path ending at `t`, source first, `t` last.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn longest_mean_path_to(&self, t: TaskId) -> Vec<TaskId> {
        let mut rev = vec![t];
        let mut cur = t;
        while let Some(p) = self.mean_finish_pred[cur.index()] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// `true` if `a` is a strict ancestor of `b` (there is a nonempty
    /// dependency path `a -> ... -> b`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn is_ancestor(&self, a: TaskId, b: TaskId) -> bool {
        self.ancestors[b.index()][a.index()]
    }

    /// All strict ancestors of `t`, ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn ancestors_of(&self, t: TaskId) -> Vec<TaskId> {
        self.ancestors[t.index()]
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| TaskId::new(i as u32))
            .collect()
    }
}

/// Derived ("effective") deadlines: propagates explicit deadlines
/// backwards so every ancestor of a constrained task gets the latest
/// finish time that still lets the constrained descendant meet its
/// deadline (assuming mean execution times and free communication):
///
/// ```text
/// d'(t) = min( d(t), min over successors s of (d'(s) - M_s) )
/// ```
///
/// Tasks with no constrained descendant keep `Time::INFINITY`. The EDF
/// baseline prioritizes by these.
#[must_use]
pub fn effective_deadlines(graph: &TaskGraph) -> Vec<Time> {
    let n = graph.task_count();
    let mut eff: Vec<Time> = (0..n)
        .map(|i| graph.task(TaskId::new(i as u32)).deadline_or_infinity())
        .collect();
    for &t in graph.topological_order().iter().rev() {
        for s in graph.successors(t) {
            let ds = eff[s.index()];
            if !ds.is_infinite() {
                let m = Time::new(graph.task(s).mean_exec_time().round() as u64);
                let bound = ds.saturating_sub(m);
                if bound < eff[t.index()] {
                    eff[t.index()] = bound;
                }
            }
        }
    }
    eff
}

/// The length (in mean execution time) of the graph's critical path.
#[must_use]
pub fn critical_path_length(graph: &TaskGraph) -> f64 {
    let analysis = GraphAnalysis::new(graph);
    graph
        .task_ids()
        .map(|t| analysis.mean_finish(t))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use noc_platform::units::{Energy, Volume};

    fn t(name: &str, mean: u64) -> Task {
        Task::uniform(name, 1, Time::new(mean), Energy::from_nj(1.0))
    }

    /// a(100) -> b(200) -> d(400); a -> c(50) -> d. Longest path via b.
    fn sample() -> TaskGraph {
        let mut b = TaskGraph::builder("s", 1);
        let a = b.add_task(t("a", 100));
        let tb = b.add_task(t("b", 200));
        let tc = b.add_task(t("c", 50));
        let d = b.add_task(t("d", 400).with_deadline(Time::new(1000)));
        b.add_edge(a, tb, Volume::from_bits(8)).unwrap();
        b.add_edge(a, tc, Volume::from_bits(8)).unwrap();
        b.add_edge(tb, d, Volume::from_bits(8)).unwrap();
        b.add_edge(tc, d, Volume::from_bits(8)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mean_finish_follows_longest_path() {
        let g = sample();
        let a = GraphAnalysis::new(&g);
        assert_eq!(a.mean_finish(TaskId::new(0)), 100.0);
        assert_eq!(a.mean_finish(TaskId::new(1)), 300.0);
        assert_eq!(a.mean_finish(TaskId::new(2)), 150.0);
        assert_eq!(a.mean_finish(TaskId::new(3)), 700.0);
    }

    #[test]
    fn longest_path_extraction() {
        let g = sample();
        let a = GraphAnalysis::new(&g);
        let path = a.longest_mean_path_to(TaskId::new(3));
        assert_eq!(path, vec![TaskId::new(0), TaskId::new(1), TaskId::new(3)]);
    }

    #[test]
    fn ancestry() {
        let g = sample();
        let a = GraphAnalysis::new(&g);
        assert!(a.is_ancestor(TaskId::new(0), TaskId::new(3)));
        assert!(a.is_ancestor(TaskId::new(1), TaskId::new(3)));
        assert!(!a.is_ancestor(TaskId::new(3), TaskId::new(0)));
        assert!(!a.is_ancestor(TaskId::new(1), TaskId::new(2)));
        assert_eq!(
            a.ancestors_of(TaskId::new(3)),
            vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]
        );
        assert!(a.ancestors_of(TaskId::new(0)).is_empty());
    }

    #[test]
    fn effective_deadlines_propagate_backwards() {
        let g = sample();
        let eff = effective_deadlines(&g);
        // d: 1000. b: 1000 - 400 = 600. c: 600. a: min(600-200, 600-50)=400.
        assert_eq!(eff[3], Time::new(1000));
        assert_eq!(eff[1], Time::new(600));
        assert_eq!(eff[2], Time::new(600));
        assert_eq!(eff[0], Time::new(400));
    }

    #[test]
    fn effective_deadline_stays_infinite_without_constraints() {
        let mut b = TaskGraph::builder("u", 1);
        let a = b.add_task(t("a", 10));
        let c = b.add_task(t("c", 10));
        b.add_edge(a, c, Volume::ZERO).unwrap();
        let g = b.build().unwrap();
        assert!(effective_deadlines(&g).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn explicit_deadline_tighter_than_propagated_wins() {
        let mut b = TaskGraph::builder("w", 1);
        let a = b.add_task(t("a", 10).with_deadline(Time::new(15)));
        let c = b.add_task(t("c", 10).with_deadline(Time::new(1000)));
        b.add_edge(a, c, Volume::ZERO).unwrap();
        let g = b.build().unwrap();
        let eff = effective_deadlines(&g);
        assert_eq!(eff[0], Time::new(15)); // own deadline tighter than 990
    }

    #[test]
    fn critical_path_of_sample() {
        assert_eq!(critical_path_length(&sample()), 700.0);
    }
}
