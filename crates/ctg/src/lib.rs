//! # noc-ctg
//!
//! Communication Task Graphs (CTGs) for energy-aware NoC scheduling,
//! after Def. 1 of Hu & Marculescu (DATE 2004).
//!
//! A CTG is a directed acyclic graph whose vertices are computation tasks
//! and whose arcs carry control/data dependencies. Every task carries a
//! per-PE execution-time vector `R_i`, a per-PE energy vector `E_i` and an
//! optional deadline `d(t_i)`; every arc carries a communication volume
//! `v(c_ij)` in bits.
//!
//! The crate provides:
//!
//! * [`task`] / [`edge`] / [`graph`] — the CTG data model and builder,
//! * [`analysis`] — DAG algorithms (topological order, longest paths,
//!   ancestry, effective deadlines),
//! * [`costs`] — synthesis of heterogeneous per-PE cost vectors from a
//!   platform's PE classes,
//! * [`tgff`] — a TGFF-style seeded random task-graph generator
//!   (substitute for the TGFF tool the paper uses, see `DESIGN.md` §4),
//! * [`multimedia`] — the paper's multimedia system benchmarks (A/V
//!   encoder, decoder and integrated encoder/decoder) as synthetic
//!   profiled CTGs with three clip profiles.
//!
//! # Example
//!
//! ```
//! use noc_ctg::prelude::*;
//! use noc_platform::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TaskGraph::builder("tiny", 4);
//! let src = b.add_task(Task::uniform("src", 4, Time::new(100), Energy::from_nj(50.0)));
//! let dst = b.add_task(
//!     Task::uniform("dst", 4, Time::new(200), Energy::from_nj(80.0))
//!         .with_deadline(Time::new(1_000)),
//! );
//! b.add_edge(src, dst, Volume::from_bits(512))?;
//! let ctg = b.build()?;
//! assert_eq!(ctg.task_count(), 2);
//! assert_eq!(ctg.topological_order().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod apps;
pub mod costs;
pub mod dot;
pub mod edge;
mod error;
pub mod graph;
pub mod multimedia;
pub mod pipeline;
pub mod stats;
pub mod task;
pub mod tgff;
pub mod tgff_parse;

pub use error::CtgError;
pub use graph::{TaskGraph, TaskGraphBuilder};

/// Convenient glob import of the most commonly used CTG types.
pub mod prelude {
    pub use crate::analysis::GraphAnalysis;
    pub use crate::apps::{ExtensionApp, Load};
    pub use crate::edge::{Edge, EdgeId};
    pub use crate::graph::{TaskGraph, TaskGraphBuilder};
    pub use crate::multimedia::{Clip, MultimediaApp};
    pub use crate::pipeline::{unroll, InterFrameEdge};
    pub use crate::stats::GraphStats;
    pub use crate::task::{Task, TaskId};
    pub use crate::tgff::{TgffConfig, TgffGenerator};
    pub use crate::tgff_parse::TgffFile;
    pub use crate::CtgError;
}
