//! Parser for (a documented subset of) the TGFF file format.
//!
//! The paper generates its random benchmarks with Dick/Rhodes/Wolf's
//! TGFF tool. Besides the [seeded re-implementation](crate::tgff), this
//! module reads *actual* `.tgff` files so externally generated
//! workloads can be scheduled directly.
//!
//! # Supported subset
//!
//! ```text
//! @TASK_GRAPH <n> {
//!     PERIOD <ticks>                    # optional, informational
//!     TASK <name> TYPE <k>
//!     ARC <name> FROM <src> TO <dst> TYPE <m>
//!     HARD_DEADLINE <d> ON <task> AT <ticks>
//! }
//!
//! @COMMUN_QUANT <id> {                  # arc TYPE -> volume in bits
//!     <m> <bits>
//! }
//!
//! @PE <p> {                             # task TYPE -> cost on PE p
//!     # comments and column headers are skipped
//!     <k> <exec_time> <power>
//! }
//! ```
//!
//! `#` starts a comment. Multiple `@TASK_GRAPH` blocks merge into one
//! CTG (disjoint union, names prefixed `g<n>.`). Task costs come from
//! the `@PE` tables: execution time directly, energy as
//! `exec_time × power`. When the file defines fewer `@PE` blocks than
//! the platform has tiles, the blocks are assigned round-robin (TGFF
//! files typically describe PE *types*, not instances).

use std::collections::HashMap;

use noc_platform::units::{Energy, Time, Volume};
use noc_platform::Platform;

use crate::graph::TaskGraph;
use crate::task::{Task, TaskId};
use crate::CtgError;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTgffError {
    /// Line where parsing failed.
    pub line: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ParseTgffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tgff parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTgffError {}

#[derive(Debug, Clone)]
struct TgffTask {
    graph: usize,
    name: String,
    ty: u32,
    deadline: Option<u64>,
}

#[derive(Debug, Clone)]
struct TgffArc {
    src: String,
    dst: String,
    ty: u32,
    graph: usize,
}

/// A parsed TGFF file, ready to instantiate against a platform.
#[derive(Debug, Clone, Default)]
pub struct TgffFile {
    tasks: Vec<TgffTask>,
    arcs: Vec<TgffArc>,
    /// Arc TYPE -> volume bits.
    volumes: HashMap<u32, u64>,
    /// Per-PE-block: task TYPE -> (exec_time, power).
    pe_tables: Vec<HashMap<u32, (u64, f64)>>,
}

impl TgffFile {
    /// Parses TGFF text (see the [module docs](self) for the accepted
    /// subset).
    ///
    /// # Errors
    ///
    /// [`ParseTgffError`] with the offending line on malformed input.
    pub fn parse(text: &str) -> Result<TgffFile, ParseTgffError> {
        let mut file = TgffFile::default();
        let mut block: Option<Block> = None;
        let mut graph_index = 0usize;

        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let err = |message: String| ParseTgffError { line, message };
            let code = raw.split('#').next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = code.split_whitespace().collect();
            match tokens[0] {
                t if t.starts_with('@') => {
                    if !code.ends_with('{') {
                        return Err(err(format!("block `{t}` must open with `{{`")));
                    }
                    block = Some(match t {
                        "@TASK_GRAPH" => {
                            graph_index = file.tasks.iter().map(|x| x.graph + 1).max().unwrap_or(0);
                            Block::TaskGraph
                        }
                        "@COMMUN_QUANT" => Block::CommunQuant,
                        "@PE" => {
                            file.pe_tables.push(HashMap::new());
                            Block::Pe
                        }
                        other => return Err(err(format!("unknown block `{other}`"))),
                    });
                }
                "}" => block = None,
                "PERIOD" => {} // informational
                "TASK" => {
                    if block != Some(Block::TaskGraph) {
                        return Err(err("TASK outside @TASK_GRAPH".into()));
                    }
                    // TASK <name> TYPE <k>
                    if tokens.len() < 4 || tokens[2] != "TYPE" {
                        return Err(err("expected TASK <name> TYPE <k>".into()));
                    }
                    let ty = tokens[3].parse().map_err(|_| err("bad task type".into()))?;
                    file.tasks.push(TgffTask {
                        graph: graph_index,
                        name: tokens[1].to_owned(),
                        ty,
                        deadline: None,
                    });
                }
                "ARC" => {
                    // ARC <name> FROM <a> TO <b> TYPE <m>
                    if tokens.len() < 8
                        || tokens[2] != "FROM"
                        || tokens[4] != "TO"
                        || tokens[6] != "TYPE"
                    {
                        return Err(err("expected ARC <name> FROM <a> TO <b> TYPE <m>".into()));
                    }
                    let ty = tokens[7].parse().map_err(|_| err("bad arc type".into()))?;
                    file.arcs.push(TgffArc {
                        src: tokens[3].to_owned(),
                        dst: tokens[5].to_owned(),
                        ty,
                        graph: graph_index,
                    });
                }
                "HARD_DEADLINE" | "SOFT_DEADLINE" => {
                    // HARD_DEADLINE <d> ON <task> AT <ticks>
                    if tokens.len() < 6 || tokens[2] != "ON" || tokens[4] != "AT" {
                        return Err(err("expected HARD_DEADLINE <d> ON <task> AT <ticks>".into()));
                    }
                    let at: u64 = tokens[5].parse().map_err(|_| err("bad deadline".into()))?;
                    let target = tokens[3];
                    let task = file
                        .tasks
                        .iter_mut()
                        .find(|t| t.graph == graph_index && t.name == target)
                        .ok_or_else(|| err(format!("deadline on unknown task `{target}`")))?;
                    task.deadline = Some(at);
                }
                _ => match block {
                    Some(Block::CommunQuant) => {
                        if tokens.len() < 2 {
                            return Err(err("expected <type> <bits>".into()));
                        }
                        let ty = tokens[0]
                            .parse()
                            .map_err(|_| err("bad quant type".into()))?;
                        // TGFF emits float quantities; round to bits.
                        let bits: f64 = tokens[1]
                            .parse()
                            .map_err(|_| err("bad quant volume".into()))?;
                        file.volumes.insert(ty, bits.round() as u64);
                    }
                    Some(Block::Pe) => {
                        if tokens.len() < 3 {
                            return Err(err("expected <type> <exec_time> <power>".into()));
                        }
                        let ty = tokens[0].parse().map_err(|_| err("bad task type".into()))?;
                        let time: f64 =
                            tokens[1].parse().map_err(|_| err("bad exec time".into()))?;
                        let power: f64 = tokens[2].parse().map_err(|_| err("bad power".into()))?;
                        let table = file
                            .pe_tables
                            .last_mut()
                            .ok_or_else(|| err("PE row outside @PE block".into()))?;
                        table.insert(ty, (time.round() as u64, power));
                    }
                    _ => return Err(err(format!("unexpected token `{}`", tokens[0]))),
                },
            }
        }
        Ok(file)
    }

    /// Number of parsed tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Instantiates the parsed file against `platform`, assigning `@PE`
    /// tables to tiles round-robin. Arc types without a `@COMMUN_QUANT`
    /// entry become zero-volume control dependencies.
    ///
    /// # Errors
    ///
    /// [`CtgError::EmptyGraph`] when the file defines no tasks, no `@PE`
    /// tables, or a task type missing from a `@PE` table;
    /// [`CtgError::UnknownTask`] when an arc references an undeclared
    /// task; plus any graph-construction error (duplicate arcs, cycles).
    pub fn into_task_graph(self, platform: &Platform) -> Result<TaskGraph, CtgError> {
        if self.tasks.is_empty() || self.pe_tables.is_empty() {
            return Err(CtgError::EmptyGraph);
        }
        let tiles = platform.tile_count();
        let mut builder = TaskGraph::builder("tgff-import", tiles);
        let mut index: HashMap<(usize, String), TaskId> = HashMap::new();
        for t in &self.tasks {
            let mut times = Vec::with_capacity(tiles);
            let mut energies = Vec::with_capacity(tiles);
            for pe in 0..tiles {
                let table = &self.pe_tables[pe % self.pe_tables.len()];
                let &(time, power) = table.get(&t.ty).ok_or(CtgError::EmptyGraph)?;
                times.push(Time::new(time.max(1)));
                energies.push(Energy::from_nj((time as f64 * power).max(1e-9)));
            }
            let mut task = Task::new(format!("g{}.{}", t.graph, t.name), times, energies);
            if let Some(d) = t.deadline {
                task = task.with_deadline(Time::new(d));
            }
            let id = builder.add_task(task);
            index.insert((t.graph, t.name.clone()), id);
        }
        for a in &self.arcs {
            let src =
                *index
                    .get(&(a.graph, a.src.clone()))
                    .ok_or_else(|| CtgError::UnknownTask {
                        task: TaskId::new(u32::MAX),
                        task_count: self.tasks.len(),
                    })?;
            let dst =
                *index
                    .get(&(a.graph, a.dst.clone()))
                    .ok_or_else(|| CtgError::UnknownTask {
                        task: TaskId::new(u32::MAX),
                        task_count: self.tasks.len(),
                    })?;
            let bits = self.volumes.get(&a.ty).copied().unwrap_or(0);
            builder.add_edge(src, dst, Volume::from_bits(bits))?;
        }
        builder.build()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    TaskGraph,
    CommunQuant,
    Pe,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    const SAMPLE: &str = r"
# A TGFF-style file with two small graphs and two PE types.
@TASK_GRAPH 0 {
    PERIOD 300
    TASK src TYPE 0
    TASK mid TYPE 1
    TASK dst TYPE 0
    ARC a0 FROM src TO mid TYPE 0
    ARC a1 FROM mid TO dst TYPE 1
    HARD_DEADLINE d0 ON dst AT 900
}

@TASK_GRAPH 1 {
    TASK solo TYPE 1
}

@COMMUN_QUANT 0 {
    0 1024
    1 2048.6
}

@PE 0 {
# type exec_time power
    0 100 1.0
    1 200 0.5
}

@PE 1 {
    0 150 0.4
    1 120 0.9
}
";

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .build()
            .unwrap()
    }

    #[test]
    fn parses_and_instantiates_sample() {
        let file = TgffFile::parse(SAMPLE).expect("parses");
        assert_eq!(file.task_count(), 4);
        let g = file.into_task_graph(&platform()).expect("instantiates");
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 2);
        // Names are graph-prefixed.
        assert!(g.tasks().iter().any(|t| t.name() == "g0.src"));
        assert!(g.tasks().iter().any(|t| t.name() == "g1.solo"));
        // Deadline landed on dst.
        let dst = g
            .task_ids()
            .find(|&t| g.task(t).name() == "g0.dst")
            .unwrap();
        assert_eq!(g.task(dst).deadline(), Some(Time::new(900)));
        // Volumes resolved (2048.6 rounds to 2049).
        assert_eq!(g.edges()[0].volume.bits(), 1024);
        assert_eq!(g.edges()[1].volume.bits(), 2049);
    }

    #[test]
    fn pe_tables_cycle_round_robin() {
        let g = TgffFile::parse(SAMPLE)
            .unwrap()
            .into_task_graph(&platform())
            .unwrap();
        let src = g
            .task_ids()
            .find(|&t| g.task(t).name() == "g0.src")
            .unwrap();
        let times = g.task(src).exec_times();
        // Type 0: PE block 0 gives 100, block 1 gives 150; 4 tiles cycle
        // 0,1,0,1.
        assert_eq!(times[0], Time::new(100));
        assert_eq!(times[1], Time::new(150));
        assert_eq!(times[2], Time::new(100));
        assert_eq!(times[3], Time::new(150));
        // Energy = time * power.
        let e = g.task(src).exec_energies();
        assert!((e[0].as_nj() - 100.0).abs() < 1e-9);
        assert!((e[1].as_nj() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "@TASK_GRAPH 0 {\nTASK oops\n}";
        let err = TgffFile::parse(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let bad = "TASK stray TYPE 0";
        assert!(TgffFile::parse(bad).is_err());

        let bad = "@MYSTERY 0 {\n}";
        assert!(TgffFile::parse(bad)
            .unwrap_err()
            .message
            .contains("unknown block"));
    }

    #[test]
    fn deadline_on_unknown_task_is_rejected() {
        let bad = "@TASK_GRAPH 0 {\nTASK a TYPE 0\nHARD_DEADLINE d ON ghost AT 5\n}";
        let err = TgffFile::parse(bad).unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn missing_pe_tables_are_rejected() {
        let text = "@TASK_GRAPH 0 {\nTASK a TYPE 0\n}";
        let file = TgffFile::parse(text).unwrap();
        assert!(matches!(
            file.into_task_graph(&platform()),
            Err(CtgError::EmptyGraph)
        ));
    }

    #[test]
    fn imported_graph_schedules_end_to_end() {
        // The imported CTG must be directly consumable by the pipeline.
        let g = TgffFile::parse(SAMPLE)
            .unwrap()
            .into_task_graph(&platform())
            .unwrap();
        assert_eq!(g.pe_count(), 4);
        assert_eq!(g.topological_order().len(), 4);
    }
}
