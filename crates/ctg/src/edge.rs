//! Dependency arcs: the edges of a CTG (Def. 1).

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::units::Volume;

use crate::task::TaskId;

/// Identifies a dependency arc within a [`crate::TaskGraph`]. Ids are
/// dense indices in `0..edge_count`.
///
/// ```
/// use noc_ctg::edge::EdgeId;
/// assert_eq!(EdgeId::new(3).to_string(), "c3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index as a `usize`, for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("c{}", self.0))
    }
}

/// A directed dependency arc `c_{src,dst}` with its communication volume.
///
/// A zero [`volume`](Edge::volume) models a pure *control* dependency
/// ("dst cannot start before src finishes"); a nonzero volume
/// additionally requires `v(c_ij)` bits to reach the destination PE
/// before the destination task can start (a *data* dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Producer task.
    pub src: TaskId,
    /// Consumer task.
    pub dst: TaskId,
    /// Communication volume in bits (`v(c_ij)`); zero for control arcs.
    pub volume: Volume,
}

impl Edge {
    /// Creates an arc.
    #[must_use]
    pub const fn new(src: TaskId, dst: TaskId, volume: Volume) -> Self {
        Edge { src, dst, volume }
    }

    /// `true` if this is a pure control dependency (no data transfer).
    #[must_use]
    pub const fn is_control(&self) -> bool {
        self.volume.is_zero()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({})", self.src, self.dst, self.volume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_vs_data() {
        let c = Edge::new(TaskId::new(0), TaskId::new(1), Volume::ZERO);
        assert!(c.is_control());
        let d = Edge::new(TaskId::new(0), TaskId::new(1), Volume::from_bits(8));
        assert!(!d.is_control());
    }

    #[test]
    fn display_is_informative() {
        let d = Edge::new(TaskId::new(2), TaskId::new(5), Volume::from_bits(64));
        assert_eq!(d.to_string(), "t2 -> t5 (64 bits)");
    }
}
