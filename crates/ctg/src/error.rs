use std::error::Error;
use std::fmt;

use crate::task::TaskId;

/// Errors produced while building or querying a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtgError {
    /// The graph has no tasks.
    EmptyGraph,
    /// A task id is out of range.
    UnknownTask {
        /// The offending id.
        task: TaskId,
        /// Number of tasks in the graph.
        task_count: usize,
    },
    /// A task's cost vectors do not match the graph's PE count.
    CostVectorMismatch {
        /// The offending task.
        task: TaskId,
        /// Expected vector length (PE count).
        expected: usize,
        /// Actual execution-time vector length.
        times: usize,
        /// Actual energy vector length.
        energies: usize,
    },
    /// An edge would connect a task to itself.
    SelfLoop(TaskId),
    /// The same (src, dst) arc was added twice.
    DuplicateEdge {
        /// Source task.
        src: TaskId,
        /// Destination task.
        dst: TaskId,
    },
    /// The dependency arcs contain a cycle; a CTG must be a DAG.
    CyclicGraph {
        /// One task that participates in a cycle.
        witness: TaskId,
    },
}

impl fmt::Display for CtgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtgError::EmptyGraph => write!(f, "task graph has no tasks"),
            CtgError::UnknownTask { task, task_count } => {
                write!(f, "task {task} out of range (graph has {task_count} tasks)")
            }
            CtgError::CostVectorMismatch {
                task,
                expected,
                times,
                energies,
            } => write!(
                f,
                "task {task} has cost vectors of length {times}/{energies}, expected {expected}"
            ),
            CtgError::SelfLoop(t) => write!(f, "task {t} cannot depend on itself"),
            CtgError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate dependency arc {src} -> {dst}")
            }
            CtgError::CyclicGraph { witness } => {
                write!(f, "dependency arcs form a cycle through task {witness}")
            }
        }
    }
}

impl Error for CtgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_ids() {
        let e = CtgError::DuplicateEdge {
            src: TaskId::new(1),
            dst: TaskId::new(2),
        };
        assert!(e.to_string().contains("t1 -> t2"));
        let e = CtgError::CyclicGraph {
            witness: TaskId::new(7),
        };
        assert!(e.to_string().contains("t7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CtgError>();
    }
}
