//! Property-based tests of the wormhole network model: conservation,
//! determinism, and consistency with the analytic latency formula.

use proptest::prelude::*;

use noc_platform::prelude::*;
use noc_sim::prelude::*;

fn mesh(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .link_bandwidth(32.0)
        .build()
        .expect("mesh builds")
}

/// Strategy: a batch of random messages on a 4x4 mesh.
fn message_batch() -> impl Strategy<Value = Vec<(u32, u32, u64, u64)>> {
    prop::collection::vec((0u32..16, 0u32..16, 1u64..4_096, 0u64..500), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message is eventually delivered, after its injection and
    /// never before its contention-free bound.
    #[test]
    fn all_messages_deliver_within_physical_bounds(batch in message_batch()) {
        let p = mesh(4, 4);
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let ids: Vec<MessageId> = batch
            .iter()
            .map(|&(s, d, bits, at)| {
                sim.inject_on(
                    &p,
                    Message::new(TileId::new(s), TileId::new(d), Volume::from_bits(bits), Time::new(at)),
                )
            })
            .collect();
        sim.run_until_idle();
        for id in ids {
            let done = sim.completion(id).expect("delivered");
            prop_assert!(done >= sim.ideal_completion(id));
            let stats = sim.message_stats(id).expect("stats available");
            prop_assert_eq!(stats.delivered_at, done);
            prop_assert_eq!(
                stats.stall_ticks,
                done.saturating_sub(stats.ideal).ticks()
            );
        }
    }

    /// The simulation is deterministic: same batch, same outcome.
    #[test]
    fn simulation_is_deterministic(batch in message_batch()) {
        let p = mesh(4, 4);
        let run = |batch: &[(u32, u32, u64, u64)]| -> Vec<Option<Time>> {
            let mut sim = NetworkSim::new(&p, SimConfig::default());
            let ids: Vec<MessageId> = batch
                .iter()
                .map(|&(s, d, bits, at)| {
                    sim.inject_on(
                        &p,
                        Message::new(
                            TileId::new(s),
                            TileId::new(d),
                            Volume::from_bits(bits),
                            Time::new(at),
                        ),
                    )
                })
                .collect();
            sim.run_until_idle();
            ids.into_iter().map(|i| sim.completion(i)).collect()
        };
        prop_assert_eq!(run(&batch), run(&batch));
    }

    /// Flit conservation: total link busy ticks equal the sum over
    /// remote messages of `flits * route_links`.
    #[test]
    fn flit_conservation(batch in message_batch()) {
        let p = mesh(4, 4);
        let cfg = SimConfig::default();
        let mut sim = NetworkSim::new(&p, cfg);
        let mut expected = 0u64;
        for &(s, d, bits, at) in &batch {
            let (src, dst) = (TileId::new(s), TileId::new(d));
            sim.inject_on(&p, Message::new(src, dst, Volume::from_bits(bits), Time::new(at)));
            if src != dst {
                expected += cfg.flits_for(bits) * p.route(src, dst).len() as u64;
            }
        }
        sim.run_until_idle();
        let total: u64 = sim.link_busy_ticks().iter().sum();
        prop_assert_eq!(total, expected);
    }

    /// A single message in an empty network hits the analytic latency
    /// exactly, for any buffer depth and hop latency.
    #[test]
    fn lone_message_matches_formula(
        s in 0u32..16, d in 0u32..16, bits in 1u64..4_096,
        buffers in 1u64..4, hop in 0u64..3,
    ) {
        let p = mesh(4, 4);
        let cfg = SimConfig::new(32, buffers).with_hop_latency(hop);
        let mut sim = NetworkSim::new(&p, cfg);
        let id = sim.inject_on(
            &p,
            Message::new(TileId::new(s), TileId::new(d), Volume::from_bits(bits), Time::ZERO),
        );
        sim.run_until_idle();
        prop_assert_eq!(sim.completion(id), Some(sim.ideal_completion(id)));
    }
}
