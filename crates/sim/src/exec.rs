//! Whole-application execution of a static schedule on the simulated
//! network.
//!
//! The executor keeps the schedule's *decisions* (PE assignment and
//! per-PE execution order) but lets timing emerge dynamically: a task
//! starts when (a) it is its turn on its PE and (b) every input has
//! actually arrived through the wormhole network; transactions are
//! injected the moment their producer finishes. Comparing the realized
//! trace against the static schedule quantifies the abstraction gap of
//! the schedule-table model (pipeline-fill latency, arbitration order)
//! and confirms the schedule executes without deadline surprises.

use noc_ctg::edge::EdgeId;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::routing::LinkId;
use noc_platform::tile::PeId;
use noc_platform::units::Time;
use noc_platform::Platform;
use noc_schedule::Schedule;

use crate::config::SimConfig;
use crate::fault::{FaultKind, FaultedTrace, InjectedFault};
use crate::message::{Message, MessageId};
use crate::network::NetworkSim;
use crate::SimError;

/// The realized (dynamic) timing of one schedule execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Realized start per task.
    pub start: Vec<Time>,
    /// Realized finish per task.
    pub finish: Vec<Time>,
    /// Latest realized finish.
    pub makespan: Time,
    /// Tasks whose realized finish exceeds their deadline, with
    /// tardiness.
    pub deadline_misses: Vec<(TaskId, Time)>,
}

impl ExecutionTrace {
    /// `true` if the realized execution met every deadline.
    #[must_use]
    pub fn meets_deadlines(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// Per-task slippage of the realized finish versus the static
    /// schedule (saturating at zero for tasks that finish early).
    #[must_use]
    pub fn slippage_vs(&self, schedule: &Schedule) -> Vec<Time> {
        self.finish
            .iter()
            .enumerate()
            .map(|(i, &f)| f.saturating_sub(schedule.task(TaskId::new(i as u32)).finish))
            .collect()
    }
}

/// Replays schedules on a simulated wormhole network; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ScheduleExecutor<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    config: SimConfig,
}

impl<'a> ScheduleExecutor<'a> {
    /// Creates an executor for one graph/platform pair.
    #[must_use]
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform, config: SimConfig) -> Self {
        ScheduleExecutor {
            graph,
            platform,
            config,
        }
    }

    /// Executes `schedule`'s decisions with dynamic timing.
    ///
    /// # Errors
    ///
    /// * [`SimError::ShapeMismatch`] if the schedule does not match the
    ///   graph,
    /// * [`SimError::ExecutorDeadlock`] if no progress is possible (only
    ///   for schedules that were never validated).
    pub fn execute(&self, schedule: &Schedule) -> Result<ExecutionTrace, SimError> {
        self.execute_with_exec_times(schedule, None)
    }

    /// Like [`execute`](Self::execute), but with per-task execution-time
    /// overrides (indexed by task id) — the hook for Monte-Carlo
    /// robustness studies where realized runtimes deviate from the
    /// profiled `R_i` the schedule was built against.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute); additionally
    /// [`SimError::ShapeMismatch`] if the override vector length differs
    /// from the task count.
    pub fn execute_with_exec_times(
        &self,
        schedule: &Schedule,
        exec_override: Option<&[Time]>,
    ) -> Result<ExecutionTrace, SimError> {
        let graph = self.graph;
        if let Some(o) = exec_override {
            if o.len() != graph.task_count() {
                return Err(SimError::ShapeMismatch {
                    schedule_tasks: o.len(),
                    graph_tasks: graph.task_count(),
                });
            }
        }
        if schedule.task_count() != graph.task_count() {
            return Err(SimError::ShapeMismatch {
                schedule_tasks: schedule.task_count(),
                graph_tasks: graph.task_count(),
            });
        }

        let n = graph.task_count();
        let queues: Vec<Vec<TaskId>> = self
            .platform
            .pes()
            .map(|pe| schedule.tasks_on(pe))
            .collect();
        let mut ptr = vec![0usize; queues.len()];
        let mut pe_busy_until = vec![Time::ZERO; queues.len()];

        let mut started: Vec<Option<Time>> = vec![None; n];
        let mut finished: Vec<Option<Time>> = vec![None; n];
        // For every edge: the message carrying it (None for local /
        // control edges, resolved when the producer finishes).
        let mut edge_msg: Vec<Option<MessageId>> = vec![None; graph.edge_count()];
        let mut edge_injected = vec![false; graph.edge_count()];

        let mut network = NetworkSim::new(self.platform, self.config);
        let mut now = Time::ZERO;
        let mut done = 0usize;
        let horizon_guard = Time::new(1 << 40);

        while done < n {
            // 1. Inject transactions of tasks finishing at `now`.
            for t in graph.task_ids() {
                if finished[t.index()] != Some(now) {
                    continue;
                }
                for &e in graph.outgoing(t) {
                    if edge_injected[e.index()] {
                        continue;
                    }
                    edge_injected[e.index()] = true;
                    let edge = graph.edge(e);
                    let src = schedule.task(edge.src).pe.tile();
                    let dst = schedule.task(edge.dst).pe.tile();
                    if src == dst || edge.volume.is_zero() {
                        continue; // delivered instantly; readiness checks producer finish
                    }
                    let id =
                        network.inject_on(self.platform, Message::new(src, dst, edge.volume, now));
                    edge_msg[e.index()] = Some(id);
                }
            }

            // 2. Start tasks whose turn has come and whose inputs arrived.
            let mut progressed = false;
            for (pe_idx, queue) in queues.iter().enumerate() {
                if ptr[pe_idx] >= queue.len() || pe_busy_until[pe_idx] > now {
                    continue;
                }
                let t = queue[ptr[pe_idx]];
                if started[t.index()].is_some() {
                    continue;
                }
                let ready = graph.incoming(t).iter().all(|&e| {
                    let edge = graph.edge(e);
                    match finished[edge.src.index()] {
                        None => false,
                        Some(f) => match edge_msg[e.index()] {
                            // Local/control edge: ready at producer finish.
                            None => f <= now,
                            Some(m) => network.completion(m).is_some_and(|c| c <= now),
                        },
                    }
                });
                if !ready {
                    continue;
                }
                let exec = exec_override.map_or_else(
                    || graph.task(t).exec_time(PeId::new(pe_idx as u32)),
                    |o| o[t.index()],
                );
                started[t.index()] = Some(now);
                finished[t.index()] = Some(now + exec);
                pe_busy_until[pe_idx] = now + exec;
                ptr[pe_idx] += 1;
                done += 1;
                progressed = true;
            }

            // 3. Advance time: tick the network, or fast-forward to the
            //    next interesting instant when it is idle.
            let network_active = network.tick();
            if !network_active && !progressed {
                // Jump to the next task finish (message injections and
                // readiness changes only happen at finishes).
                let next = finished
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|&f| f > now)
                    .min();
                match next {
                    Some(f) => now = f,
                    None => {
                        if done < n {
                            return Err(SimError::ExecutorDeadlock);
                        }
                    }
                }
            } else {
                now += Time::new(1);
            }
            if now > horizon_guard {
                return Err(SimError::ExecutorDeadlock);
            }
            // Keep the network clock in lockstep.
            while network.now() < now {
                network.tick();
            }
        }

        let start: Vec<Time> = started
            .into_iter()
            .map(|s| s.expect("all started"))
            .collect();
        let finish: Vec<Time> = finished
            .into_iter()
            .map(|f| f.expect("all finished"))
            .collect();
        let makespan = finish.iter().copied().max().unwrap_or(Time::ZERO);
        let mut deadline_misses = Vec::new();
        for t in graph.task_ids() {
            if let Some(d) = graph.task(t).deadline() {
                if finish[t.index()] > d {
                    deadline_misses.push((t, finish[t.index()] - d));
                }
            }
        }
        Ok(ExecutionTrace {
            start,
            finish,
            makespan,
            deadline_misses,
        })
    }

    /// Executes `schedule` while permanent faults strike mid-run; see
    /// [`crate::fault`] for the fault semantics.
    ///
    /// Tasks and transactions unaffected by the faults run exactly as in
    /// [`execute`](Self::execute). Everything downstream of a dead
    /// resource — the task killed on a dying PE, messages severed in
    /// flight or routed over a dead link, and every consumer starved of
    /// an input, transitively — is reported as *stranded* instead of
    /// deadlocking the executor. The run is fully deterministic for a
    /// given fault list.
    ///
    /// # Errors
    ///
    /// * [`SimError::ShapeMismatch`] if the schedule does not match the
    ///   graph,
    /// * [`SimError::UnknownTile`] / [`SimError::UnknownLink`] if a
    ///   fault references a resource the platform does not have,
    /// * [`SimError::ExecutorDeadlock`] as in [`execute`](Self::execute).
    pub fn execute_with_faults(
        &self,
        schedule: &Schedule,
        faults: &[InjectedFault],
    ) -> Result<FaultedTrace, SimError> {
        let graph = self.graph;
        if schedule.task_count() != graph.task_count() {
            return Err(SimError::ShapeMismatch {
                schedule_tasks: schedule.task_count(),
                graph_tasks: graph.task_count(),
            });
        }

        // Resolve every fault to the links it severs up front (a PE
        // fault takes the tile's router down: all adjacent links die
        // with it). Stable sort keeps same-tick faults in caller order.
        let mut timeline: Vec<(Time, Option<usize>, Vec<LinkId>)> = Vec::new();
        for f in faults {
            match f.kind {
                FaultKind::Pe(pe) => {
                    if pe.index() >= self.platform.tile_count() {
                        return Err(SimError::UnknownTile(pe.tile()));
                    }
                    let tile = pe.tile();
                    let links = self
                        .platform
                        .links()
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| l.src == tile || l.dst == tile)
                        .map(|(i, _)| LinkId::new(i as u32))
                        .collect();
                    timeline.push((f.at, Some(pe.index()), links));
                }
                FaultKind::Link(link) => {
                    let idx = self
                        .platform
                        .links()
                        .binary_search(&link)
                        .map_err(|_| SimError::UnknownLink(link))?;
                    timeline.push((f.at, None, vec![LinkId::new(idx as u32)]));
                }
            }
        }
        timeline.sort_by_key(|&(at, _, _)| at);
        let mut next_fault = 0usize;

        // Stranding a task starves every consumer downstream of it.
        // `done` counts settled (finished or stranded) tasks; a task
        // killed mid-run was already counted when it started.
        fn strand_closure(
            graph: &TaskGraph,
            seed: TaskId,
            started: &[Option<Time>],
            edge_injected: &[bool],
            task_stranded: &mut [bool],
            edge_stranded: &mut [bool],
            done: &mut usize,
        ) {
            let mut work = vec![seed];
            while let Some(t) = work.pop() {
                if task_stranded[t.index()] {
                    continue;
                }
                task_stranded[t.index()] = true;
                if started[t.index()].is_none() {
                    *done += 1;
                }
                for &e in graph.outgoing(t) {
                    if !edge_injected[e.index()] {
                        edge_stranded[e.index()] = true;
                    }
                    work.push(graph.edge(e).dst);
                }
            }
        }

        let n = graph.task_count();
        let queues: Vec<Vec<TaskId>> = self
            .platform
            .pes()
            .map(|pe| schedule.tasks_on(pe))
            .collect();
        let mut ptr = vec![0usize; queues.len()];
        let mut pe_busy_until = vec![Time::ZERO; queues.len()];
        let mut pe_dead = vec![false; queues.len()];

        let mut started: Vec<Option<Time>> = vec![None; n];
        let mut finished: Vec<Option<Time>> = vec![None; n];
        let mut task_stranded = vec![false; n];
        let mut edge_msg: Vec<Option<MessageId>> = vec![None; graph.edge_count()];
        let mut edge_injected = vec![false; graph.edge_count()];
        let mut edge_stranded = vec![false; graph.edge_count()];

        let mut network = NetworkSim::new(self.platform, self.config);
        let mut now = Time::ZERO;
        let mut done = 0usize;
        let horizon_guard = Time::new(1 << 40);

        while done < n {
            // 0. Activate faults due now. Survival is judged against the
            //    activation instant `at`, not `now`: a task that finished
            //    at or before `at` keeps its outputs.
            while next_fault < timeline.len() && timeline[next_fault].0 <= now {
                let (at, dead_pe, links) = timeline[next_fault].clone();
                next_fault += 1;
                if let Some(p) = dead_pe {
                    if !pe_dead[p] {
                        pe_dead[p] = true;
                        let seeds: Vec<TaskId> = queues[p]
                            .iter()
                            .copied()
                            .filter(|&t| {
                                !task_stranded[t.index()]
                                    && finished[t.index()].is_none_or(|f| f > at)
                            })
                            .collect();
                        for t in seeds {
                            // A task killed mid-run loses its finish.
                            finished[t.index()] = None;
                            strand_closure(
                                graph,
                                t,
                                &started,
                                &edge_injected,
                                &mut task_stranded,
                                &mut edge_stranded,
                                &mut done,
                            );
                        }
                        ptr[p] = queues[p].len();
                    }
                }
                for l in links {
                    for id in network.fail_link(l) {
                        // Find the edge whose message was severed and
                        // starve its consumer.
                        let e = graph
                            .edge_ids()
                            .find(|&e| edge_msg[e.index()] == Some(id))
                            .expect("every injected message carries an edge");
                        edge_stranded[e.index()] = true;
                        strand_closure(
                            graph,
                            graph.edge(e).dst,
                            &started,
                            &edge_injected,
                            &mut task_stranded,
                            &mut edge_stranded,
                            &mut done,
                        );
                    }
                }
            }

            // 1. Inject transactions of tasks finishing at `now`. A
            //    message routed over an already-dead link strands at
            //    injection, starving its consumer.
            for t in graph.task_ids() {
                if finished[t.index()] != Some(now) {
                    continue;
                }
                for &e in graph.outgoing(t) {
                    if edge_injected[e.index()] {
                        continue;
                    }
                    edge_injected[e.index()] = true;
                    let edge = graph.edge(e);
                    let src = schedule.task(edge.src).pe.tile();
                    let dst = schedule.task(edge.dst).pe.tile();
                    if src == dst || edge.volume.is_zero() {
                        continue;
                    }
                    let id =
                        network.inject_on(self.platform, Message::new(src, dst, edge.volume, now));
                    edge_msg[e.index()] = Some(id);
                    if network.stranded(id) {
                        edge_stranded[e.index()] = true;
                        strand_closure(
                            graph,
                            edge.dst,
                            &started,
                            &edge_injected,
                            &mut task_stranded,
                            &mut edge_stranded,
                            &mut done,
                        );
                    }
                }
            }

            // 2. Start tasks on alive PEs whose turn has come.
            let mut progressed = false;
            for (pe_idx, queue) in queues.iter().enumerate() {
                if pe_dead[pe_idx] {
                    continue;
                }
                // Stranded tasks never run: skip them in queue order.
                while ptr[pe_idx] < queue.len() && task_stranded[queue[ptr[pe_idx]].index()] {
                    ptr[pe_idx] += 1;
                }
                if ptr[pe_idx] >= queue.len() || pe_busy_until[pe_idx] > now {
                    continue;
                }
                let t = queue[ptr[pe_idx]];
                if started[t.index()].is_some() {
                    continue;
                }
                let ready = graph.incoming(t).iter().all(|&e| {
                    let edge = graph.edge(e);
                    match finished[edge.src.index()] {
                        None => false,
                        Some(f) => match edge_msg[e.index()] {
                            None => f <= now,
                            Some(m) => network.completion(m).is_some_and(|c| c <= now),
                        },
                    }
                });
                if !ready {
                    continue;
                }
                let exec = graph.task(t).exec_time(PeId::new(pe_idx as u32));
                started[t.index()] = Some(now);
                finished[t.index()] = Some(now + exec);
                pe_busy_until[pe_idx] = now + exec;
                ptr[pe_idx] += 1;
                done += 1;
                progressed = true;
            }

            // 3. Advance time: tick the network, or fast-forward to the
            //    next finish *or fault activation* when it is idle.
            let network_active = network.tick();
            if !network_active && !progressed {
                let next_finish = finished
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|&f| f > now)
                    .min();
                let next_fault_at = timeline
                    .get(next_fault)
                    .map(|&(at, _, _)| at)
                    .filter(|&at| at > now);
                let next = match (next_finish, next_fault_at) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                match next {
                    Some(f) => now = f,
                    None => {
                        if done < n {
                            return Err(SimError::ExecutorDeadlock);
                        }
                    }
                }
            } else {
                now += Time::new(1);
            }
            if now > horizon_guard {
                return Err(SimError::ExecutorDeadlock);
            }
            while network.now() < now {
                network.tick();
            }
        }

        let stranded_tasks: Vec<TaskId> = graph
            .task_ids()
            .filter(|&t| task_stranded[t.index()])
            .collect();
        let stranded_edges: Vec<EdgeId> = graph
            .edge_ids()
            .filter(|&e| edge_stranded[e.index()])
            .collect();
        let makespan = finished
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(Time::ZERO);
        let mut trace = FaultedTrace {
            start: started,
            finish: finished,
            stranded_tasks,
            stranded_edges,
            makespan,
            deadline_misses: Vec::new(),
            deadline_total: 0,
            deadline_met: 0,
        };
        trace.account_deadlines(graph);
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};
    use noc_schedule::{CommPlacement, TaskPlacement};

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    fn chain_graph() -> TaskGraph {
        let mut b = TaskGraph::builder("c", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(
            Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(250)),
        );
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    fn remote_schedule(p: &Platform) -> Schedule {
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        )
    }

    #[test]
    fn dynamic_matches_static_for_single_hop() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute(&s)
            .unwrap();
        // 10 flits over 1 link: arrives at 110, c runs 110..210 — exactly
        // the static schedule.
        assert_eq!(trace.start[1], Time::new(110));
        assert_eq!(trace.finish[1], Time::new(210));
        assert!(trace.meets_deadlines());
        assert!(trace.slippage_vs(&s).iter().all(|&x| x == Time::ZERO));
    }

    #[test]
    fn multi_hop_slips_by_pipeline_fill() {
        let p = platform();
        let g = chain_graph();
        // Same chain but consumer on tile 3 (two hops).
        let route = p.route(TileId::new(0), TileId::new(3)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(3), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute(&s)
            .unwrap();
        // Arrival 111 (one extra pipeline-fill tick) -> start slips by 1.
        assert_eq!(trace.start[1], Time::new(111));
        assert_eq!(trace.slippage_vs(&s)[1], Time::new(1));
    }

    #[test]
    fn local_schedule_runs_back_to_back() {
        let p = platform();
        let g = chain_graph();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(2), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(2), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute(&s)
            .unwrap();
        assert_eq!(trace.start[1], Time::new(100));
        assert_eq!(trace.makespan, Time::new(200));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let p = platform();
        let g = chain_graph();
        let s = Schedule::new(vec![], vec![]);
        assert!(matches!(
            ScheduleExecutor::new(&g, &p, SimConfig::default()).execute(&s),
            Err(SimError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn exec_override_changes_realized_times() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let overrides = vec![Time::new(150), Time::new(100)]; // a runs long
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_exec_times(&s, Some(&overrides))
            .unwrap();
        assert_eq!(trace.finish[0], Time::new(150));
        // Message leaves at 150, arrives 160, c runs 160..260 — past the
        // 250 deadline.
        assert_eq!(trace.finish[1], Time::new(260));
        assert_eq!(trace.deadline_misses.len(), 1);
    }

    #[test]
    fn exec_override_shape_is_checked() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let bad = vec![Time::new(1)];
        assert!(matches!(
            ScheduleExecutor::new(&g, &p, SimConfig::default())
                .execute_with_exec_times(&s, Some(&bad)),
            Err(SimError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn fault_free_faulted_run_matches_plain_execute() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let exec = ScheduleExecutor::new(&g, &p, SimConfig::default());
        let plain = exec.execute(&s).unwrap();
        let faulted = exec.execute_with_faults(&s, &[]).unwrap();
        assert_eq!(
            faulted.finish,
            plain.finish.iter().copied().map(Some).collect::<Vec<_>>()
        );
        assert!(faulted.stranded_tasks.is_empty());
        assert!(faulted.stranded_edges.is_empty());
        assert_eq!(faulted.makespan, plain.makespan);
        assert!(faulted.meets_deadlines());
    }

    #[test]
    fn pe_fault_strands_running_task_and_descendants() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_faults(&s, &[InjectedFault::pe(Time::new(50), PeId::new(0))])
            .unwrap();
        // a dies mid-run at t=50; c starves on a's output.
        assert_eq!(trace.start[0], Some(Time::ZERO));
        assert_eq!(trace.finish[0], None);
        assert_eq!(trace.finish[1], None);
        assert_eq!(trace.stranded_tasks, vec![TaskId::new(0), TaskId::new(1)]);
        assert_eq!(trace.stranded_edges.len(), 1);
        assert_eq!(trace.completed(), 0);
        assert_eq!(trace.met_fraction(), 0.0);
        assert_eq!(trace.makespan, Time::ZERO);
    }

    #[test]
    fn pe_fault_after_finish_spares_delivered_work() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        // a finished at 100 and its message delivered at 110; killing
        // PE 0 at 150 changes nothing downstream.
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_faults(&s, &[InjectedFault::pe(Time::new(150), PeId::new(0))])
            .unwrap();
        assert_eq!(trace.finish[0], Some(Time::new(100)));
        assert_eq!(trace.finish[1], Some(Time::new(210)));
        assert!(trace.stranded_tasks.is_empty());
        assert!(trace.meets_deadlines());
    }

    #[test]
    fn link_fault_before_injection_strands_consumer() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let link = p.link(p.route(TileId::new(0), TileId::new(1))[0]);
        // The link dies at t=50, before a finishes at 100: a completes,
        // but its message strands at injection and c starves.
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_faults(&s, &[InjectedFault::link(Time::new(50), link)])
            .unwrap();
        assert_eq!(trace.finish[0], Some(Time::new(100)));
        assert_eq!(trace.finish[1], None);
        assert_eq!(trace.stranded_tasks, vec![TaskId::new(1)]);
        assert_eq!(trace.stranded_edges.len(), 1);
        assert_eq!(trace.makespan, Time::new(100));
        assert_eq!(trace.met_fraction(), 0.0);
    }

    #[test]
    fn transit_tile_death_severs_through_traffic() {
        let p = platform();
        let g = chain_graph();
        // Producer tile 0, consumer tile 3: the XY route transits tile 1,
        // whose death (with its router) severs the path even though both
        // endpoint PEs stay alive.
        let route = p.route(TileId::new(0), TileId::new(3)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(3), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_faults(&s, &[InjectedFault::pe(Time::new(50), PeId::new(1))])
            .unwrap();
        assert_eq!(trace.finish[0], Some(Time::new(100)));
        assert_eq!(trace.stranded_tasks, vec![TaskId::new(1)]);
    }

    #[test]
    fn midflight_link_death_strands_partially_sent_message() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let link = p.link(p.route(TileId::new(0), TileId::new(1))[0]);
        // The message flies 100..110; kill the link at 105, mid-worm.
        let trace = ScheduleExecutor::new(&g, &p, SimConfig::default())
            .execute_with_faults(&s, &[InjectedFault::link(Time::new(105), link)])
            .unwrap();
        assert_eq!(trace.finish[0], Some(Time::new(100)));
        assert_eq!(trace.finish[1], None);
        assert_eq!(trace.stranded_edges.len(), 1);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let faults = [InjectedFault::pe(Time::new(50), PeId::new(0))];
        let exec = ScheduleExecutor::new(&g, &p, SimConfig::default());
        let a = exec.execute_with_faults(&s, &faults).unwrap();
        let b = exec.execute_with_faults(&s, &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_referencing_unknown_resources_errors() {
        let p = platform();
        let g = chain_graph();
        let s = remote_schedule(&p);
        let exec = ScheduleExecutor::new(&g, &p, SimConfig::default());
        assert!(matches!(
            exec.execute_with_faults(&s, &[InjectedFault::pe(Time::ZERO, PeId::new(99))]),
            Err(SimError::UnknownTile(_))
        ));
        let bogus = noc_platform::topology::Link::new(TileId::new(0), TileId::new(3));
        assert!(matches!(
            exec.execute_with_faults(&s, &[InjectedFault::link(Time::ZERO, bogus)]),
            Err(SimError::UnknownLink(_))
        ));
    }

    #[test]
    fn inverted_order_deadlocks_gracefully() {
        let p = platform();
        let g = chain_graph();
        // Consumer queued before producer on the same PE.
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::new(100), Time::new(200)),
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        assert!(matches!(
            ScheduleExecutor::new(&g, &p, SimConfig::default()).execute(&s),
            Err(SimError::ExecutorDeadlock)
        ));
    }
}
