//! Messages: the packets the network simulator carries.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::tile::TileId;
use noc_platform::units::{Time, Volume};

/// Identifies an injected message within one [`crate::network::NetworkSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MessageId(u32);

impl MessageId {
    /// Creates an id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        MessageId(index)
    }

    /// Returns the dense index as a `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A point-to-point message: `volume` bits from `src` to `dst`, ready
/// for injection at `inject_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Producing tile.
    pub src: TileId,
    /// Consuming tile.
    pub dst: TileId,
    /// Payload size in bits.
    pub volume: Volume,
    /// Earliest injection time (e.g. the producer task's finish).
    pub inject_at: Time,
}

impl Message {
    /// Creates a message.
    #[must_use]
    pub const fn new(src: TileId, dst: TileId, volume: Volume, inject_at: Time) -> Self {
        Message {
            src,
            dst,
            volume,
            inject_at,
        }
    }

    /// `true` if the message never enters the network.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({}, t={})",
            self.src, self.dst, self.volume, self.inject_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality() {
        let m = Message::new(
            TileId::new(1),
            TileId::new(1),
            Volume::from_bits(8),
            Time::ZERO,
        );
        assert!(m.is_local());
        let m = Message::new(
            TileId::new(1),
            TileId::new(2),
            Volume::from_bits(8),
            Time::ZERO,
        );
        assert!(!m.is_local());
    }

    #[test]
    fn display() {
        let m = Message::new(
            TileId::new(0),
            TileId::new(2),
            Volume::from_bits(64),
            Time::new(5),
        );
        assert_eq!(m.to_string(), "0 -> 2 (64 bits, t=5)");
    }
}
