//! The cycle-driven wormhole network model.
//!
//! Every directed link transmits at most one flit per tick. A message
//! ("worm") acquires its route's channels head-first; body flits stream
//! behind through the routers' register buffers; a channel is released
//! once the tail flit has crossed it. Blocked heads stall in place with
//! their buffered flits (no virtual channels, as in the paper's simple
//! router). Channel arbitration is FIFO by request time with message-id
//! tie-breaking, so simulations are fully deterministic.
//!
//! Contention-free latency of a `F`-flit message over `k` links is
//! `F + k - 1` ticks: the schedule-table model used by the schedulers
//! accounts the `F` serialization ticks and abstracts away the `k - 1`
//! pipeline-fill ticks; the simulator exists to measure exactly such
//! gaps (see `DESIGN.md` §6).

use noc_platform::routing::LinkId;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::config::SimConfig;
use crate::message::{Message, MessageId};

#[derive(Debug, Clone)]
struct Worm {
    msg: Message,
    route: Vec<LinkId>,
    flits: u64,
    /// Links acquired so far (a prefix of `route`).
    acquired: usize,
    /// Flits transmitted over each route link.
    sent: Vec<u64>,
    /// Flits sitting in the downstream buffer of each route link.
    buffered: Vec<u64>,
    /// Flits delivered at the destination.
    absorbed: u64,
    /// Earliest tick each acquired link may transmit (router pipeline).
    ready_at: Vec<Time>,
    /// When the head started waiting for its next channel.
    requesting_since: Option<Time>,
    completed_at: Option<Time>,
    /// Permanently undeliverable: a link on the remaining route failed.
    stranded: bool,
}

impl Worm {
    fn is_done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Delivered or stranded — either way the network owes it nothing.
    fn is_settled(&self) -> bool {
        self.is_done() || self.stranded
    }

    /// `true` if the head flit is ready to request the next channel.
    fn head_waiting(&self) -> bool {
        if self.is_settled() || self.acquired == self.route.len() {
            return false;
        }
        if self.acquired == 0 {
            return true; // head still at the source
        }
        self.buffered[self.acquired - 1] >= 1
    }
}

/// The wormhole network simulator; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct NetworkSim {
    config: SimConfig,
    now: Time,
    worms: Vec<Worm>,
    /// Current channel owner per link.
    owner: Vec<Option<MessageId>>,
    /// Busy ticks per link (for utilization stats).
    busy: Vec<u64>,
    /// Links that have permanently failed mid-simulation.
    dead: Vec<bool>,
}

impl NetworkSim {
    /// Creates an idle network for `platform`.
    #[must_use]
    pub fn new(platform: &Platform, config: SimConfig) -> Self {
        NetworkSim {
            config,
            now: Time::ZERO,
            worms: Vec::new(),
            owner: vec![None; platform.link_count()],
            busy: vec![0; platform.link_count()],
            dead: vec![false; platform.link_count()],
        }
    }

    /// Injects a message whose route the caller provides explicitly
    /// (use [`NetworkSim::inject_on`] to resolve it from a platform).
    ///
    /// Local messages (`src == dst`) complete instantly at their
    /// injection time.
    ///
    /// # Panics
    ///
    /// Panics if the message's injection time lies in the simulator's
    /// past (`inject_at < now`).
    pub fn inject_with_route(&mut self, msg: Message, route: Vec<LinkId>) -> MessageId {
        assert!(
            msg.inject_at >= self.now,
            "cannot inject into the past: {} < {}",
            msg.inject_at,
            self.now
        );
        let id = MessageId::new(self.worms.len() as u32);
        let flits = self.config.flits_for(msg.volume.bits());
        let completed_at = if route.is_empty() {
            Some(msg.inject_at)
        } else {
            None
        };
        // A route crossing an already-failed link can never deliver:
        // the worm is stranded on arrival rather than deadlocking.
        let stranded = route.iter().any(|l| self.dead[l.index()]);
        let n = route.len();
        self.worms.push(Worm {
            msg,
            route,
            flits,
            acquired: 0,
            sent: vec![0; n],
            buffered: vec![0; n],
            absorbed: 0,
            ready_at: vec![Time::ZERO; n],
            requesting_since: None,
            completed_at,
            stranded,
        });
        id
    }

    /// Convenience wrapper resolving the route from `platform`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range for `platform`, or if
    /// the injection time lies in the past.
    pub fn inject_on(&mut self, platform: &Platform, msg: Message) -> MessageId {
        let route = platform.route(msg.src, msg.dst).to_vec();
        self.inject_with_route(msg, route)
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Delivery time of a message, if delivered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn completion(&self, id: MessageId) -> Option<Time> {
        self.worms[id.index()].completed_at
    }

    /// `true` once every injected message has been delivered (or
    /// stranded by a link failure — stranded worms are never delivered
    /// and no longer occupy the network).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.worms.iter().all(Worm::is_settled)
    }

    /// `true` if the message was stranded by a link failure and will
    /// never be delivered.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn stranded(&self, id: MessageId) -> bool {
        self.worms[id.index()].stranded
    }

    /// Permanently fails a link, effective immediately.
    ///
    /// Every in-flight worm whose *remaining* route crosses the link
    /// (tail not yet past it) is stranded: it will never complete, and
    /// all channels it still holds are released so other traffic can
    /// proceed. Worms whose tail already cleared the link are
    /// unaffected. Future injections routed over the link strand at
    /// injection time.
    ///
    /// Returns the messages stranded by this failure, in id order.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn fail_link(&mut self, link: LinkId) -> Vec<MessageId> {
        assert!(link.index() < self.dead.len(), "unknown link {link}");
        if self.dead[link.index()] {
            return Vec::new();
        }
        self.dead[link.index()] = true;
        let mut newly = Vec::new();
        for (i, w) in self.worms.iter_mut().enumerate() {
            if w.is_settled() {
                continue;
            }
            let severed = w
                .route
                .iter()
                .enumerate()
                .any(|(j, &l)| l == link && w.sent[j] < w.flits);
            if !severed {
                continue;
            }
            w.stranded = true;
            w.requesting_since = None;
            newly.push(MessageId::new(i as u32));
            // Release every channel the dead worm still owns.
            for (j, &l) in w.route.iter().enumerate().take(w.acquired) {
                if w.sent[j] < w.flits {
                    self.owner[l.index()] = None;
                }
            }
        }
        newly
    }

    /// Advances one tick. Returns `true` if anything happened (a grant,
    /// a flit movement, or a pending future injection exists).
    pub fn tick(&mut self) -> bool {
        let now = self.now;
        let mut activity = false;

        // 1. Register channel requests.
        for w in &mut self.worms {
            if w.msg.inject_at > now || w.is_settled() {
                continue;
            }
            if w.head_waiting() && w.requesting_since.is_none() {
                w.requesting_since = Some(now);
            }
        }

        // 2. FIFO arbitration per free link.
        let mut grants: Vec<(usize, MessageId)> = Vec::new(); // (worm idx, _)
        for (i, w) in self.worms.iter().enumerate() {
            if w.requesting_since.is_none() || w.msg.inject_at > now {
                continue;
            }
            let link = w.route[w.acquired];
            if self.owner[link.index()].is_some() {
                continue;
            }
            // Earliest requester wins; ties by message id (== index).
            let better = grants
                .iter()
                .find(|(j, _)| self.worms[*j].route[self.worms[*j].acquired] == link);
            match better {
                None => grants.push((i, MessageId::new(i as u32))),
                Some(&(j, _)) => {
                    let (a, b) = (self.worms[j].requesting_since, w.requesting_since);
                    if b < a {
                        let pos = grants.iter().position(|&(x, _)| x == j).expect("present");
                        grants[pos] = (i, MessageId::new(i as u32));
                    }
                }
            }
        }
        for (i, id) in grants {
            let hop_latency = self.config.hop_latency;
            let w = &mut self.worms[i];
            let link = w.route[w.acquired];
            self.owner[link.index()] = Some(id);
            w.ready_at[w.acquired] = now + Time::new(hop_latency);
            w.acquired += 1;
            w.requesting_since = None;
            activity = true;
        }

        // 3. Flit movement, head links first so freed buffer slots chain.
        for i in 0..self.worms.len() {
            let w = &mut self.worms[i];
            if w.msg.inject_at > now || w.is_settled() || w.acquired == 0 {
                continue;
            }
            let last = w.route.len() - 1;
            for j in (0..w.acquired).rev() {
                if w.sent[j] >= w.flits {
                    continue; // tail already past this link
                }
                if now < w.ready_at[j] {
                    // Router pipeline still setting up: progress will
                    // happen without further external events, so this
                    // counts as activity (otherwise run_until_idle would
                    // misdiagnose a pipeline warm-up as a deadlock).
                    activity = true;
                    continue;
                }
                let upstream_ready = if j == 0 {
                    w.sent[0] < w.flits
                } else {
                    w.buffered[j - 1] >= 1
                };
                let downstream_free = j == last || w.buffered[j] < self.config.buffer_flits;
                if !(upstream_ready && downstream_free) {
                    continue;
                }
                w.sent[j] += 1;
                if j > 0 {
                    w.buffered[j - 1] -= 1;
                }
                if j == last {
                    w.absorbed += 1;
                } else {
                    w.buffered[j] += 1;
                }
                self.busy[w.route[j].index()] += 1;
                activity = true;
                // Tail passed: release the channel.
                if w.sent[j] == w.flits {
                    self.owner[w.route[j].index()] = None;
                }
            }
            if w.absorbed == w.flits {
                w.completed_at = Some(now + Time::new(1));
            }
        }

        // Future injections count as pending activity.
        let pending = self
            .worms
            .iter()
            .any(|w| w.msg.inject_at > now && !w.is_settled());
        self.now = now + Time::new(1);
        activity || pending
    }

    /// Runs until every message is delivered, fast-forwarding through
    /// fully idle gaps, and returns the latest delivery time.
    ///
    /// # Panics
    ///
    /// Panics if the network livelocks (possible only with
    /// deadlock-prone custom routing functions; XY/YX and BFS
    /// shortest-path on meshes are deadlock-free), after a generous
    /// bound of `2^32` ticks.
    pub fn run_until_idle(&mut self) -> Time {
        const BOUND: u64 = 1 << 32;
        let start = self.now;
        while !self.is_idle() {
            let progressed = self.tick();
            if !progressed {
                // Idle gap: jump to the next injection, if any.
                let next = self
                    .worms
                    .iter()
                    .filter(|w| !w.is_settled() && w.msg.inject_at > self.now)
                    .map(|w| w.msg.inject_at)
                    .min();
                match next {
                    Some(t) => self.now = t,
                    None => panic!("network stalled with undelivered messages (deadlock)"),
                }
            }
            assert!(
                (self.now - start) < Time::new(BOUND),
                "network exceeded {BOUND} ticks; suspected livelock"
            );
        }
        self.worms
            .iter()
            .filter_map(|w| w.completed_at)
            .max()
            .unwrap_or(self.now)
    }

    /// Ideal (contention-free) delivery time of a message:
    /// `inject + flits + (links - 1)(1 + hop_latency) + hop_latency`
    /// (or `inject` for local ones).
    #[must_use]
    pub fn ideal_completion(&self, id: MessageId) -> Time {
        let w = &self.worms[id.index()];
        if w.route.is_empty() {
            return w.msg.inject_at;
        }
        let k = w.route.len() as u64;
        let h = self.config.hop_latency;
        w.msg.inject_at + Time::new(w.flits + (k - 1) * (1 + h) + h)
    }

    /// Busy ticks per link, link-id order.
    #[must_use]
    pub fn link_busy_ticks(&self) -> &[u64] {
        &self.busy
    }

    /// Delivery statistics of one message, if delivered.
    #[must_use]
    pub fn message_stats(&self, id: MessageId) -> Option<MessageStats> {
        let w = &self.worms[id.index()];
        let delivered_at = w.completed_at?;
        let ideal = self.ideal_completion(id);
        Some(MessageStats {
            injected_at: w.msg.inject_at,
            delivered_at,
            ideal,
            stall_ticks: delivered_at.saturating_sub(ideal).ticks(),
        })
    }

    /// Mean end-to-end latency over all delivered messages, in ticks
    /// (zero when nothing was delivered).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let delivered: Vec<f64> = self
            .worms
            .iter()
            .filter_map(|w| w.completed_at.map(|c| (c - w.msg.inject_at).as_f64()))
            .collect();
        if delivered.is_empty() {
            0.0
        } else {
            delivered.iter().sum::<f64>() / delivered.len() as f64
        }
    }
}

/// Per-message delivery statistics (see [`NetworkSim::message_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageStats {
    /// When the message became ready for injection.
    pub injected_at: Time,
    /// When the tail flit was absorbed at the destination.
    pub delivered_at: Time,
    /// Contention-free delivery time for comparison.
    pub ideal: Time,
    /// Ticks lost to channel contention and back-pressure.
    pub stall_ticks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    fn msg(src: u32, dst: u32, bits: u64, at: u64) -> Message {
        Message::new(
            TileId::new(src),
            TileId::new(dst),
            Volume::from_bits(bits),
            Time::new(at),
        )
    }

    #[test]
    fn single_hop_latency_is_flit_count() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // 320 bits = 10 flits over 1 link: latency 10.
        let id = sim.inject_on(&p, msg(0, 1, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(id), Some(Time::new(10)));
        assert_eq!(sim.ideal_completion(id), Time::new(10));
    }

    #[test]
    fn multi_hop_adds_pipeline_fill() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // 10 flits over 2 links: 10 + 2 - 1 = 11.
        let id = sim.inject_on(&p, msg(0, 3, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(id), Some(Time::new(11)));
    }

    #[test]
    fn local_message_is_instant() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let id = sim.inject_on(&p, msg(2, 2, 4096, 7));
        assert_eq!(sim.completion(id), Some(Time::new(7)));
        assert!(sim.is_idle());
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // Two messages over the same single link 0 -> 1, same inject time.
        let a = sim.inject_on(&p, msg(0, 1, 320, 0));
        let b = sim.inject_on(&p, msg(0, 1, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(a), Some(Time::new(10)));
        // b waits for a's tail: grant at t=10, done at 20.
        assert_eq!(sim.completion(b), Some(Time::new(20)));
    }

    #[test]
    fn fifo_arbitration_prefers_earlier_requester() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // b (higher id) requests earlier and must win the channel.
        let a = sim.inject_on(&p, msg(0, 1, 320, 5));
        let b = sim.inject_on(&p, msg(0, 1, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(b), Some(Time::new(10)));
        assert_eq!(sim.completion(a), Some(Time::new(20)));
    }

    #[test]
    fn blocked_head_stalls_and_recovers() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // a occupies link 1->3 (XY route of 1 -> 3). b goes 0 -> 1 -> 3 and
        // must stall at the second hop until a's tail passes.
        let a = sim.inject_on(&p, msg(1, 3, 640, 0)); // 20 flits
        let b = sim.inject_on(&p, msg(0, 3, 320, 0)); // 10 flits via 0->1->3
        sim.run_until_idle();
        assert_eq!(sim.completion(a), Some(Time::new(20)));
        let done_b = sim.completion(b).unwrap();
        assert!(
            done_b > Time::new(11),
            "b must have been delayed, got {done_b}"
        );
        // b's head waits at router 1; once 1->3 frees at t=20 it streams
        // its remaining flits: finish = 20 + 10 (some flits already
        // buffered downstream of 0->1).
        assert_eq!(done_b, Time::new(30));
    }

    #[test]
    fn idle_gaps_are_fast_forwarded() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let id = sim.inject_on(&p, msg(0, 1, 32, 1_000_000));
        let end = sim.run_until_idle();
        assert_eq!(sim.completion(id), Some(Time::new(1_000_001)));
        assert_eq!(end, Time::new(1_000_001));
    }

    #[test]
    fn link_utilization_counts_flits() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        sim.inject_on(&p, msg(0, 1, 320, 0)); // 10 flits over one link
        sim.run_until_idle();
        let total: u64 = sim.link_busy_ticks().iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn deep_worm_respects_small_buffers() {
        // On a 4x1 line, a long message with 1-flit buffers still arrives;
        // the pipeline just runs at 1 flit/tick.
        let p = Platform::builder()
            .topology(TopologySpec::mesh(4, 1))
            .link_bandwidth(32.0)
            .build()
            .unwrap();
        let mut sim = NetworkSim::new(&p, SimConfig::new(32, 1));
        let id = sim.inject_on(&p, msg(0, 3, 320, 0)); // 10 flits, 3 links
        sim.run_until_idle();
        assert_eq!(sim.completion(id), Some(Time::new(12))); // 10 + 3 - 1
    }

    #[test]
    fn hop_latency_adds_router_pipeline_delay() {
        let p = platform();
        // 10 flits over 1 link with 1-tick routers: 10 + 1 = 11.
        let mut sim = NetworkSim::new(&p, SimConfig::new(32, 2).with_hop_latency(1));
        let a = sim.inject_on(&p, msg(0, 1, 320, 0));
        // 10 flits over 2 links: 10 + 1*(1+1) + 1 = 13.
        let b = sim.inject_on(&p, msg(3, 0, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(a), Some(Time::new(11)));
        assert_eq!(sim.completion(b), Some(Time::new(13)));
        assert_eq!(sim.ideal_completion(a), Time::new(11));
        assert_eq!(sim.ideal_completion(b), Time::new(13));
    }

    #[test]
    fn message_stats_count_contention_stalls() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let a = sim.inject_on(&p, msg(0, 1, 320, 0));
        let b = sim.inject_on(&p, msg(0, 1, 320, 0)); // serialized behind a
        sim.run_until_idle();
        let sa = sim.message_stats(a).expect("delivered");
        let sb = sim.message_stats(b).expect("delivered");
        assert_eq!(sa.stall_ticks, 0);
        assert_eq!(sb.stall_ticks, 10);
        assert_eq!(sb.delivered_at, Time::new(20));
        // Mean latency: (10 + 20) / 2.
        assert!((sim.mean_latency() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn stats_absent_before_delivery() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let a = sim.inject_on(&p, msg(0, 1, 320, 5));
        assert!(sim.message_stats(a).is_none());
        assert_eq!(sim.mean_latency(), 0.0);
    }

    #[test]
    fn failed_link_strands_inflight_worm() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let id = sim.inject_on(&p, msg(0, 1, 320, 0)); // 10 flits
        for _ in 0..3 {
            sim.tick();
        }
        let link = p.route(TileId::new(0), TileId::new(1))[0];
        let stranded = sim.fail_link(link);
        assert_eq!(stranded, vec![id]);
        assert!(sim.stranded(id));
        assert!(sim.is_idle(), "stranded worms no longer occupy the net");
        assert_eq!(sim.completion(id), None);
        // Failing the same link again reports nothing new.
        assert!(sim.fail_link(link).is_empty());
    }

    #[test]
    fn failure_after_tail_passed_is_harmless() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let id = sim.inject_on(&p, msg(0, 1, 320, 0));
        sim.run_until_idle();
        let link = p.route(TileId::new(0), TileId::new(1))[0];
        assert!(sim.fail_link(link).is_empty());
        assert_eq!(sim.completion(id), Some(Time::new(10)));
    }

    #[test]
    fn stranded_worm_releases_its_channels() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        // a goes 0 -> 1 -> 3; killing 1->3 mid-flight must free 0->1
        // so b (injected later over 0->1) still delivers.
        let a = sim.inject_on(&p, msg(0, 3, 640, 0)); // 20 flits
        for _ in 0..5 {
            sim.tick();
        }
        let second_hop = p.route(TileId::new(0), TileId::new(3))[1];
        assert_eq!(sim.fail_link(second_hop), vec![a]);
        let b = sim.inject_on(&p, msg(0, 1, 320, 6));
        sim.run_until_idle();
        assert!(sim.stranded(a));
        assert_eq!(sim.completion(b), Some(Time::new(16)));
    }

    #[test]
    fn injection_over_dead_link_strands_immediately() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        let link = p.route(TileId::new(0), TileId::new(1))[0];
        sim.fail_link(link);
        let id = sim.inject_on(&p, msg(0, 1, 320, 0));
        assert!(sim.stranded(id));
        assert!(sim.is_idle());
        // Traffic avoiding the dead link is unaffected.
        let ok = sim.inject_on(&p, msg(2, 3, 320, 0));
        sim.run_until_idle();
        assert_eq!(sim.completion(ok), Some(Time::new(10)));
    }

    #[test]
    #[should_panic(expected = "inject into the past")]
    fn injecting_into_the_past_panics() {
        let p = platform();
        let mut sim = NetworkSim::new(&p, SimConfig::default());
        sim.inject_on(&p, msg(0, 1, 32, 10));
        sim.run_until_idle();
        sim.inject_on(&p, msg(0, 1, 32, 0));
    }
}
