use std::error::Error;
use std::fmt;

use noc_platform::tile::TileId;
use noc_platform::topology::Link;

/// Errors produced by the simulator layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A message references a tile outside the simulated platform.
    UnknownTile(TileId),
    /// An injected fault references a link the platform does not have.
    UnknownLink(Link),
    /// The executor was given a schedule whose shape does not match the
    /// task graph.
    ShapeMismatch {
        /// Tasks in the schedule.
        schedule_tasks: usize,
        /// Tasks in the graph.
        graph_tasks: usize,
    },
    /// The executor made no progress: the schedule's per-PE order
    /// contradicts the dependency graph (should not happen for validated
    /// schedules).
    ExecutorDeadlock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTile(t) => write!(f, "message references unknown tile {t}"),
            SimError::UnknownLink(l) => write!(f, "fault references unknown link {l}"),
            SimError::ShapeMismatch {
                schedule_tasks,
                graph_tasks,
            } => write!(
                f,
                "schedule has {schedule_tasks} tasks but the graph has {graph_tasks}"
            ),
            SimError::ExecutorDeadlock => {
                write!(
                    f,
                    "execution deadlocked: per-PE order contradicts dependencies"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }

    #[test]
    fn display_is_informative() {
        assert!(SimError::ExecutorDeadlock.to_string().contains("deadlock"));
    }
}
