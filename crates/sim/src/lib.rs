//! # noc-sim
//!
//! A discrete (cycle-driven), flit-level **wormhole NoC simulator** for
//! the tile-based platforms of `noc-platform`, used to validate the
//! static schedules produced by `noc-eas` and to measure what happens
//! when a schedule executes under *dynamic* network contention instead
//! of reserved link slots.
//!
//! The router model follows the paper's platform description (Sec. 3.1):
//! wormhole switching, register-based input buffers of one or two flits,
//! one flit per link per tick, deterministic routing taken from the
//! platform's ACG, and FIFO channel arbitration.
//!
//! Two layers:
//!
//! * [`network`] — the network itself: inject [`message::Message`]s,
//!   advance ticks, observe delivery times and link utilization,
//! * [`exec`] — a whole-application executor: replays a
//!   [`noc_schedule::Schedule`]'s assignment and per-PE order, injecting
//!   each transaction when its producer *actually* finishes, and reports
//!   the realized (dynamic) task times and deadline misses next to the
//!   static ones.
//!
//! A third, orthogonal layer is [`fault`]: permanent PE/link failures
//! that strike *mid-execution* ([`exec::ScheduleExecutor::execute_with_faults`]),
//! stranding the affected tasks and messages instead of deadlocking —
//! the measurement side of the platform's static fault model.
//!
//! # Example
//!
//! ```
//! use noc_platform::prelude::*;
//! use noc_sim::network::NetworkSim;
//! use noc_sim::message::Message;
//! use noc_sim::SimConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder().topology(TopologySpec::mesh(2, 2)).build()?;
//! let mut sim = NetworkSim::new(&platform, SimConfig::default());
//! let id = sim.inject_on(
//!     &platform,
//!     Message::new(TileId::new(0), TileId::new(3), Volume::from_bits(320), Time::ZERO),
//! );
//! let makespan = sim.run_until_idle();
//! assert!(sim.completion(id).is_some());
//! assert!(makespan > Time::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod exec;
pub mod fault;
pub mod message;
pub mod network;

pub use config::SimConfig;
pub use error::SimError;
pub use exec::{ExecutionTrace, ScheduleExecutor};
pub use fault::{FaultKind, FaultedTrace, InjectedFault};

/// Convenient glob import of the most commonly used simulator types.
pub mod prelude {
    pub use crate::exec::{ExecutionTrace, ScheduleExecutor};
    pub use crate::fault::{FaultKind, FaultedTrace, InjectedFault};
    pub use crate::message::{Message, MessageId};
    pub use crate::network::{MessageStats, NetworkSim};
    pub use crate::SimConfig;
    pub use crate::SimError;
}
