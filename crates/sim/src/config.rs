//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Parameters of the wormhole network model.
///
/// The defaults mirror the scheduling model's assumptions so simulated
/// and scheduled transfer durations agree up to pipeline fill latency:
/// one 32-bit flit per link per tick matches the platform's default
/// bandwidth of 32 bits/tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Bits per flit (one flit crosses one link per tick).
    pub flit_bits: u64,
    /// Router input buffer depth in flits (the paper: "registers,
    /// typically in the size of one or two flits each").
    pub buffer_flits: u64,
    /// Extra router pipeline ticks charged when a head flit acquires a
    /// channel (0 = single-cycle routers, the schedule model's
    /// assumption; 1–2 model deeper router pipelines).
    pub hop_latency: u64,
}

impl SimConfig {
    /// Creates a configuration with single-cycle routers.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(flit_bits: u64, buffer_flits: u64) -> Self {
        assert!(flit_bits > 0, "flit size must be positive");
        assert!(buffer_flits > 0, "buffers must hold at least one flit");
        SimConfig {
            flit_bits,
            buffer_flits,
            hop_latency: 0,
        }
    }

    /// Sets the per-hop router pipeline latency (builder style).
    #[must_use]
    pub fn with_hop_latency(mut self, ticks: u64) -> Self {
        self.hop_latency = ticks;
        self
    }

    /// Flits needed for a payload of `bits` (at least one).
    #[must_use]
    pub fn flits_for(&self, bits: u64) -> u64 {
        bits.div_ceil(self.flit_bits).max(1)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(32, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_rounds_up() {
        let c = SimConfig::default();
        assert_eq!(c.flits_for(32), 1);
        assert_eq!(c.flits_for(33), 2);
        assert_eq!(c.flits_for(1), 1);
        assert_eq!(
            c.flits_for(0),
            1,
            "even an empty payload needs a header flit"
        );
    }

    #[test]
    #[should_panic(expected = "flit size")]
    fn zero_flit_size_rejected() {
        let _ = SimConfig::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "buffers")]
    fn zero_buffer_rejected() {
        let _ = SimConfig::new(32, 0);
    }
}
