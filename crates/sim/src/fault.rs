//! Dynamic fault injection for schedule execution.
//!
//! While `noc_platform::fault::FaultSet` models faults that are *known
//! before scheduling* (and routed around statically), this module models
//! faults that strike **mid-execution**: a PE or link that dies at a
//! fixed instant while a schedule is running. The executor
//! ([`crate::exec::ScheduleExecutor::execute_with_faults`]) keeps
//! running whatever is unaffected and reports exactly which tasks and
//! transactions were *stranded* — the raw material for graceful-
//! degradation studies (how many deadlines survive k faults, and how
//! much a fault-aware re-repair recovers).
//!
//! Fault semantics follow the platform's static model: a dead tile
//! takes its router down with it, so a [`FaultKind::Pe`] failure also
//! severs every link adjacent to the PE's tile (mirroring
//! `FaultSet::blocks_link`). A [`FaultKind::Link`] failure kills a
//! single directed channel. All effects are permanent.

use noc_ctg::edge::EdgeId;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::topology::Link;
use noc_platform::units::Time;

/// The failing resource of one [`InjectedFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The PE dies, together with its tile's router — every link
    /// adjacent to the tile is severed too.
    Pe(PeId),
    /// A single directed link dies; the tiles stay alive.
    Link(Link),
}

/// A permanent resource failure activating at a fixed instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Activation time: the resource is unusable from this tick on.
    pub at: Time,
    /// Which resource fails.
    pub kind: FaultKind,
}

impl InjectedFault {
    /// A PE (and router) failure at `at`.
    #[must_use]
    pub fn pe(at: Time, pe: PeId) -> Self {
        InjectedFault {
            at,
            kind: FaultKind::Pe(pe),
        }
    }

    /// A directed-link failure at `at`.
    #[must_use]
    pub fn link(at: Time, link: Link) -> Self {
        InjectedFault {
            at,
            kind: FaultKind::Link(link),
        }
    }
}

/// The realized timing of one *faulted* schedule execution.
///
/// Unlike [`crate::exec::ExecutionTrace`], per-task times are optional:
/// a stranded task never started (or was killed mid-run) and has no
/// finish. Deadline accounting treats stranded deadline-tasks as
/// unmet — they appear in neither `deadline_misses` (their tardiness is
/// unbounded) nor the met count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultedTrace {
    /// Realized start per task (`None` if it never started).
    pub start: Vec<Option<Time>>,
    /// Realized finish per task (`None` if stranded).
    pub finish: Vec<Option<Time>>,
    /// Tasks that can never complete: killed on a dead PE, or
    /// transitively starved of an input, in id order.
    pub stranded_tasks: Vec<TaskId>,
    /// Edges whose transaction can never be delivered (message severed
    /// in flight, routed over a dead link, or never produced), id order.
    pub stranded_edges: Vec<EdgeId>,
    /// Latest finish among *completed* tasks.
    pub makespan: Time,
    /// Completed tasks that finished past their deadline, with
    /// tardiness.
    pub deadline_misses: Vec<(TaskId, Time)>,
    /// Number of tasks carrying an explicit deadline.
    pub deadline_total: usize,
    /// Deadline tasks that completed on time.
    pub deadline_met: usize,
}

impl FaultedTrace {
    /// Number of tasks that ran to completion.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.finish.iter().filter(|f| f.is_some()).count()
    }

    /// Fraction of explicit deadlines met (`1.0` when there are none).
    #[must_use]
    pub fn met_fraction(&self) -> f64 {
        if self.deadline_total == 0 {
            1.0
        } else {
            self.deadline_met as f64 / self.deadline_total as f64
        }
    }

    /// `true` when every explicit deadline was met despite the faults.
    #[must_use]
    pub fn meets_deadlines(&self) -> bool {
        self.deadline_met == self.deadline_total
    }

    /// Tallies deadline bookkeeping from realized finishes.
    pub(crate) fn account_deadlines(&mut self, graph: &TaskGraph) {
        self.deadline_total = 0;
        self.deadline_met = 0;
        self.deadline_misses.clear();
        for t in graph.task_ids() {
            let Some(d) = graph.task(t).deadline() else {
                continue;
            };
            self.deadline_total += 1;
            match self.finish[t.index()] {
                Some(f) if f <= d => self.deadline_met += 1,
                Some(f) => self.deadline_misses.push((t, f - d)),
                None => {} // stranded: unmet, unbounded tardiness
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ctg::task::Task;
    use noc_platform::tile::TileId;
    use noc_platform::units::Energy;

    #[test]
    fn constructors_round_trip() {
        let f = InjectedFault::pe(Time::new(10), PeId::new(2));
        assert_eq!(f.at, Time::new(10));
        assert_eq!(f.kind, FaultKind::Pe(PeId::new(2)));
        let l = Link::new(TileId::new(0), TileId::new(1));
        assert_eq!(InjectedFault::link(Time::ZERO, l).kind, FaultKind::Link(l));
    }

    #[test]
    fn deadline_accounting_separates_met_late_and_stranded() {
        let mut b = TaskGraph::builder("acct", 1);
        let mk = |n: &str, d: u64| {
            Task::uniform(n, 1, Time::new(10), Energy::from_nj(1.0)).with_deadline(Time::new(d))
        };
        let met = b.add_task(mk("met", 100));
        let late = b.add_task(mk("late", 5));
        let stranded = b.add_task(mk("stranded", 100));
        let g = b.build().unwrap();
        let mut trace = FaultedTrace {
            start: vec![Some(Time::ZERO), Some(Time::ZERO), None],
            finish: vec![Some(Time::new(10)), Some(Time::new(10)), None],
            stranded_tasks: vec![stranded],
            stranded_edges: Vec::new(),
            makespan: Time::new(10),
            deadline_misses: Vec::new(),
            deadline_total: 0,
            deadline_met: 0,
        };
        trace.account_deadlines(&g);
        assert_eq!(trace.deadline_total, 3);
        assert_eq!(trace.deadline_met, 1);
        assert_eq!(trace.deadline_misses, vec![(late, Time::new(5))]);
        assert!((trace.met_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!trace.meets_deadlines());
        assert_eq!(trace.completed(), 2);
        let _ = met;
    }
}
