//! Property-based tests of the schedule-table invariants — the data
//! structure every scheduler decision rests on.

use proptest::prelude::*;

use noc_platform::units::Time;
use noc_schedule::table::{find_earliest_across, ScheduleTable};

/// A random request stream: (ready, duration) pairs with small values so
/// collisions are frequent.
fn requests() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..200, 1u64..40), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// find_earliest always returns a feasible, at-or-after-ready slot,
    /// and occupying it keeps the table consistent.
    #[test]
    fn find_earliest_returns_feasible_minimal_slots(reqs in requests()) {
        let mut table = ScheduleTable::new();
        for (ready, dur) in reqs {
            let (ready, dur) = (Time::new(ready), Time::new(dur));
            let start = table.find_earliest(ready, dur);
            prop_assert!(start >= ready);
            prop_assert!(table.is_free(start, dur));
            // Minimality: no earlier feasible start at tick granularity.
            if start > ready {
                let probe = start - Time::new(1);
                prop_assert!(
                    !table.is_free(probe.max(ready), dur),
                    "slot {} not minimal for ready {} dur {}", start, ready, dur
                );
            }
            table.occupy(start, dur);
        }
        // Slots are sorted and disjoint.
        let slots = table.slots();
        for w in slots.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// occupy/release round-trips restore the table exactly.
    #[test]
    fn occupy_release_is_involutive(reqs in requests()) {
        let mut table = ScheduleTable::new();
        let mut placed = Vec::new();
        for (ready, dur) in reqs {
            let (ready, dur) = (Time::new(ready), Time::new(dur));
            let start = table.find_earliest(ready, dur);
            table.occupy(start, dur);
            placed.push((start, dur));
        }
        let full = table.clone();
        // Release half, re-occupy, compare.
        let half = placed.len() / 2;
        for &(s, d) in &placed[..half] {
            table.release(s, d);
        }
        for &(s, d) in &placed[..half] {
            prop_assert!(table.is_free(s, d));
            table.occupy(s, d);
        }
        prop_assert_eq!(table, full);
    }

    /// The merged path search agrees with a brute-force scan over ticks.
    #[test]
    fn path_search_matches_brute_force(
        reqs_a in requests(), reqs_b in requests(),
        ready in 0u64..100, dur in 1u64..20,
    ) {
        let mut a = ScheduleTable::new();
        for (r, d) in reqs_a {
            let start = a.find_earliest(Time::new(r), Time::new(d));
            a.occupy(start, Time::new(d));
        }
        let mut b = ScheduleTable::new();
        for (r, d) in reqs_b {
            let start = b.find_earliest(Time::new(r), Time::new(d));
            b.occupy(start, Time::new(d));
        }
        let (ready, dur) = (Time::new(ready), Time::new(dur));
        let fast = find_earliest_across(&[&a, &b], ready, dur);
        // Brute force from `ready` upwards.
        let mut t = ready;
        let brute = loop {
            if a.is_free(t, dur) && b.is_free(t, dur) {
                break t;
            }
            t += Time::new(1);
        };
        prop_assert_eq!(fast, brute);
    }

    /// busy_time equals the sum of what was occupied.
    #[test]
    fn busy_time_is_conserved(reqs in requests()) {
        let mut table = ScheduleTable::new();
        let mut total = 0u64;
        for (ready, dur) in reqs {
            let start = table.find_earliest(Time::new(ready), Time::new(dur));
            table.occupy(start, Time::new(dur));
            total += dur;
        }
        prop_assert_eq!(table.busy_time(), Time::new(total));
    }
}
