//! VCD (Value Change Dump) export: view a schedule as waveforms in
//! GTKWave or any other VCD viewer.
//!
//! One string-valued signal is emitted per PE (carrying the running
//! task's name, `idle` between tasks) and one per *used* link (carrying
//! the transaction's edge id while the channel is reserved). Timescale
//! is one tick = 1 ns, matching the workspace's time convention.

use std::fmt::Write as _;

use noc_ctg::TaskGraph;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::schedule::Schedule;

/// An event on one signal: at `time`, the signal takes `value`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: Time,
    signal: usize,
    value: String,
}

/// Renders `schedule` as a VCD document.
///
/// ```
/// use noc_schedule::prelude::*;
/// use noc_schedule::vcd::to_vcd;
/// # use noc_ctg::prelude::*;
/// # use noc_platform::prelude::*;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let platform = Platform::builder().topology(TopologySpec::mesh(2, 1)).build()?;
/// # let mut b = TaskGraph::builder("g", 2);
/// # b.add_task(Task::uniform("boot", 2, Time::new(10), Energy::from_nj(1.0)));
/// # let graph = b.build()?;
/// # let schedule = Schedule::new(
/// #     vec![TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10))], vec![]);
/// let vcd = to_vcd(&schedule, &graph, &platform);
/// assert!(vcd.contains("$timescale 1ns $end"));
/// assert!(vcd.contains("boot"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_vcd(schedule: &Schedule, graph: &TaskGraph, platform: &Platform) -> String {
    // Identifier codes: printable ASCII starting at '!'.
    let code = |i: usize| -> String {
        let mut s = String::new();
        let mut v = i;
        loop {
            s.push((b'!' + (v % 94) as u8) as char);
            v /= 94;
            if v == 0 {
                break;
            }
        }
        s
    };

    let mut header = String::new();
    let _ = writeln!(header, "$comment noc-eas schedule: {} $end", graph.name());
    let _ = writeln!(header, "$timescale 1ns $end");
    let _ = writeln!(header, "$scope module {} $end", sanitize(graph.name()));

    // Signal 0..P-1: PEs. Signals P..: used links.
    let pe_count = platform.tile_count();
    let mut used_links: Vec<usize> = Vec::new();
    for e in graph.edge_ids() {
        for l in &schedule.comm(e).route {
            if !used_links.contains(&l.index()) {
                used_links.push(l.index());
            }
        }
    }
    used_links.sort_unstable();
    for pe in 0..pe_count {
        let _ = writeln!(header, "$var string 1 {} pe{} $end", code(pe), pe);
    }
    for (i, l) in used_links.iter().enumerate() {
        let link = platform.link(noc_platform::routing::LinkId::new(*l as u32));
        let _ = writeln!(
            header,
            "$var string 1 {} link_{}_{} $end",
            code(pe_count + i),
            link.src,
            link.dst
        );
    }
    let _ = writeln!(header, "$upscope $end");
    let _ = writeln!(header, "$enddefinitions $end");

    // Collect events.
    let mut events: Vec<Event> = Vec::new();
    for t in graph.task_ids() {
        let p = schedule.task(t);
        events.push(Event {
            time: p.start,
            signal: p.pe.index(),
            value: sanitize(graph.task(t).name()),
        });
        events.push(Event {
            time: p.finish,
            signal: p.pe.index(),
            value: "idle".into(),
        });
    }
    let link_signal =
        |l: usize| -> usize { pe_count + used_links.binary_search(&l).expect("link registered") };
    for e in graph.edge_ids() {
        let c = schedule.comm(e);
        if c.start == c.finish {
            continue;
        }
        for l in &c.route {
            events.push(Event {
                time: c.start,
                signal: link_signal(l.index()),
                value: format!("c{}", e.index()),
            });
            events.push(Event {
                time: c.finish,
                signal: link_signal(l.index()),
                value: "idle".into(),
            });
        }
    }
    events.sort();

    // Initial values.
    let mut body = String::new();
    let _ = writeln!(body, "$dumpvars");
    for i in 0..pe_count + used_links.len() {
        let _ = writeln!(body, "sidle {}", code(i));
    }
    let _ = writeln!(body, "$end");

    let mut last_time: Option<Time> = None;
    for ev in events {
        // A finish and a start at the same instant on the same signal:
        // keep the later (start) value — sort puts "idle" after task
        // names alphabetically unreliably, so filter: skip an `idle`
        // event when a non-idle event for the same (time, signal) exists.
        if last_time != Some(ev.time) {
            let _ = writeln!(body, "#{}", ev.time.ticks());
            last_time = Some(ev.time);
        }
        let _ = writeln!(body, "s{} {}", ev.value, code(ev.signal));
    }

    header + &body
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};

    fn fixture() -> (Platform, TaskGraph, Schedule) {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("wave demo", 4);
        let a = b.add_task(Task::uniform(
            "alpha",
            4,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        let c = b.add_task(Task::uniform(
            "beta",
            4,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        let graph = b.build().unwrap();
        let route = platform.route(TileId::new(0), TileId::new(1)).to_vec();
        let schedule = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        (platform, graph, schedule)
    }

    #[test]
    fn header_declares_all_signals() {
        let (p, g, s) = fixture();
        let vcd = to_vcd(&s, &g, &p);
        for pe in 0..4 {
            assert!(vcd.contains(&format!("pe{pe} $end")), "missing pe{pe}");
        }
        assert!(vcd.contains("link_0_1 $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$scope module wave_demo $end"));
    }

    #[test]
    fn events_appear_in_time_order() {
        let (p, g, s) = fixture();
        let vcd = to_vcd(&s, &g, &p);
        let times: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().expect("numeric timestamp"))
            .collect();
        assert!(!times.is_empty());
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "timestamps must ascend: {times:?}"
        );
        assert_eq!(times, vec![0, 100, 110, 210]);
    }

    #[test]
    fn task_and_transaction_values_are_dumped() {
        let (p, g, s) = fixture();
        let vcd = to_vcd(&s, &g, &p);
        assert!(vcd.contains("salpha"));
        assert!(vcd.contains("sbeta"));
        assert!(vcd.contains("sc0")); // transaction of edge 0
        assert!(vcd.contains("sidle"));
    }

    #[test]
    fn code_generation_is_unique_for_many_signals() {
        // Indirectly: render a 4x4 platform schedule with many links.
        let p = Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("big", 16);
        let a = b.add_task(Task::uniform("a", 16, Time::new(10), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 16, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(3200)).unwrap();
        let g = b.build().unwrap();
        let route = p.route(TileId::new(0), TileId::new(15)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10)),
                TaskPlacement::new(PeId::new(15), Time::new(110), Time::new(120)),
            ],
            vec![CommPlacement::new(route, Time::new(10), Time::new(110))],
        );
        let vcd = to_vcd(&s, &g, &p);
        // 16 PEs + 6 links declared, all with distinct codes.
        let codes: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).expect("code field"))
            .collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
        assert_eq!(codes.len(), 16 + 6);
    }
}
