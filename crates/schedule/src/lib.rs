//! # noc-schedule
//!
//! Schedule-table and schedule-artifact substrate for energy-aware NoC
//! scheduling (Hu & Marculescu, DATE 2004).
//!
//! The paper's schedulers manipulate *schedule tables*: per-PE and
//! per-link lists of occupied time slots (Fig. 1 shows the tables of tile
//! `(2,3)` and of the link `(3,1) -> (3,2)`). This crate provides:
//!
//! * [`table`] — a single resource's busy-interval table with earliest-gap
//!   search,
//! * [`resources`] — the combined PE + link tables of a platform with an
//!   **undo log** (checkpoint/rollback), the workhorse of the trial
//!   `F(i,k)` computations in the EAS level scheduler and of the Fig. 3
//!   communication scheduler's *path* tables,
//! * [`schedule`] — the immutable schedule artifact (task and
//!   communication placements),
//! * [`validate`](mod@validate) — checks a schedule against Defs. 3–4 (task and
//!   transaction compatibility), dependency and deadline constraints,
//! * [`stats`] — energy accounting (Eq. 3), makespan, hops-per-packet and
//!   utilization statistics,
//! * [`gantt`] — a plain-text Gantt rendering for humans.
//!
//! # Example
//!
//! ```
//! use noc_schedule::table::ScheduleTable;
//! use noc_platform::units::Time;
//!
//! let mut t = ScheduleTable::new();
//! t.occupy(Time::new(10), Time::new(20));
//! // Earliest slot of length 15 at or after t=0 is after the busy block.
//! assert_eq!(t.find_earliest(Time::ZERO, Time::new(15)), Time::new(30));
//! assert_eq!(t.find_earliest(Time::ZERO, Time::new(10)), Time::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
mod error;
pub mod export;
pub mod gantt;
pub mod resources;
pub mod schedule;
pub mod stats;
pub mod table;
pub mod validate;
pub mod vcd;

pub use error::ScheduleError;
pub use resources::ResourceTables;
pub use schedule::{CommPlacement, Schedule, TaskPlacement};
pub use stats::{EnergyBreakdown, ScheduleStats};
pub use validate::{validate, ValidationReport};

/// Convenient glob import of the most commonly used scheduling types.
pub mod prelude {
    pub use crate::compare::ScheduleDiff;
    pub use crate::export::{comms_to_csv, link_occupancy, render_link_occupancy, tasks_to_csv};
    pub use crate::gantt::render_gantt;
    pub use crate::resources::{Mark, ResourceTables};
    pub use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
    pub use crate::stats::{EnergyBreakdown, ScheduleStats};
    pub use crate::table::ScheduleTable;
    pub use crate::validate::{validate, ValidationReport};
    pub use crate::vcd::to_vcd;
    pub use crate::ScheduleError;
}
