//! Energy accounting (Eq. 3) and schedule statistics.
//!
//! The paper's objective is
//!
//! ```text
//! energy = Σ_i e_i^{M(t_i)}  +  Σ_{c_ij} v(c_ij) * e(r_{M(t_i),M(t_j)})
//! ```
//!
//! i.e. computation energy on the assigned PEs plus communication energy
//! of every data transfer over its route. [`ScheduleStats`] additionally
//! reports the per-packet hop average the paper quotes in Sec. 6.2
//! ("decreasing the average hops per packet from 2.55 to 1.68") and PE
//! utilization.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_ctg::TaskGraph;
use noc_platform::tile::PeId;
use noc_platform::units::{Energy, Time};
use noc_platform::Platform;

use crate::schedule::Schedule;

/// Computation/communication energy split (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `Σ e_i^{M(t_i)}` — task execution energy on the assigned PEs.
    pub computation: Energy,
    /// `Σ v(c_ij) · e(r_ij)` — transfer energy over the assigned routes.
    pub communication: Energy,
}

impl EnergyBreakdown {
    /// Total application energy.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.computation + self.communication
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} total ({} comp + {} comm)",
            self.total(),
            self.computation,
            self.communication
        )
    }
}

/// Derived statistics of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Energy split per Eq. 3.
    pub energy: EnergyBreakdown,
    /// Latest task finish.
    pub makespan: Time,
    /// Mean number of routers traversed per *data* packet (local
    /// delivery counts as 1 router, matching Eq. 2's `n_hops`).
    pub avg_hops_per_packet: f64,
    /// Fraction of `makespan` each PE spends computing, tile order.
    pub pe_utilization: Vec<f64>,
}

impl ScheduleStats {
    /// Computes all statistics of `schedule` for `graph` on `platform`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's shape does not match the graph (validate
    /// first with [`crate::validate()`]).
    #[must_use]
    pub fn compute(schedule: &Schedule, graph: &TaskGraph, platform: &Platform) -> Self {
        assert_eq!(
            schedule.task_count(),
            graph.task_count(),
            "schedule/graph shape mismatch"
        );
        assert_eq!(
            schedule.comm_count(),
            graph.edge_count(),
            "schedule/graph shape mismatch"
        );

        let mut computation = Energy::ZERO;
        let mut busy = vec![Time::ZERO; platform.tile_count()];
        for t in graph.task_ids() {
            let p = schedule.task(t);
            computation += graph.task(t).exec_energy(p.pe);
            busy[p.pe.index()] += p.finish - p.start;
        }

        let mut communication = Energy::ZERO;
        let mut hop_sum = 0usize;
        let mut packets = 0usize;
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            if edge.volume.is_zero() {
                continue;
            }
            let src = schedule.task(edge.src).pe.tile();
            let dst = schedule.task(edge.dst).pe.tile();
            communication += platform.transfer_energy(src, dst, edge.volume);
            hop_sum += platform.hop_links(src, dst) + 1; // links + 1 routers
            packets += 1;
        }

        let makespan = schedule.makespan();
        let horizon = makespan.as_f64().max(1.0);
        let pe_utilization = busy.iter().map(|b| b.as_f64() / horizon).collect();

        ScheduleStats {
            energy: EnergyBreakdown {
                computation,
                communication,
            },
            makespan,
            avg_hops_per_packet: if packets == 0 {
                0.0
            } else {
                hop_sum as f64 / packets as f64
            },
            pe_utilization,
        }
    }

    /// Utilization of one PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn utilization(&self, pe: PeId) -> f64 {
        self.pe_utilization[pe.index()]
    }
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, makespan {}, {:.2} hops/packet",
            self.energy, self.makespan, self.avg_hops_per_packet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::Volume;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    fn graph() -> TaskGraph {
        let mut b = TaskGraph::builder("g", 4);
        let a = b.add_task(Task::new(
            "a",
            vec![Time::new(100); 4],
            vec![
                Energy::from_nj(10.0),
                Energy::from_nj(20.0),
                Energy::from_nj(30.0),
                Energy::from_nj(40.0),
            ],
        ));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(5.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn computation_energy_depends_on_assignment() {
        let p = platform();
        let g = graph();
        let local = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(3), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(3), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        let stats = ScheduleStats::compute(&local, &g, &p);
        assert!((stats.energy.computation.as_nj() - 45.0).abs() < 1e-9);
        // Local data packet still traverses one router (Eq. 2 with 0 links).
        assert!(stats.energy.communication.as_nj() > 0.0);
        assert_eq!(stats.avg_hops_per_packet, 1.0);
    }

    #[test]
    fn communication_energy_matches_eq3() {
        let p = platform();
        let g = graph();
        let route = p.route(TileId::new(0), TileId::new(3)).to_vec(); // 2 links
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(3), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        let stats = ScheduleStats::compute(&s, &g, &p);
        let expected = p.transfer_energy(TileId::new(0), TileId::new(3), Volume::from_bits(320));
        assert!((stats.energy.communication.as_nj() - expected.as_nj()).abs() < 1e-12);
        assert_eq!(stats.avg_hops_per_packet, 3.0); // 2 links + 1
        assert_eq!(stats.makespan, Time::new(210));
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let p = platform();
        let g = graph();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(0), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        let stats = ScheduleStats::compute(&s, &g, &p);
        assert!((stats.utilization(PeId::new(0)) - 1.0).abs() < 1e-12);
        assert_eq!(stats.utilization(PeId::new(1)), 0.0);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let b = EnergyBreakdown {
            computation: Energy::from_nj(3.0),
            communication: Energy::from_nj(4.0),
        };
        assert!((b.total().as_nj() - 7.0).abs() < 1e-12);
        assert!(b.to_string().contains("comp"));
    }
}
