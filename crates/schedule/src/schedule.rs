//! The schedule artifact: where and when every task runs and every
//! communication transaction flows.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_ctg::edge::EdgeId;
use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::routing::LinkId;
use noc_platform::tile::PeId;
use noc_platform::units::Time;

/// Where and when one task executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPlacement {
    /// The PE the task is mapped to (the paper's `M(t_i)`).
    pub pe: PeId,
    /// Execution start.
    pub start: Time,
    /// Execution finish (`start + r_i^{M(t_i)}`).
    pub finish: Time,
}

impl TaskPlacement {
    /// Creates a placement.
    #[must_use]
    pub const fn new(pe: PeId, start: Time, finish: Time) -> Self {
        TaskPlacement { pe, start, finish }
    }
}

/// When one communication transaction occupies its route.
///
/// Local transfers (producer and consumer on the same PE) and
/// zero-volume control edges have an empty route and `start == finish`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPlacement {
    /// The links reserved, upstream to downstream.
    pub route: Vec<LinkId>,
    /// Transfer start (at or after the producer's finish).
    pub start: Time,
    /// Transfer finish (`start + ceil(volume / bandwidth)`); the consumer
    /// may not start before this.
    pub finish: Time,
}

impl CommPlacement {
    /// Creates a transaction placement.
    #[must_use]
    pub const fn new(route: Vec<LinkId>, start: Time, finish: Time) -> Self {
        CommPlacement {
            route,
            start,
            finish,
        }
    }

    /// A placement for a transfer that never enters the network,
    /// completing instantaneously at `at`.
    #[must_use]
    pub const fn local(at: Time) -> Self {
        CommPlacement {
            route: Vec::new(),
            start: at,
            finish: at,
        }
    }

    /// `true` if the transfer does not use the network.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.route.is_empty()
    }

    /// Number of links traversed.
    #[must_use]
    pub fn hop_links(&self) -> usize {
        self.route.len()
    }
}

/// A complete static schedule for one task graph on one platform: the
/// output artifact of every scheduler in `noc-eas`.
///
/// Use [`crate::validate()`] to check it against the constraints of the
/// paper's problem formulation (Sec. 4) and [`crate::ScheduleStats`] for
/// energy/makespan accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    tasks: Vec<TaskPlacement>,
    comms: Vec<CommPlacement>,
}

impl Schedule {
    /// Assembles a schedule from per-task and per-edge placements
    /// (indexed by [`TaskId`] / [`EdgeId`] order).
    #[must_use]
    pub fn new(tasks: Vec<TaskPlacement>, comms: Vec<CommPlacement>) -> Self {
        Schedule { tasks, comms }
    }

    /// Number of placed tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of placed transactions.
    #[must_use]
    pub fn comm_count(&self) -> usize {
        self.comms.len()
    }

    /// The placement of a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task(&self, task: TaskId) -> &TaskPlacement {
        &self.tasks[task.index()]
    }

    /// The placement of a transaction.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[must_use]
    pub fn comm(&self, edge: EdgeId) -> &CommPlacement {
        &self.comms[edge.index()]
    }

    /// All task placements, id order.
    #[must_use]
    pub fn task_placements(&self) -> &[TaskPlacement] {
        &self.tasks
    }

    /// All transaction placements, id order.
    #[must_use]
    pub fn comm_placements(&self) -> &[CommPlacement] {
        &self.comms
    }

    /// Latest task finish.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.tasks
            .iter()
            .map(|p| p.finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Tasks mapped to `pe`, sorted by start time.
    #[must_use]
    pub fn tasks_on(&self, pe: PeId) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = (0..self.tasks.len() as u32)
            .map(TaskId::new)
            .filter(|t| self.tasks[t.index()].pe == pe)
            .collect();
        v.sort_by_key(|t| (self.tasks[t.index()].start, t.raw()));
        v
    }

    /// The deadline misses of this schedule against `graph`: tasks whose
    /// finish exceeds their (explicit) deadline, with their tardiness.
    #[must_use]
    pub fn deadline_misses(&self, graph: &TaskGraph) -> Vec<(TaskId, Time)> {
        let mut misses = Vec::new();
        for t in graph.task_ids() {
            if let Some(d) = graph.task(t).deadline() {
                let finish = self.tasks[t.index()].finish;
                if finish > d {
                    misses.push((t, finish - d));
                }
            }
        }
        misses
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule of {} tasks / {} transactions, makespan {}",
            self.task_count(),
            self.comm_count(),
            self.makespan()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::new(x)
    }

    fn two_task_schedule() -> Schedule {
        Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), t(0), t(100)),
                TaskPlacement::new(PeId::new(1), t(150), t(250)),
            ],
            vec![CommPlacement::new(vec![LinkId::new(0)], t(100), t(150))],
        )
    }

    #[test]
    fn makespan_is_latest_finish() {
        assert_eq!(two_task_schedule().makespan(), t(250));
        assert_eq!(Schedule::new(vec![], vec![]).makespan(), Time::ZERO);
    }

    #[test]
    fn tasks_on_filters_and_sorts() {
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), t(100), t(200)),
                TaskPlacement::new(PeId::new(0), t(0), t(100)),
                TaskPlacement::new(PeId::new(1), t(0), t(50)),
            ],
            vec![],
        );
        assert_eq!(
            s.tasks_on(PeId::new(0)),
            vec![TaskId::new(1), TaskId::new(0)]
        );
        assert_eq!(s.tasks_on(PeId::new(1)), vec![TaskId::new(2)]);
        assert!(s.tasks_on(PeId::new(2)).is_empty());
    }

    #[test]
    fn local_comm_is_instant() {
        let c = CommPlacement::local(t(42));
        assert!(c.is_local());
        assert_eq!(c.start, c.finish);
        assert_eq!(c.hop_links(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = two_task_schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
