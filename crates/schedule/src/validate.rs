//! Schedule validation against the paper's problem formulation (Sec. 4).
//!
//! A feasible schedule must satisfy, for a given CTG and platform:
//!
//! 1. **task compatibility** (Def. 4): tasks on the same PE do not
//!    overlap in time,
//! 2. **transaction compatibility** (Def. 3): transactions sharing a
//!    link do not overlap in time,
//! 3. **dependencies**: a consumer starts only after each producer has
//!    finished and (for remote data edges) the transaction has arrived,
//! 4. **fault masks**: no task sits on a failed PE and no transaction
//!    crosses a failed link of the platform's
//!    [`noc_platform::fault::FaultSet`],
//! 5. **deadlines**: constrained tasks finish by their deadline.
//!
//! Violations of 1–4 are hard errors ([`crate::ScheduleError`]); deadline
//! misses are reported in the [`ValidationReport`] because the paper's
//! EAS-base legitimately produces them (they are then repaired in
//! Step 3).

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::schedule::Schedule;
use crate::ScheduleError;

/// One deadline miss: the task, its finish and its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineMiss {
    /// The late task.
    pub task: TaskId,
    /// When it finishes.
    pub finish: Time,
    /// When it should have finished.
    pub deadline: Time,
}

impl DeadlineMiss {
    /// How late the task is.
    #[must_use]
    pub fn tardiness(&self) -> Time {
        self.finish - self.deadline
    }
}

/// Outcome of a successful structural validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All deadline misses, ascending task id.
    pub deadline_misses: Vec<DeadlineMiss>,
    /// Latest task finish.
    pub makespan: Time,
}

impl ValidationReport {
    /// `true` if every constrained task meets its deadline.
    #[must_use]
    pub fn meets_deadlines(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// Sum of all tardiness.
    #[must_use]
    pub fn total_tardiness(&self) -> Time {
        self.deadline_misses
            .iter()
            .map(DeadlineMiss::tardiness)
            .sum()
    }

    /// The lexicographic badness `(miss count, total tardiness)` used by
    /// the search-and-repair procedure to decide whether a move
    /// "reduces the deadline misses".
    #[must_use]
    pub fn badness(&self) -> (usize, Time) {
        (self.deadline_misses.len(), self.total_tardiness())
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "makespan {}, {} deadline miss(es), tardiness {}",
            self.makespan,
            self.deadline_misses.len(),
            self.total_tardiness()
        )
    }
}

/// Validates `schedule` for `graph` on `platform`.
///
/// # Errors
///
/// Returns the first detected structural violation as a
/// [`ScheduleError`] (see the [module documentation](self) for the rule
/// list). Deadline misses do **not** error; inspect the report.
pub fn validate(
    schedule: &Schedule,
    graph: &TaskGraph,
    platform: &Platform,
) -> Result<ValidationReport, ScheduleError> {
    if schedule.task_count() != graph.task_count() || schedule.comm_count() != graph.edge_count() {
        return Err(ScheduleError::ShapeMismatch {
            schedule_tasks: schedule.task_count(),
            graph_tasks: graph.task_count(),
            schedule_edges: schedule.comm_count(),
            graph_edges: graph.edge_count(),
        });
    }

    // 1. Per-task timing consistency.
    for t in graph.task_ids() {
        let p = schedule.task(t);
        if p.pe.index() >= platform.tile_count() {
            return Err(ScheduleError::UnplacedTask(t));
        }
        if !platform.pe_alive(p.pe) {
            return Err(ScheduleError::TaskOnFailedPe { task: t, pe: p.pe });
        }
        let exec = graph.task(t).exec_time(p.pe);
        if p.start + exec != p.finish {
            return Err(ScheduleError::InconsistentTaskTiming(t));
        }
    }

    // 2. Def. 4: tasks on one PE must not overlap.
    for pe in platform.pes() {
        let tasks = schedule.tasks_on(pe);
        for w in tasks.windows(2) {
            let a = schedule.task(w[0]);
            let b = schedule.task(w[1]);
            if b.start < a.finish {
                return Err(ScheduleError::TaskOverlap {
                    pe,
                    first: w[0],
                    second: w[1],
                });
            }
        }
    }

    // 3. Transactions: routes, timing, producer/consumer ordering.
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        let producer = schedule.task(edge.src);
        let consumer = schedule.task(edge.dst);
        let comm = schedule.comm(e);
        let local = producer.pe == consumer.pe || edge.volume.is_zero();
        if local {
            if !comm.is_local() {
                return Err(ScheduleError::RouteMismatch(e));
            }
            if consumer.start < producer.finish {
                return Err(ScheduleError::DependencyViolation { edge: e });
            }
            continue;
        }
        if let Some(&dead) = comm.route.iter().find(|&&l| !platform.link_alive(l)) {
            return Err(ScheduleError::TransactionOverFailedLink {
                edge: e,
                link: dead,
            });
        }
        let expected = platform.route(producer.pe.tile(), consumer.pe.tile());
        if comm.route != expected {
            return Err(ScheduleError::RouteMismatch(e));
        }
        let duration =
            platform.transfer_duration(producer.pe.tile(), consumer.pe.tile(), edge.volume);
        if comm.start + duration != comm.finish {
            return Err(ScheduleError::InconsistentTransactionTiming(e));
        }
        if comm.start < producer.finish {
            return Err(ScheduleError::TransactionBeforeProducer(e));
        }
        if consumer.start < comm.finish {
            return Err(ScheduleError::DependencyViolation { edge: e });
        }
    }

    // 4. Def. 3: transactions sharing a link must not overlap.
    let mut per_link: Vec<Vec<(Time, Time, noc_ctg::edge::EdgeId)>> =
        vec![Vec::new(); platform.link_count()];
    for e in graph.edge_ids() {
        let comm = schedule.comm(e);
        if comm.start == comm.finish {
            continue;
        }
        for l in &comm.route {
            per_link[l.index()].push((comm.start, comm.finish, e));
        }
    }
    for (li, entries) in per_link.iter_mut().enumerate() {
        entries.sort();
        for w in entries.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(ScheduleError::TransactionOverlap {
                    link: noc_platform::routing::LinkId::new(li as u32),
                    first: w[0].2,
                    second: w[1].2,
                });
            }
        }
    }

    // 5. Deadlines (reported, not errored).
    let mut deadline_misses = Vec::new();
    for t in graph.task_ids() {
        if let Some(d) = graph.task(t).deadline() {
            let finish = schedule.task(t).finish;
            if finish > d {
                deadline_misses.push(DeadlineMiss {
                    task: t,
                    finish,
                    deadline: d,
                });
            }
        }
    }

    Ok(ValidationReport {
        deadline_misses,
        makespan: schedule.makespan(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap()
    }

    /// a -> b with 320 bits (10 ticks at bw 32).
    fn graph() -> TaskGraph {
        let mut b = TaskGraph::builder("g", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(
            Task::uniform("b", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(300)),
        );
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.build().unwrap()
    }

    fn remote_ok_schedule(p: &Platform) -> Schedule {
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        )
    }

    #[test]
    fn valid_remote_schedule_passes() {
        let p = platform();
        let g = graph();
        let report = validate(&remote_ok_schedule(&p), &g, &p).expect("valid");
        assert!(report.meets_deadlines());
        assert_eq!(report.makespan, Time::new(210));
    }

    #[test]
    fn valid_local_schedule_passes() {
        let p = platform();
        let g = graph();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(2), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(2), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        let report = validate(&s, &g, &p).expect("valid");
        assert!(report.meets_deadlines());
    }

    #[test]
    fn deadline_miss_is_reported_not_errored() {
        let p = platform();
        let g = graph();
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::new(200), Time::new(300)),
                TaskPlacement::new(PeId::new(1), Time::new(310), Time::new(410)),
            ],
            vec![CommPlacement::new(route, Time::new(300), Time::new(310))],
        );
        let report = validate(&s, &g, &p).expect("structurally valid");
        assert_eq!(report.deadline_misses.len(), 1);
        assert_eq!(report.deadline_misses[0].tardiness(), Time::new(110));
        assert_eq!(report.badness(), (1, Time::new(110)));
    }

    #[test]
    fn task_overlap_is_detected() {
        let p = platform();
        let g = graph();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(0), Time::new(50), Time::new(150)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::TaskOverlap { .. })
        ));
    }

    #[test]
    fn wrong_route_is_detected() {
        let p = platform();
        let g = graph();
        let wrong = p.route(TileId::new(1), TileId::new(0)).to_vec(); // reversed
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(wrong, Time::new(100), Time::new(110))],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::RouteMismatch(_))
        ));
    }

    #[test]
    fn consumer_before_arrival_is_detected() {
        let p = platform();
        let g = graph();
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(105), Time::new(205)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::DependencyViolation { .. })
        ));
    }

    #[test]
    fn transaction_before_producer_is_detected() {
        let p = platform();
        let g = graph();
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(90), Time::new(100))],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::TransactionBeforeProducer(_))
        ));
    }

    #[test]
    fn link_overlap_is_detected() {
        let p = platform();
        // Two parallel producer/consumer pairs sharing link 0->1.
        let mut b = TaskGraph::builder("g2", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(10), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(10), Energy::from_nj(1.0)));
        let x = b.add_task(Task::uniform("x", 4, Time::new(10), Energy::from_nj(1.0)));
        let y = b.add_task(Task::uniform("y", 4, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.add_edge(x, y, Volume::from_bits(320)).unwrap();
        let g = b.build().unwrap();
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10)),
                TaskPlacement::new(PeId::new(1), Time::new(25), Time::new(35)),
                TaskPlacement::new(PeId::new(0), Time::new(10), Time::new(20)),
                TaskPlacement::new(PeId::new(1), Time::new(35), Time::new(45)),
            ],
            vec![
                CommPlacement::new(route.clone(), Time::new(15), Time::new(25)),
                CommPlacement::new(route, Time::new(20), Time::new(30)), // overlaps in [20,25)
            ],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::TransactionOverlap { .. })
        ));
    }

    fn faulted_platform(faults: &str) -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .faults(FaultSet::parse(faults).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn task_on_failed_pe_is_detected() {
        let p = faulted_platform("tile:1");
        let g = graph();
        // Schedule planned for the pristine platform places task b on the
        // now-dead PE 1.
        let s = remote_ok_schedule(&platform());
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::TaskOnFailedPe { pe, .. }) if pe == PeId::new(1)
        ));
    }

    #[test]
    fn transaction_over_failed_link_is_detected() {
        // Kill the 0<->1 channel: tiles stay alive and the mesh stays
        // connected (detour through tiles 2 and 3), but the pristine
        // schedule's transaction still uses the direct dead link.
        let p = faulted_platform("link:0-1");
        let g = graph();
        let s = remote_ok_schedule(&platform());
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::TransactionOverFailedLink { .. })
        ));
    }

    #[test]
    fn multiple_misses_accumulate_tardiness() {
        let p = platform();
        let mut b = TaskGraph::builder("g3", 4);
        let a = b.add_task(
            Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(50)),
        );
        let c = b.add_task(
            Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(180)),
        );
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        let g = b.build().unwrap();
        let s = remote_ok_schedule(&p);
        let report = validate(&s, &g, &p).expect("structurally valid");
        // a finishes at 100 against 50 (+50); c at 210 against 180 (+30).
        assert_eq!(report.deadline_misses.len(), 2);
        assert_eq!(report.total_tardiness(), Time::new(80));
        assert_eq!(report.badness(), (2, Time::new(80)));
        assert!(!report.meets_deadlines());
    }

    #[test]
    fn back_to_back_link_reservations_are_legal() {
        // Two transactions on the same link where one starts exactly when
        // the other finishes: half-open intervals must not collide.
        let p = platform();
        let mut b = TaskGraph::builder("g4", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(10), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(10), Energy::from_nj(1.0)));
        let x = b.add_task(Task::uniform("x", 4, Time::new(10), Energy::from_nj(1.0)));
        let y = b.add_task(Task::uniform("y", 4, Time::new(10), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        b.add_edge(x, y, Volume::from_bits(320)).unwrap();
        let g = b.build().unwrap();
        let route = p.route(TileId::new(0), TileId::new(1)).to_vec();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10)),
                TaskPlacement::new(PeId::new(1), Time::new(20), Time::new(30)),
                TaskPlacement::new(PeId::new(0), Time::new(10), Time::new(20)),
                TaskPlacement::new(PeId::new(1), Time::new(30), Time::new(40)),
            ],
            vec![
                CommPlacement::new(route.clone(), Time::new(10), Time::new(20)),
                CommPlacement::new(route, Time::new(20), Time::new(30)),
            ],
        );
        assert!(validate(&s, &g, &p).is_ok());
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let p = platform();
        let g = graph();
        let s = Schedule::new(vec![], vec![]);
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn inconsistent_task_timing_is_detected() {
        let p = platform();
        let g = graph();
        let s = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(99)), // should be 100
                TaskPlacement::new(PeId::new(0), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        assert!(matches!(
            validate(&s, &g, &p),
            Err(ScheduleError::InconsistentTaskTiming(_))
        ));
    }
}
