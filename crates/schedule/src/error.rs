use std::error::Error;
use std::fmt;

use noc_ctg::edge::EdgeId;
use noc_ctg::task::TaskId;
use noc_platform::routing::LinkId;
use noc_platform::tile::PeId;

/// Constraint violations detected by [`crate::validate()`].
///
/// Deadline misses are deliberately *not* an error variant: the paper's
/// EAS-base can produce schedules with misses which are then repaired, so
/// misses are reported in the [`crate::ValidationReport`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The schedule was built for a different task/edge count than the
    /// graph it is validated against.
    ShapeMismatch {
        /// Tasks in the schedule.
        schedule_tasks: usize,
        /// Tasks in the graph.
        graph_tasks: usize,
        /// Edges in the schedule.
        schedule_edges: usize,
        /// Edges in the graph.
        graph_edges: usize,
    },
    /// A task has no placement.
    UnplacedTask(TaskId),
    /// A task's recorded finish is not `start + exec_time(pe)`.
    InconsistentTaskTiming(TaskId),
    /// Two tasks overlap in time on the same PE (violates Def. 4).
    TaskOverlap {
        /// The shared PE.
        pe: PeId,
        /// First task.
        first: TaskId,
        /// Second task.
        second: TaskId,
    },
    /// A data edge between remotely-placed tasks has no communication
    /// placement.
    UnplacedTransaction(EdgeId),
    /// A transaction's route differs from the platform's deterministic
    /// route between the placed PEs.
    RouteMismatch(EdgeId),
    /// A transaction's recorded finish is not `start + duration`.
    InconsistentTransactionTiming(EdgeId),
    /// A transaction starts before its producer task finishes.
    TransactionBeforeProducer(EdgeId),
    /// Two transactions overlap in time on the same link (violates
    /// Def. 3).
    TransactionOverlap {
        /// The shared link.
        link: LinkId,
        /// First transaction.
        first: EdgeId,
        /// Second transaction.
        second: EdgeId,
    },
    /// A task starts before one of its dependencies is satisfied
    /// (producer finish for control/local edges, transaction arrival for
    /// remote data edges).
    DependencyViolation {
        /// The violated edge.
        edge: EdgeId,
    },
    /// A task is placed on a PE masked out by the platform's
    /// [`noc_platform::fault::FaultSet`].
    TaskOnFailedPe {
        /// The misplaced task.
        task: TaskId,
        /// The dead PE it was placed on.
        pe: PeId,
    },
    /// A transaction's route traverses a link masked out by the
    /// platform's [`noc_platform::fault::FaultSet`].
    TransactionOverFailedLink {
        /// The offending transaction.
        edge: EdgeId,
        /// The dead link on its route.
        link: LinkId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ShapeMismatch {
                schedule_tasks,
                graph_tasks,
                schedule_edges,
                graph_edges,
            } => write!(
                f,
                "schedule shape {schedule_tasks}t/{schedule_edges}e does not match graph {graph_tasks}t/{graph_edges}e"
            ),
            ScheduleError::UnplacedTask(t) => write!(f, "task {t} has no placement"),
            ScheduleError::InconsistentTaskTiming(t) => {
                write!(f, "task {t} finish time does not equal start + execution time")
            }
            ScheduleError::TaskOverlap { pe, first, second } => {
                write!(f, "tasks {first} and {second} overlap on {pe}")
            }
            ScheduleError::UnplacedTransaction(e) => {
                write!(f, "remote data edge {e} has no communication placement")
            }
            ScheduleError::RouteMismatch(e) => {
                write!(f, "transaction {e} does not follow the platform route")
            }
            ScheduleError::InconsistentTransactionTiming(e) => {
                write!(f, "transaction {e} finish time does not equal start + duration")
            }
            ScheduleError::TransactionBeforeProducer(e) => {
                write!(f, "transaction {e} starts before its producer finishes")
            }
            ScheduleError::TransactionOverlap { link, first, second } => {
                write!(f, "transactions {first} and {second} overlap on link {link}")
            }
            ScheduleError::DependencyViolation { edge } => {
                write!(f, "dependency {edge} violated: consumer starts too early")
            }
            ScheduleError::TaskOnFailedPe { task, pe } => {
                write!(f, "task {task} is placed on failed {pe}")
            }
            ScheduleError::TransactionOverFailedLink { edge, link } => {
                write!(f, "transaction {edge} crosses failed link {link}")
            }
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ScheduleError::TaskOverlap {
            pe: PeId::new(1),
            first: TaskId::new(2),
            second: TaskId::new(3),
        };
        assert_eq!(e.to_string(), "tasks t2 and t3 overlap on PE1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ScheduleError>();
    }
}
