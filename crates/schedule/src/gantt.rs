//! Plain-text Gantt rendering of a schedule, for humans and examples.

use noc_ctg::TaskGraph;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::schedule::Schedule;

/// Renders a per-PE Gantt chart of `schedule` as fixed-width text.
///
/// Each PE row shows its tasks as `[name---]` blocks on a time axis
/// scaled to `width` columns. Intended for quickstart examples and
/// debugging, not for machine parsing.
///
/// ```
/// use noc_schedule::prelude::*;
/// use noc_schedule::gantt::render_gantt;
/// # use noc_ctg::prelude::*;
/// # use noc_platform::prelude::*;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let platform = Platform::builder().topology(TopologySpec::mesh(2, 1)).build()?;
/// # let mut b = TaskGraph::builder("g", 2);
/// # let a = b.add_task(Task::uniform("a", 2, Time::new(10), Energy::from_nj(1.0)));
/// # let graph = b.build()?;
/// # let schedule = Schedule::new(
/// #     vec![TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10))], vec![]);
/// let text = render_gantt(&schedule, &graph, &platform, 60);
/// assert!(text.contains("PE0"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_gantt(
    schedule: &Schedule,
    graph: &TaskGraph,
    platform: &Platform,
    width: usize,
) -> String {
    let width = width.max(20);
    let makespan = schedule.makespan().as_f64().max(1.0);
    let col =
        |t: Time| -> usize { ((t.as_f64() / makespan) * (width as f64 - 1.0)).round() as usize };

    let mut out = String::new();
    out.push_str(&format!(
        "{} on {} ({} routing), makespan {}\n",
        graph.name(),
        platform.topology(),
        platform.routing_name(),
        schedule.makespan()
    ));
    for pe in platform.pes() {
        let class = platform.pe_class(pe);
        let mut row = vec![b' '; width];
        for t in schedule.tasks_on(pe) {
            let p = schedule.task(t);
            let (s, e) = (col(p.start), col(p.finish).max(col(p.start) + 1));
            let name = graph.task(t).name();
            let block_len = (e - s).min(width - s);
            let mut block = vec![b'-'; block_len];
            if block_len >= 2 {
                block[0] = b'[';
                block[block_len - 1] = b']';
                for (i, ch) in name.bytes().take(block_len.saturating_sub(2)).enumerate() {
                    block[1 + i] = ch;
                }
            } else if block_len == 1 {
                block[0] = b'|';
            }
            row[s..s + block_len].copy_from_slice(&block);
        }
        out.push_str(&format!(
            "PE{:<3} {:<10} |{}|\n",
            pe.index(),
            class.name,
            String::from_utf8_lossy(&row)
        ));
    }
    // Axis.
    out.push_str(&format!(
        "{:16}0{:>width$}\n",
        "",
        schedule.makespan(),
        width = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};

    #[test]
    fn renders_all_pes_and_task_names() {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(2, 1))
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("demo", 2);
        let a = b.add_task(Task::uniform(
            "alpha",
            2,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        let c = b.add_task(Task::uniform(
            "beta",
            2,
            Time::new(100),
            Energy::from_nj(1.0),
        ));
        b.add_edge(a, c, Volume::from_bits(32)).unwrap();
        let graph = b.build().unwrap();
        let route = platform.route(TileId::new(0), TileId::new(1)).to_vec();
        let schedule = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(101), Time::new(201)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(101))],
        );
        let text = render_gantt(&schedule, &graph, &platform, 80);
        assert!(text.contains("PE0"));
        assert!(text.contains("PE1"));
        assert!(text.contains("alph") || text.contains("alpha"));
        assert!(text.contains("makespan 201"));
    }

    #[test]
    fn narrow_width_is_clamped() {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(1, 1))
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("demo", 1);
        b.add_task(Task::uniform("x", 1, Time::new(10), Energy::from_nj(1.0)));
        let graph = b.build().unwrap();
        let schedule = Schedule::new(
            vec![TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(10))],
            vec![],
        );
        let text = render_gantt(&schedule, &graph, &platform, 1);
        assert!(text.lines().count() >= 2);
    }
}
