//! Schedule diffing: what changed between two schedules of the same
//! graph — the tool for inspecting what search-and-repair or an
//! annealer actually did.

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_ctg::task::TaskId;
use noc_ctg::TaskGraph;
use noc_platform::Platform;

use crate::schedule::Schedule;
use crate::stats::ScheduleStats;

/// One migrated task: where it ran before and after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The task that moved.
    pub task: TaskId,
    /// PE in the first schedule.
    pub from: noc_platform::tile::PeId,
    /// PE in the second schedule.
    pub to: noc_platform::tile::PeId,
}

/// Structural and energetic difference between two schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDiff {
    /// Tasks assigned to different PEs.
    pub migrations: Vec<Migration>,
    /// Tasks whose start time changed (including migrated ones).
    pub retimed_tasks: usize,
    /// Energy difference `second - first`, nJ (negative = second is
    /// cheaper).
    pub energy_delta_nj: f64,
    /// Makespan difference `second - first`, ticks (negative = second
    /// is shorter).
    pub makespan_delta: i64,
    /// Deadline-miss difference `second - first`.
    pub miss_delta: i64,
}

impl ScheduleDiff {
    /// Diffs `second` against `first` for the same graph/platform.
    ///
    /// # Panics
    ///
    /// Panics if either schedule's shape does not match `graph`.
    #[must_use]
    pub fn between(
        first: &Schedule,
        second: &Schedule,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Self {
        assert_eq!(
            first.task_count(),
            graph.task_count(),
            "first schedule shape"
        );
        assert_eq!(
            second.task_count(),
            graph.task_count(),
            "second schedule shape"
        );
        let mut migrations = Vec::new();
        let mut retimed = 0usize;
        for t in graph.task_ids() {
            let (a, b) = (first.task(t), second.task(t));
            if a.pe != b.pe {
                migrations.push(Migration {
                    task: t,
                    from: a.pe,
                    to: b.pe,
                });
            }
            if a.start != b.start || a.pe != b.pe {
                retimed += 1;
            }
        }
        let ea = ScheduleStats::compute(first, graph, platform)
            .energy
            .total();
        let eb = ScheduleStats::compute(second, graph, platform)
            .energy
            .total();
        ScheduleDiff {
            migrations,
            retimed_tasks: retimed,
            energy_delta_nj: eb.as_nj() - ea.as_nj(),
            makespan_delta: second.makespan().ticks() as i64 - first.makespan().ticks() as i64,
            miss_delta: second.deadline_misses(graph).len() as i64
                - first.deadline_misses(graph).len() as i64,
        }
    }

    /// `true` if the two schedules are decision-identical.
    #[must_use]
    pub fn is_unchanged(&self) -> bool {
        self.migrations.is_empty() && self.retimed_tasks == 0
    }
}

impl fmt::Display for ScheduleDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} migrations, {} retimed tasks, energy {:+.1} nJ, makespan {:+}, misses {:+}",
            self.migrations.len(),
            self.retimed_tasks,
            self.energy_delta_nj,
            self.makespan_delta,
            self.miss_delta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Time, Volume};

    fn fixture() -> (Platform, TaskGraph, Schedule) {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("x", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0)));
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        let graph = b.build().unwrap();
        let route = platform.route(TileId::new(0), TileId::new(1)).to_vec();
        let schedule = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        (platform, graph, schedule)
    }

    #[test]
    fn identical_schedules_diff_empty() {
        let (p, g, s) = fixture();
        let d = ScheduleDiff::between(&s, &s, &g, &p);
        assert!(d.is_unchanged());
        assert_eq!(d.energy_delta_nj, 0.0);
        assert_eq!(d.makespan_delta, 0);
    }

    #[test]
    fn migration_and_retiming_are_detected() {
        let (p, g, s) = fixture();
        // Move the consumer local to the producer: shorter and cheaper.
        let local = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(0), Time::new(100), Time::new(200)),
            ],
            vec![CommPlacement::local(Time::new(100))],
        );
        let d = ScheduleDiff::between(&s, &local, &g, &p);
        assert_eq!(d.migrations.len(), 1);
        assert_eq!(d.migrations[0].task, TaskId::new(1));
        assert_eq!(d.retimed_tasks, 1);
        assert!(d.energy_delta_nj < 0.0, "local placement must be cheaper");
        assert_eq!(d.makespan_delta, -10);
        assert!(!d.is_unchanged());
        assert!(d.to_string().contains("1 migrations"));
    }
}
