//! Machine-readable schedule exports: CSV rows and a link-occupancy
//! view, complementing the human-oriented [`crate::gantt`].

use std::fmt::Write as _;

use noc_ctg::TaskGraph;
use noc_platform::routing::LinkId;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::schedule::Schedule;

/// Renders the task placements as CSV:
/// `task,name,pe,start,finish,deadline` (deadline empty when
/// unconstrained).
#[must_use]
pub fn tasks_to_csv(schedule: &Schedule, graph: &TaskGraph) -> String {
    let mut out = String::from("task,name,pe,start,finish,deadline\n");
    for t in graph.task_ids() {
        let p = schedule.task(t);
        let deadline = graph
            .task(t)
            .deadline()
            .map(|d| d.ticks().to_string())
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            t.index(),
            graph.task(t).name(),
            p.pe.index(),
            p.start.ticks(),
            p.finish.ticks(),
            deadline
        );
    }
    out
}

/// Renders the communication placements as CSV:
/// `edge,src_task,dst_task,volume_bits,start,finish,links`.
#[must_use]
pub fn comms_to_csv(schedule: &Schedule, graph: &TaskGraph) -> String {
    let mut out = String::from("edge,src_task,dst_task,volume_bits,start,finish,links\n");
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        let c = schedule.comm(e);
        let links = c
            .route
            .iter()
            .map(|l| l.index().to_string())
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            e.index(),
            edge.src.index(),
            edge.dst.index(),
            edge.volume.bits(),
            c.start.ticks(),
            c.finish.ticks(),
            links
        );
    }
    out
}

/// Per-link occupancy windows of a schedule, sorted by start — the
/// "schedule table of the link" from the paper's Fig. 1, reconstructed
/// from the artifact.
#[must_use]
pub fn link_occupancy(
    schedule: &Schedule,
    graph: &TaskGraph,
    platform: &Platform,
) -> Vec<Vec<(Time, Time)>> {
    let mut per_link: Vec<Vec<(Time, Time)>> = vec![Vec::new(); platform.link_count()];
    for e in graph.edge_ids() {
        let c = schedule.comm(e);
        if c.start == c.finish {
            continue;
        }
        for l in &c.route {
            per_link[l.index()].push((c.start, c.finish));
        }
    }
    for v in &mut per_link {
        v.sort_unstable();
    }
    per_link
}

/// A compact text view of the busiest links: `link  src->dst  busy%  windows`.
#[must_use]
pub fn render_link_occupancy(
    schedule: &Schedule,
    graph: &TaskGraph,
    platform: &Platform,
    top: usize,
) -> String {
    let occupancy = link_occupancy(schedule, graph, platform);
    let makespan = schedule.makespan().as_f64().max(1.0);
    let mut rows: Vec<(f64, LinkId)> = occupancy
        .iter()
        .enumerate()
        .map(|(i, wins)| {
            let busy: u64 = wins.iter().map(|(s, f)| (*f - *s).ticks()).sum();
            (busy as f64 / makespan, LinkId::new(i as u32))
        })
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut out = String::from("link   channel    busy%  windows\n");
    for (busy, link) in rows.into_iter().take(top) {
        let l = platform.link(link);
        let _ = writeln!(
            out,
            "{:<6} {:<10} {:>5.1}  {}",
            link,
            format!("{}->{}", l.src, l.dst),
            busy * 100.0,
            occupancy[link.index()].len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use noc_ctg::task::Task;
    use noc_platform::prelude::*;
    use noc_platform::units::{Energy, Volume};

    fn fixture() -> (Platform, TaskGraph, Schedule) {
        let platform = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .link_bandwidth(32.0)
            .build()
            .unwrap();
        let mut b = TaskGraph::builder("x", 4);
        let a = b.add_task(Task::uniform("a", 4, Time::new(100), Energy::from_nj(1.0)));
        let c = b.add_task(
            Task::uniform("c", 4, Time::new(100), Energy::from_nj(1.0))
                .with_deadline(Time::new(500)),
        );
        b.add_edge(a, c, Volume::from_bits(320)).unwrap();
        let graph = b.build().unwrap();
        let route = platform.route(TileId::new(0), TileId::new(1)).to_vec();
        let schedule = Schedule::new(
            vec![
                TaskPlacement::new(PeId::new(0), Time::ZERO, Time::new(100)),
                TaskPlacement::new(PeId::new(1), Time::new(110), Time::new(210)),
            ],
            vec![CommPlacement::new(route, Time::new(100), Time::new(110))],
        );
        (platform, graph, schedule)
    }

    #[test]
    fn task_csv_has_header_and_rows() {
        let (_, graph, schedule) = fixture();
        let csv = tasks_to_csv(&schedule, &graph);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "task,name,pe,start,finish,deadline");
        assert_eq!(lines[1], "0,a,0,0,100,");
        assert_eq!(lines[2], "1,c,1,110,210,500");
    }

    #[test]
    fn comm_csv_lists_route_links() {
        let (_, graph, schedule) = fixture();
        let csv = comms_to_csv(&schedule, &graph);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("0,0,1,320,100,110,"));
    }

    #[test]
    fn occupancy_reconstructs_link_tables() {
        let (platform, graph, schedule) = fixture();
        let occ = link_occupancy(&schedule, &graph, &platform);
        let used: usize = occ.iter().map(Vec::len).sum();
        assert_eq!(used, 1);
        let windows: Vec<_> = occ.iter().flatten().collect();
        assert_eq!(*windows[0], (Time::new(100), Time::new(110)));
    }

    #[test]
    fn render_lists_busiest_first() {
        let (platform, graph, schedule) = fixture();
        let text = render_link_occupancy(&schedule, &graph, &platform, 3);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("busy%"));
        // The one used link leads the ranking with nonzero busy%.
        assert!(lines[1].contains("0->1"));
        assert!(!lines[1].contains(" 0.0"));
    }
}
