//! A single resource's schedule table: a sorted list of disjoint busy
//! intervals with earliest-gap search.
//!
//! Intervals are half-open `[start, end)`. Zero-length intervals are
//! no-ops (local or zero-volume transfers occupy nothing).

use serde::{Deserialize, Serialize};
use std::fmt;

use noc_platform::units::Time;

/// A half-open busy interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// Inclusive start.
    pub start: Time,
    /// Exclusive end.
    pub end: Time,
}

impl Slot {
    /// Creates a slot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    #[must_use]
    pub fn new(start: Time, end: Time) -> Self {
        debug_assert!(end >= start, "slot end before start");
        Slot { start, end }
    }

    /// `true` if the slot covers no time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `self` and `other` share any instant.
    #[must_use]
    pub fn overlaps(&self, other: &Slot) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Busy-interval table for one shared resource (a PE or a link).
///
/// Maintains the invariant that stored slots are non-empty, disjoint and
/// sorted by start; adjacent slots are *not* merged so that every
/// [`occupy`](ScheduleTable::occupy) can be undone by an exact
/// [`release`](ScheduleTable::release).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTable {
    slots: Vec<Slot>,
}

impl ScheduleTable {
    /// Creates an empty (fully idle) table.
    #[must_use]
    pub fn new() -> Self {
        ScheduleTable::default()
    }

    /// The earliest start `s >= ready` such that `[s, s + duration)` is
    /// completely idle. A zero `duration` fits anywhere, returning
    /// `ready`.
    #[must_use]
    pub fn find_earliest(&self, ready: Time, duration: Time) -> Time {
        if duration == Time::ZERO {
            return ready;
        }
        let mut candidate = ready;
        // Slots are sorted; scan gaps from the first slot that could
        // interfere.
        let start_idx = self.slots.partition_point(|s| s.end <= ready);
        for slot in &self.slots[start_idx..] {
            if slot.start >= candidate.saturating_add(duration) {
                break; // gap before this slot is large enough
            }
            if slot.end > candidate {
                candidate = slot.end;
            }
        }
        candidate
    }

    /// `true` if `[start, start + duration)` is completely idle.
    #[must_use]
    pub fn is_free(&self, start: Time, duration: Time) -> bool {
        if duration == Time::ZERO {
            return true;
        }
        let probe = Slot::new(start, start.saturating_add(duration));
        let idx = self.slots.partition_point(|s| s.end <= start);
        self.slots.get(idx).is_none_or(|s| !s.overlaps(&probe))
    }

    /// Marks `[start, start + duration)` busy. Zero durations are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if the interval overlaps an existing busy slot (schedulers
    /// must query [`find_earliest`](Self::find_earliest) /
    /// [`is_free`](Self::is_free) first; double-booking a resource is a
    /// scheduler bug, not a recoverable condition).
    pub fn occupy(&mut self, start: Time, duration: Time) {
        if duration == Time::ZERO {
            return;
        }
        let slot = Slot::new(start, start.saturating_add(duration));
        let idx = self.slots.partition_point(|s| s.end <= start);
        if let Some(next) = self.slots.get(idx) {
            assert!(
                !next.overlaps(&slot),
                "double booking: {slot} overlaps {next}"
            );
        }
        self.slots.insert(idx, slot);
    }

    /// Removes a previously occupied interval (exact match), undoing one
    /// [`occupy`](Self::occupy). Zero durations are ignored.
    ///
    /// # Panics
    ///
    /// Panics if no exactly matching slot exists.
    pub fn release(&mut self, start: Time, duration: Time) {
        if duration == Time::ZERO {
            return;
        }
        let slot = Slot::new(start, start.saturating_add(duration));
        let idx = self
            .slots
            .binary_search(&slot)
            .unwrap_or_else(|_| panic!("releasing unoccupied slot {slot}"));
        self.slots.remove(idx);
    }

    /// The busy slots, sorted by start.
    #[must_use]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// `true` if the resource is never busy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// End of the last busy slot, or zero when idle.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.slots.last().map_or(Time::ZERO, |s| s.end)
    }

    /// Total busy time.
    #[must_use]
    pub fn busy_time(&self) -> Time {
        self.slots.iter().map(|s| s.end - s.start).sum()
    }
}

impl fmt::Display for ScheduleTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.slots.is_empty() {
            return write!(f, "(idle)");
        }
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The earliest start `s >= ready` at which *all* the given tables are
/// simultaneously idle for `duration` — the Fig. 3 "path schedule table"
/// built by merging the occupied slots of a route's links.
///
/// Runs in `O(total slots)` per candidate bump; candidates only move
/// forward, so overall `O(k * total slots)` with `k` small in practice.
#[must_use]
pub fn find_earliest_across(tables: &[&ScheduleTable], ready: Time, duration: Time) -> Time {
    if duration == Time::ZERO || tables.is_empty() {
        return ready;
    }
    let mut candidate = ready;
    loop {
        let mut moved = false;
        for t in tables {
            let earliest = t.find_earliest(candidate, duration);
            if earliest > candidate {
                candidate = earliest;
                moved = true;
            }
        }
        if !moved {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::new(x)
    }

    #[test]
    fn empty_table_returns_ready_time() {
        let table = ScheduleTable::new();
        assert_eq!(table.find_earliest(t(5), t(10)), t(5));
        assert!(table.is_free(t(0), t(100)));
        assert_eq!(table.horizon(), Time::ZERO);
    }

    #[test]
    fn gap_search_skips_busy_slots() {
        let mut table = ScheduleTable::new();
        table.occupy(t(10), t(10)); // [10,20)
        table.occupy(t(30), t(10)); // [30,40)
        assert_eq!(table.find_earliest(t(0), t(10)), t(0)); // fits before
        assert_eq!(table.find_earliest(t(0), t(11)), t(40)); // too big for both gaps
        assert_eq!(table.find_earliest(t(12), t(5)), t(20)); // inside busy -> next gap
        assert_eq!(table.find_earliest(t(20), t(10)), t(20)); // exact gap fit
        assert_eq!(table.find_earliest(t(35), t(1)), t(40));
    }

    #[test]
    fn occupy_release_round_trip() {
        let mut table = ScheduleTable::new();
        table.occupy(t(10), t(10));
        table.occupy(t(0), t(5));
        assert_eq!(table.slots().len(), 2);
        table.release(t(10), t(10));
        table.release(t(0), t(5));
        assert!(table.is_empty());
    }

    #[test]
    #[should_panic(expected = "double booking")]
    fn overlapping_occupy_panics() {
        let mut table = ScheduleTable::new();
        table.occupy(t(10), t(10));
        table.occupy(t(15), t(1));
    }

    #[test]
    #[should_panic(expected = "releasing unoccupied")]
    fn bad_release_panics() {
        let mut table = ScheduleTable::new();
        table.occupy(t(10), t(10));
        table.release(t(11), t(2));
    }

    #[test]
    fn zero_duration_is_noop() {
        let mut table = ScheduleTable::new();
        table.occupy(t(5), Time::ZERO);
        assert!(table.is_empty());
        assert_eq!(table.find_earliest(t(7), Time::ZERO), t(7));
        table.release(t(5), Time::ZERO); // must not panic
    }

    #[test]
    fn adjacent_slots_are_allowed() {
        let mut table = ScheduleTable::new();
        table.occupy(t(0), t(10));
        table.occupy(t(10), t(10)); // touching is fine (half-open)
        assert_eq!(table.find_earliest(t(0), t(1)), t(20));
        assert_eq!(table.busy_time(), t(20));
    }

    #[test]
    fn is_free_matches_find_earliest() {
        let mut table = ScheduleTable::new();
        table.occupy(t(10), t(10));
        assert!(table.is_free(t(0), t(10)));
        assert!(!table.is_free(t(5), t(10)));
        assert!(table.is_free(t(20), t(1)));
    }

    #[test]
    fn across_tables_finds_common_gap() {
        let mut a = ScheduleTable::new();
        let mut b = ScheduleTable::new();
        a.occupy(t(0), t(10)); // a busy [0,10)
        b.occupy(t(15), t(10)); // b busy [15,25)
                                // Need 6 ticks in both: [10,15) too small, so 25.
        assert_eq!(find_earliest_across(&[&a, &b], t(0), t(6)), t(25));
        // 5 ticks fit exactly in [10,15).
        assert_eq!(find_earliest_across(&[&a, &b], t(0), t(5)), t(10));
    }

    #[test]
    fn across_empty_list_returns_ready() {
        assert_eq!(find_earliest_across(&[], t(9), t(5)), t(9));
    }

    #[test]
    fn display_formats() {
        let mut table = ScheduleTable::new();
        assert_eq!(table.to_string(), "(idle)");
        table.occupy(t(1), t(2));
        assert_eq!(table.to_string(), "[1, 3)");
    }
}
