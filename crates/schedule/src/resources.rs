//! Combined PE and link schedule tables with an undo log.
//!
//! The EAS level scheduler computes `F(i,k)` by *trial-scheduling* the
//! candidate task's receiving communication transactions onto link
//! tables and the task onto a PE table, then restoring every table
//! ("the schedule tables of both links and the PEs will be restored
//! every time a `F(i,k)` is calculated", Sec. 5 Step 2). Cloning all
//! tables per trial would be quadratic; [`ResourceTables`] instead keeps
//! an append-only reservation log and rolls back to a [`Mark`].

use noc_platform::routing::LinkId;
use noc_platform::tile::PeId;
use noc_platform::units::Time;
use noc_platform::Platform;

use crate::table::{find_earliest_across, ScheduleTable};

/// A checkpoint into the reservation log; see
/// [`ResourceTables::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark(usize);

#[derive(Debug, Clone, Copy)]
enum Reservation {
    Pe {
        pe: PeId,
        start: Time,
        duration: Time,
    },
    Link {
        link: LinkId,
        start: Time,
        duration: Time,
    },
}

/// Per-PE and per-link busy tables for one platform, with checkpoint /
/// rollback.
///
/// ```
/// use noc_platform::prelude::*;
/// use noc_schedule::resources::ResourceTables;
///
/// # fn main() -> Result<(), PlatformError> {
/// let platform = Platform::builder().topology(TopologySpec::mesh(2, 2)).build()?;
/// let mut tables = ResourceTables::new(&platform);
/// let mark = tables.checkpoint();
/// tables.reserve_pe(PeId::new(0), Time::ZERO, Time::new(100));
/// assert_eq!(tables.earliest_pe_slot(PeId::new(0), Time::ZERO, Time::new(10)), Time::new(100));
/// tables.rollback(mark);
/// assert_eq!(tables.earliest_pe_slot(PeId::new(0), Time::ZERO, Time::new(10)), Time::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResourceTables {
    pe: Vec<ScheduleTable>,
    link: Vec<ScheduleTable>,
    log: Vec<Reservation>,
}

impl ResourceTables {
    /// Creates all-idle tables sized for `platform`.
    #[must_use]
    pub fn new(platform: &Platform) -> Self {
        ResourceTables {
            pe: vec![ScheduleTable::new(); platform.tile_count()],
            link: vec![ScheduleTable::new(); platform.link_count()],
            log: Vec::new(),
        }
    }

    /// Current log position; pass to [`rollback`](Self::rollback) to undo
    /// everything reserved after this call.
    #[must_use]
    pub fn checkpoint(&self) -> Mark {
        Mark(self.log.len())
    }

    /// Releases every reservation made after `mark`, restoring the
    /// tables to their checkpointed state.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is ahead of the log (from a different/later
    /// state).
    pub fn rollback(&mut self, mark: Mark) {
        assert!(mark.0 <= self.log.len(), "mark from a later state");
        while self.log.len() > mark.0 {
            match self.log.pop().expect("len checked") {
                Reservation::Pe {
                    pe,
                    start,
                    duration,
                } => {
                    self.pe[pe.index()].release(start, duration);
                }
                Reservation::Link {
                    link,
                    start,
                    duration,
                } => {
                    self.link[link.index()].release(start, duration);
                }
            }
        }
    }

    /// Earliest start `>= ready` at which `pe` is idle for `duration`.
    #[must_use]
    pub fn earliest_pe_slot(&self, pe: PeId, ready: Time, duration: Time) -> Time {
        self.pe[pe.index()].find_earliest(ready, duration)
    }

    /// Earliest start `>= ready` at which *every link of `route`* is idle
    /// for `duration` — the merged "path schedule table" of Fig. 3.
    #[must_use]
    pub fn earliest_path_slot(&self, route: &[LinkId], ready: Time, duration: Time) -> Time {
        let tables: Vec<&ScheduleTable> = route.iter().map(|l| &self.link[l.index()]).collect();
        find_earliest_across(&tables, ready, duration)
    }

    /// Reserves `[start, start + duration)` on `pe` (logged).
    ///
    /// # Panics
    ///
    /// Panics if the interval is already busy (double booking is a
    /// scheduler bug).
    pub fn reserve_pe(&mut self, pe: PeId, start: Time, duration: Time) {
        self.pe[pe.index()].occupy(start, duration);
        if duration > Time::ZERO {
            self.log.push(Reservation::Pe {
                pe,
                start,
                duration,
            });
        }
    }

    /// Reserves `[start, start + duration)` on every link of `route`
    /// (logged) — committing one communication transaction.
    ///
    /// # Panics
    ///
    /// Panics if any link is already busy in the interval.
    pub fn reserve_path(&mut self, route: &[LinkId], start: Time, duration: Time) {
        if duration == Time::ZERO {
            return;
        }
        for &l in route {
            self.link[l.index()].occupy(start, duration);
            self.log.push(Reservation::Link {
                link: l,
                start,
                duration,
            });
        }
    }

    /// Read access to one PE's table.
    #[must_use]
    pub fn pe_table(&self, pe: PeId) -> &ScheduleTable {
        &self.pe[pe.index()]
    }

    /// Read access to one link's table.
    #[must_use]
    pub fn link_table(&self, link: LinkId) -> &ScheduleTable {
        &self.link[link.index()]
    }

    /// Drops the undo log (e.g. after committing a whole schedule), so
    /// later rollbacks cannot cross this point.
    pub fn seal(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_platform::prelude::*;

    fn platform() -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .build()
            .unwrap()
    }

    fn t(x: u64) -> Time {
        Time::new(x)
    }

    #[test]
    fn nested_checkpoints_roll_back_in_order() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        let outer = r.checkpoint();
        r.reserve_pe(PeId::new(0), t(0), t(50));
        let inner = r.checkpoint();
        r.reserve_pe(PeId::new(0), t(50), t(50));
        r.rollback(inner);
        assert_eq!(r.earliest_pe_slot(PeId::new(0), t(0), t(10)), t(50));
        r.rollback(outer);
        assert_eq!(r.earliest_pe_slot(PeId::new(0), t(0), t(10)), t(0));
    }

    #[test]
    fn path_reservation_blocks_all_links() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        // Route 0 -> 3 on 2x2 XY: 0 -> 1 -> 3 (two links).
        let route: Vec<LinkId> = p.route(TileId::new(0), TileId::new(3)).to_vec();
        assert_eq!(route.len(), 2);
        r.reserve_path(&route, t(10), t(20));
        // The whole path is busy [10,30): earliest 15-tick slot from 0 is 30... no:
        // gap [0,10) fits only 10 ticks.
        assert_eq!(r.earliest_path_slot(&route, t(0), t(10)), t(0));
        assert_eq!(r.earliest_path_slot(&route, t(0), t(11)), t(30));
        // A disjoint link is unaffected.
        let other: Vec<LinkId> = p.route(TileId::new(3), TileId::new(0)).to_vec();
        assert_eq!(r.earliest_path_slot(&other, t(0), t(100)), t(0));
    }

    #[test]
    fn rollback_releases_path_reservations() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        let route: Vec<LinkId> = p.route(TileId::new(0), TileId::new(3)).to_vec();
        let mark = r.checkpoint();
        r.reserve_path(&route, t(0), t(100));
        r.rollback(mark);
        assert_eq!(r.earliest_path_slot(&route, t(0), t(100)), t(0));
        for l in &route {
            assert!(r.link_table(*l).is_empty());
        }
    }

    #[test]
    fn partial_path_conflicts_delay_the_whole_path() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        let route: Vec<LinkId> = p.route(TileId::new(0), TileId::new(3)).to_vec();
        // Busy only the second link.
        r.reserve_path(&route[1..], t(0), t(40));
        assert_eq!(r.earliest_path_slot(&route, t(0), t(10)), t(40));
    }

    #[test]
    fn zero_duration_reservations_do_not_log() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        let mark = r.checkpoint();
        r.reserve_pe(PeId::new(1), t(5), Time::ZERO);
        let route: Vec<LinkId> = p.route(TileId::new(0), TileId::new(1)).to_vec();
        r.reserve_path(&route, t(5), Time::ZERO);
        assert_eq!(
            mark,
            r.checkpoint(),
            "zero reservations must not grow the log"
        );
    }

    #[test]
    fn seal_prevents_rollback_past_commit() {
        let p = platform();
        let mut r = ResourceTables::new(&p);
        r.reserve_pe(PeId::new(0), t(0), t(10));
        r.seal();
        let mark = r.checkpoint();
        r.reserve_pe(PeId::new(0), t(10), t(10));
        r.rollback(mark);
        // The sealed reservation survives.
        assert_eq!(r.earliest_pe_slot(PeId::new(0), t(0), t(1)), t(10));
    }
}
