//! End-to-end loopback tests of the scheduling service: real sockets,
//! real worker pools, the shipped client. Covers the happy path, error
//! classification, queue backpressure, cache byte-identity,
//! single-flight coalescing, the async job flow and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use noc_svc::client::Client;
use noc_svc::{Server, ServiceConfig};

fn config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        http_workers: 4,
        sched_workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        threads: 1,
        ..ServiceConfig::default()
    }
}

fn client(server: &Server) -> Client {
    Client::connect_retry(server.addr(), Duration::from_secs(5)).expect("connects")
}

/// A small deterministic task graph, serialized the way `noceas
/// generate --out` writes it.
fn graph_json(seed: u64, tasks: usize) -> String {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform");
    let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed);
    cfg.task_count = tasks;
    let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generates");
    serde_json::to_string(&graph).expect("serializes")
}

fn schedule_body(graph: &str, scheduler: &str) -> String {
    format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#)
}

#[test]
fn happy_path_health_metrics_and_schedule() {
    let server = Server::start(config()).expect("starts");
    let mut c = client(&server);

    let health = c.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let body = schedule_body(&graph_json(11, 10), "eas");
    let resp = c.post("/v1/schedule", &body).expect("schedules");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.header("x-cache"), Some("miss"));
    let parsed: noc_svc::api::ScheduleResponse =
        serde_json::from_str(&resp.body).expect("valid schedule body");
    assert_eq!(parsed.scheduler, "eas");
    assert!(parsed.energy_nj > 0.0);

    // Round-trip the produced schedule through /v1/validate.
    let schedule_json = serde_json::to_string(&parsed.schedule).expect("serializes");
    let validate_body = format!(
        r#"{{"graph":{},"platform":"mesh:2x2","schedule":{schedule_json}}}"#,
        graph_json(11, 10)
    );
    let validated = c.post("/v1/validate", &validate_body).expect("validates");
    assert_eq!(validated.status, 200, "body: {}", validated.body);
    let report: noc_svc::api::ValidateResponse =
        serde_json::from_str(&validated.body).expect("valid body");
    assert!(report.valid, "the service's own schedule must validate");

    let metrics = c.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("noc_svc_schedules_executed_total 1"));
    assert!(metrics
        .body
        .contains("noc_svc_requests_total{endpoint=\"/healthz\",status=\"200\"} 1"));

    server.shutdown();
}

#[test]
fn malformed_and_unroutable_requests_classify() {
    let server = Server::start(config()).expect("starts");
    let mut c = client(&server);

    let resp = c.post("/v1/schedule", "this is not json").expect("answers");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("error"));

    let resp = c
        .post("/v1/schedule", r#"{"graph":{},"platform":"ring:9x9"}"#)
        .expect("answers");
    assert_eq!(resp.status, 422);

    let resp = c.get("/no/such/path").expect("answers");
    assert_eq!(resp.status, 404);

    let resp = c.post("/healthz", "{}").expect("answers");
    assert_eq!(resp.status, 405);

    let resp = c.get("/v1/jobs/deadbeef").expect("answers");
    assert_eq!(resp.status, 404);

    server.shutdown();
}

#[test]
fn cache_hit_returns_byte_identical_bodies() {
    let server = Server::start(config()).expect("starts");
    let mut c = client(&server);
    let body = schedule_body(&graph_json(3, 12), "edf");

    let first = c.post("/v1/schedule", &body).expect("cold run");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));

    let second = c.post("/v1/schedule", &body).expect("cached run");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");
    assert_eq!(
        first.header("x-request-hash"),
        second.header("x-request-hash")
    );

    // Key order in the request body must not matter: same problem, same
    // cache entry, same bytes.
    let reordered = format!(
        r#"{{"scheduler":"edf","platform":"mesh:2x2","graph":{}}}"#,
        graph_json(3, 12)
    );
    let third = c.post("/v1/schedule", &reordered).expect("reordered run");
    assert_eq!(third.header("x-cache"), Some("hit"));
    assert_eq!(first.body, third.body);

    let metrics = c.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("noc_svc_cache_hits_total 2"));
    assert!(metrics.body.contains("noc_svc_schedules_executed_total 1"));

    server.shutdown();
}

#[test]
fn stats_opt_in_adds_a_block_without_touching_cached_bytes() {
    let server = Server::start(config()).expect("starts");
    let mut c = client(&server);
    let graph = graph_json(13, 10);

    // Cold run with stats: the block is present in the answer.
    let with_stats =
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas","stats":true}}"#);
    let first = c.post("/v1/schedule", &with_stats).expect("cold run");
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert!(
        first.body.contains(r#""stats":{"#) && first.body.contains("\"stage_micros\""),
        "stats block present when requested: {}",
        first.body
    );

    // The same problem without stats is a cache HIT (key-neutral field)
    // and its bytes carry no stats block.
    let plain = schedule_body(&graph, "eas");
    let second = c.post("/v1/schedule", &plain).expect("plain run");
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert!(
        !second.body.contains("stage_micros"),
        "plain requests see the canonical cached bytes"
    );

    // Asking again with stats also hits the cache and re-attaches the
    // producing run's stats; stripping the block recovers the exact
    // cached bytes.
    let third = c.post("/v1/schedule", &with_stats).expect("cached stats");
    assert_eq!(third.header("x-cache"), Some("hit"));
    assert_eq!(first.body, third.body, "stats answers are stable");
    let head = third
        .body
        .rfind(",\"stats\":{")
        .expect("stats block present");
    let stripped = format!("{}{}", &third.body[..head], "}");
    assert_eq!(stripped, second.body, "body minus stats == cached bytes");

    // One executed request populates the per-stage histograms.
    let metrics = c.get("/metrics").expect("metrics");
    assert!(
        metrics
            .body
            .contains("noc_svc_stage_seconds_count{stage=\"level\"} 1"),
        "stage histograms exposed after one scheduled request:\n{}",
        metrics.body
    );
    assert!(metrics.body.contains("noc_svc_jobs_inflight 0"));

    server.shutdown();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let server = Server::start(ServiceConfig {
        sched_workers: 0, // nobody drains: the queue fills deterministically
        queue_capacity: 1,
        ..config()
    })
    .expect("starts");
    let mut c = client(&server);
    let graph = graph_json(5, 8);

    let first =
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf","mode":"async"}}"#);
    let resp = c.post("/v1/schedule", &first).expect("admits");
    assert_eq!(resp.status, 202, "body: {}", resp.body);
    assert!(resp.body.contains("\"status\":\"queued\""));

    // An identical resubmission coalesces (does not consume capacity)...
    let resp = c.post("/v1/schedule", &first).expect("joins");
    assert_eq!(resp.status, 202);

    // ...while a different problem is rejected with backpressure.
    let second =
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"dls","mode":"async"}}"#);
    let resp = c.post("/v1/schedule", &second).expect("rejects");
    assert_eq!(resp.status, 429);
    assert_eq!(resp.header("retry-after"), Some("1"));

    let metrics = c.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("noc_svc_queue_rejected_total 1"));
    assert!(metrics.body.contains("noc_svc_queue_depth 1"));

    server.shutdown();
}

#[test]
fn concurrent_identical_requests_schedule_once() {
    let server = Server::start(config()).expect("starts");
    let addr = server.addr();
    let body = Arc::new(schedule_body(&graph_json(21, 16), "eas"));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(addr, Duration::from_secs(5)).expect("connects");
                let resp = c.post("/v1/schedule", &body).expect("schedules");
                (resp.status, resp.body)
            })
        })
        .collect();
    let results: Vec<(u16, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .collect();

    let reference = &results[0].1;
    for (status, resp_body) in &results {
        assert_eq!(*status, 200);
        assert_eq!(
            resp_body, reference,
            "every concurrent client gets byte-identical bodies"
        );
    }

    let mut c = client(&server);
    let metrics = c.get("/metrics").expect("metrics");
    assert!(
        metrics.body.contains("noc_svc_schedules_executed_total 1"),
        "identical concurrent requests must run the scheduler exactly once:\n{}",
        metrics.body
    );

    server.shutdown();
}

#[test]
fn async_flow_polls_to_the_same_bytes_as_sync() {
    let server = Server::start(config()).expect("starts");
    let mut c = client(&server);
    let graph = graph_json(8, 10);

    let sync_body = schedule_body(&graph, "dls");
    let sync = c.post("/v1/schedule", &sync_body).expect("sync run");
    assert_eq!(sync.status, 200);

    // Different scheduler → different cache entry → actually exercises
    // the async queue rather than the cache.
    let async_body =
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf","mode":"async"}}"#);
    let accepted = c.post("/v1/schedule", &async_body).expect("accepted");
    assert_eq!(accepted.status, 202, "body: {}", accepted.body);
    let id = accepted
        .header("x-request-hash")
        .expect("hash header")
        .to_owned();

    let mut done_body = None;
    for _ in 0..200 {
        let poll = c.get(&format!("/v1/jobs/{id}")).expect("polls");
        assert_eq!(poll.status, 200);
        if poll.body.contains("\"status\":\"done\"") {
            done_body = Some(poll.body);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let done_body = done_body.expect("job finishes within 2s");

    // The spliced result must be the byte-exact sync serialization.
    let sync_edf = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf"}}"#);
    let direct = c.post("/v1/schedule", &sync_edf).expect("cached now");
    assert_eq!(direct.header("x-cache"), Some("hit"));
    assert_eq!(
        done_body,
        format!(
            r#"{{"id":"{id}","status":"done","result":{}}}"#,
            direct.body
        )
    );

    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_jobs() {
    let server = Server::start(ServiceConfig {
        sched_workers: 1,
        ..config()
    })
    .expect("starts");
    let mut c = client(&server);
    let graph = graph_json(2, 10);
    let body =
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf","mode":"async"}}"#);
    let accepted = c.post("/v1/schedule", &body).expect("admits");
    assert_eq!(accepted.status, 202);

    let engine = Arc::clone(server.engine());
    server.shutdown();
    // After a graceful shutdown the admitted job has been executed, not
    // dropped.
    assert_eq!(
        engine
            .metrics
            .schedules_executed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(engine.queue_depth(), 0);
}
