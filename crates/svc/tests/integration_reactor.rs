//! End-to-end tests of the nonblocking reactor entry path against
//! real sockets: wire-level byte identity with the threaded path,
//! HTTP/1.1 keep-alive and pipelining, protocol-error handling, and a
//! herd of idle connections that must cost nothing and lose nothing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use noc_svc::{NetMode, Server, ServiceConfig};

fn config(net: NetMode) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        http_workers: 2,
        sched_workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        threads: 1,
        net,
        ..ServiceConfig::default()
    }
}

fn graph_json(seed: u64, tasks: usize) -> String {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform");
    let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed);
    cfg.task_count = tasks;
    let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generates");
    serde_json::to_string(&graph).expect("serializes")
}

fn schedule_body(graph: &str, scheduler: &str) -> String {
    format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#)
}

fn post_bytes(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: noc-svc\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads exactly one HTTP response (headers + `Content-Length` body)
/// off the stream, carrying any pipelined surplus across calls.
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Vec<u8> {
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("reads response");
        assert!(n > 0, "connection closed before a full response");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&carry[..header_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length present");
    let total = header_end + 4 + content_length;
    while carry.len() < total {
        let n = stream.read(&mut chunk).expect("reads body");
        assert!(n > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let response = carry[..total].to_vec();
    carry.drain(..total);
    response
}

/// One request/response round trip on a fresh raw socket.
fn raw_roundtrip(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(request).expect("writes");
    let mut carry = Vec::new();
    read_one_response(&mut stream, &mut carry)
}

#[test]
fn reactor_and_threaded_paths_answer_identical_wire_bytes() {
    let reactor = Server::start(config(NetMode::Reactor)).expect("reactor starts");
    let threaded = Server::start(config(NetMode::Thread)).expect("threaded starts");
    let graph = graph_json(71, 10);
    let requests = vec![
        post_bytes("/v1/schedule", &schedule_body(&graph, "edf")),
        post_bytes("/v1/schedule", &schedule_body(&graph, "edf")), // cache hit
        post_bytes("/v1/schedule", &schedule_body(&graph, "dls")),
        post_bytes("/v1/validate", "{\"not\":\"a schedule\"}"),
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n".to_vec(),
        b"GET /v1/jobs/feed HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n".to_vec(),
        b"DELETE /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n".to_vec(),
        b"GET /nowhere HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n".to_vec(),
    ];
    // The X-Noc-Trace header is minted per request, so it is the one
    // wire difference two servers may legitimately show; everything
    // else — status line, headers, body — must match byte for byte.
    let strip_trace = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("X-Noc-Trace: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for request in &requests {
        let via_reactor = raw_roundtrip(reactor.addr(), request);
        let via_threads = raw_roundtrip(threaded.addr(), request);
        assert_eq!(
            strip_trace(&via_reactor),
            strip_trace(&via_threads),
            "entry paths must be indistinguishable on the wire"
        );
    }
    reactor.shutdown();
    threaded.shutdown();
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let server = Server::start(config(NetMode::Reactor)).expect("starts");
    // Three schedule requests with distinct answers, written
    // back-to-back before reading anything: responses must come back
    // in request order even though the jobs may finish out of order.
    let bodies: Vec<String> = (0..3)
        .map(|i| schedule_body(&graph_json(100 + i, 10 + (i as usize % 3) * 2), "edf"))
        .collect();
    let mut pipelined = Vec::new();
    for body in &bodies {
        pipelined.extend_from_slice(&post_bytes("/v1/schedule", body));
    }
    let mut stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(&pipelined).expect("writes all three");
    let mut carry = Vec::new();
    let responses: Vec<Vec<u8>> = (0..3)
        .map(|_| read_one_response(&mut stream, &mut carry))
        .collect();
    drop(stream);
    // Each pipelined answer must equal the answer a dedicated
    // connection gets for the same body — correct pairing, in order.
    for (body, pipelined_response) in bodies.iter().zip(&responses) {
        let fresh = raw_roundtrip(server.addr(), &post_bytes("/v1/schedule", body));
        let strip = |bytes: &[u8]| {
            let text = String::from_utf8_lossy(bytes).into_owned();
            // The fresh response is a cache hit; the schedule bytes and
            // hash must match, the X-Cache label legitimately differs.
            let body_at = text.find("\r\n\r\n").expect("has body") + 4;
            let hash = text
                .lines()
                .find_map(|l| l.strip_prefix("X-Request-Hash: "))
                .expect("hash header")
                .to_owned();
            (hash, text[body_at..].to_owned())
        };
        assert_eq!(
            strip(pipelined_response),
            strip(&fresh),
            "pipelined answers must pair with their requests in order"
        );
    }
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_then_close_closes() {
    let server = Server::start(config(NetMode::Reactor)).expect("starts");
    let mut stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut carry = Vec::new();
    for _ in 0..5 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("writes");
        let response = read_one_response(&mut stream, &mut carry);
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200"), "got {text}");
        assert!(text.contains("Connection: keep-alive"));
    }
    // `Connection: close` answers once, then the server hangs up.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("writes");
    let response = read_one_response(&mut stream, &mut carry);
    assert!(String::from_utf8_lossy(&response).contains("Connection: close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("reads EOF");
    assert!(rest.is_empty(), "server must close after Connection: close");
    server.shutdown();
}

#[test]
fn protocol_errors_answer_and_close_like_the_threaded_path() {
    let reactor = Server::start(config(NetMode::Reactor)).expect("starts");
    let threaded = Server::start(config(NetMode::Thread)).expect("starts");
    let oversized = format!(
        "POST /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    let garbage = b"NOT A REQUEST AT ALL\r\n\r\n".to_vec();
    for request in [oversized.into_bytes(), garbage] {
        let via_reactor = raw_roundtrip(reactor.addr(), &request);
        let via_threads = raw_roundtrip(threaded.addr(), &request);
        assert_eq!(
            String::from_utf8_lossy(&via_reactor),
            String::from_utf8_lossy(&via_threads),
            "protocol errors must be byte-identical across entry paths"
        );
        let text = String::from_utf8_lossy(&via_reactor).into_owned();
        assert!(
            text.starts_with("HTTP/1.1 413") || text.starts_with("HTTP/1.1 400"),
            "got {text}"
        );
        assert!(text.contains("Connection: close"));
    }
    reactor.shutdown();
    threaded.shutdown();
}

#[test]
fn a_herd_of_idle_connections_survives_a_working_wave() {
    let server = Server::start(config(NetMode::Reactor)).expect("starts");
    // A few hundred idle sockets (the CI-sized stand-in for the 10k
    // loopback gate, which needs a raised fd limit) parked while real
    // requests flow.
    let idle: Vec<TcpStream> = (0..256)
        .map(|i| {
            TcpStream::connect(server.addr()).unwrap_or_else(|e| panic!("idle connection {i}: {e}"))
        })
        .collect();
    let graph = graph_json(9, 10);
    let reference = raw_roundtrip(
        server.addr(),
        &post_bytes("/v1/schedule", &schedule_body(&graph, "edf")),
    );
    assert!(String::from_utf8_lossy(&reference).starts_with("HTTP/1.1 200"));
    // The reactor reports the herd on its connections gauge.
    let metrics = String::from_utf8_lossy(&raw_roundtrip(
        server.addr(),
        b"GET /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    ))
    .into_owned();
    let open: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("noc_svc_reactor_connections "))
        .and_then(|v| v.trim().parse().ok())
        .expect("reactor gauge present");
    assert!(open >= 256, "gauge reports {open}, herd is 256");
    // Every idle socket is still a usable keep-alive connection.
    for (i, mut stream) in idle.into_iter().enumerate() {
        if i % 64 != 0 {
            continue; // probe a sample; dropping the rest closes them
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("idle socket writes");
        let response = read_one_response(&mut stream, &mut Vec::new());
        assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 200"));
    }
    server.shutdown();
}
