//! Property tests for the cluster failure detector: the state machine
//! is a pure function of the scripted event sequence (deterministic —
//! the reason it is testable at all), transitions respect the
//! consecutive-failure threshold, success always restores Up, and the
//! probe backoff stays within its configured bounds.

use noc_svc::cluster::{Decision, DetectorConfig, PeerDetector, PeerState};
use proptest::prelude::*;

/// One scripted detector event.
#[derive(Debug, Clone)]
enum Event {
    /// A peer operation succeeded.
    Success,
    /// A peer operation failed.
    Failure,
    /// The replicator/fill path asked whether to use the peer.
    Decide,
}

/// Everything observable about a detector after one event — two
/// replays of the same script must produce identical traces.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    state: PeerState,
    consecutive_failures: u32,
    probe_in_ms: u64,
    decision: Option<Decision>,
}

fn event_strategy() -> impl Strategy<Value = (Event, u64)> {
    ((0u8..5), (0u64..1500)).prop_map(|(kind, dt)| {
        // Failures and decides twice as likely as successes, so
        // scripts actually reach Down and exercise the probe window.
        let event = match kind {
            0 | 1 => Event::Failure,
            2 => Event::Success,
            _ => Event::Decide,
        };
        (event, dt)
    })
}

fn config_strategy() -> impl Strategy<Value = DetectorConfig> {
    (1u32..6, 1u64..500, 1u64..4).prop_map(|(threshold, base, factor)| DetectorConfig {
        failure_threshold: threshold,
        probe_base_ms: base,
        probe_max_ms: base * (1 << factor),
    })
}

/// Replays a script against a fresh detector, recording an
/// observation after every event.
fn replay(cfg: &DetectorConfig, script: &[(Event, u64)]) -> Vec<Observation> {
    let mut detector = PeerDetector::new();
    let mut now_ms = 0u64;
    let mut trace = Vec::with_capacity(script.len());
    for (event, dt) in script {
        now_ms += dt;
        let decision = match event {
            Event::Success => {
                detector.on_success();
                None
            }
            Event::Failure => {
                detector.on_failure(cfg, now_ms);
                None
            }
            Event::Decide => Some(detector.decide(now_ms)),
        };
        trace.push(Observation {
            state: detector.state(),
            consecutive_failures: detector.consecutive_failures(),
            probe_in_ms: detector.probe_in_ms(now_ms),
            decision,
        });
    }
    trace
}

proptest! {
    /// Same script, same trace: no hidden clock, randomness or
    /// ordering dependence anywhere in the detector.
    #[test]
    fn scripted_outcome_sequences_replay_to_identical_traces(
        cfg in config_strategy(),
        script in proptest::collection::vec(event_strategy(), 1..200),
    ) {
        prop_assert_eq!(replay(&cfg, &script), replay(&cfg, &script));
    }

    /// The transition invariants hold along any script:
    /// - Down is only reached after `failure_threshold` *consecutive*
    ///   failures, never sooner;
    /// - a success restores Up with a clean failure count and no
    ///   pending probe, from any state;
    /// - the probe delay never exceeds the configured maximum;
    /// - Up and Suspect peers are always usable, and a Down peer is
    ///   never used outright (only probed or skipped).
    #[test]
    fn transitions_respect_threshold_success_and_backoff_bounds(
        cfg in config_strategy(),
        script in proptest::collection::vec(event_strategy(), 1..200),
    ) {
        let mut detector = PeerDetector::new();
        let mut now_ms = 0u64;
        let mut consecutive = 0u32;
        for (event, dt) in &script {
            now_ms += *dt;
            match event {
                Event::Success => {
                    detector.on_success();
                    consecutive = 0;
                    prop_assert_eq!(detector.state(), PeerState::Up);
                    prop_assert_eq!(detector.consecutive_failures(), 0);
                    prop_assert_eq!(detector.probe_in_ms(now_ms), 0);
                }
                Event::Failure => {
                    detector.on_failure(&cfg, now_ms);
                    consecutive = consecutive.saturating_add(1);
                    if consecutive >= cfg.failure_threshold {
                        prop_assert_eq!(detector.state(), PeerState::Down);
                    } else {
                        prop_assert_eq!(detector.state(), PeerState::Suspect);
                    }
                }
                Event::Decide => {
                    let decision = detector.decide(now_ms);
                    match detector.state() {
                        PeerState::Up | PeerState::Suspect => {
                            prop_assert_eq!(decision, Decision::Use);
                        }
                        PeerState::Down => {
                            prop_assert_ne!(decision, Decision::Use);
                        }
                    }
                }
            }
            prop_assert!(
                detector.probe_in_ms(now_ms) <= cfg.probe_max_ms,
                "probe delay {} exceeds the configured cap {}",
                detector.probe_in_ms(now_ms),
                cfg.probe_max_ms
            );
        }
    }

    /// A Down peer's probes are rationed: immediately after a probe is
    /// granted, a second decide at the same instant must not be
    /// granted another one (the re-armed window gates stampedes).
    #[test]
    fn a_granted_probe_rearms_the_window(
        cfg in config_strategy(),
        settle in 0u64..10_000,
    ) {
        let mut detector = PeerDetector::new();
        for _ in 0..cfg.failure_threshold {
            detector.on_failure(&cfg, 0);
        }
        prop_assert_eq!(detector.state(), PeerState::Down);
        // Wait long enough that a probe is certainly due.
        let now = cfg.probe_max_ms + settle;
        prop_assert_eq!(detector.decide(now), Decision::Probe);
        prop_assert_eq!(detector.decide(now), Decision::Skip);
    }
}
