//! Property-based corruption drills for the persistent schedule store.
//!
//! The contract under test is the store's recovery promise: whatever a
//! crash, a torn write or silent media corruption leaves on disk,
//! `Store::open` never panics, recovers the longest valid record
//! prefix of the active segment, serves only records whose checksum
//! and key still verify, and accepts new writes that round-trip
//! byte-identically afterwards.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use noc_svc::cache::JobOutput;
use noc_svc::store::{Store, StoreConfig, StoreStats};

/// A fresh per-case store directory under the OS temp dir.
fn fresh_dir(tag: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("noc-store-prop-{}-{tag:016x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> Store {
    Store::open(StoreConfig::new(dir), Arc::new(StoreStats::default())).expect("store opens")
}

/// Fills a store with `n` deterministic records and returns the
/// (key, body) pairs written.
fn fill(store: &Store, n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let key = format!("{{\"graph\":\"g{i}\",\"scheduler\":\"edf\"}}");
            let body = format!("{{\"schedule\":[{i},{i},{i}],\"makespan\":{}}}", i * 7 + 1);
            assert!(store.put(&key, &JobOutput::new(Arc::new(body.clone()))));
            (key, body)
        })
        .collect()
}

/// The single active segment's log file.
fn active_log(dir: &Path) -> PathBuf {
    dir.join("seg-00000001.log")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-byte corruption anywhere in the log: open never
    /// panics, every record it still serves is byte-identical to what
    /// was written, and a fresh write afterwards round-trips.
    #[test]
    fn open_survives_random_bit_flips(
        seed in 0u64..u64::MAX,
        records in 1usize..12,
        flips in prop::collection::vec((0usize..4096, 0u8..8), 1..6),
    ) {
        let dir = fresh_dir(seed);
        let written = {
            let store = open(&dir);
            fill(&store, records)
        };
        // Drop any stale packed index so the corrupted log itself is
        // what recovery reads.
        let _ = std::fs::remove_file(dir.join("seg-00000001.idx"));
        let log = active_log(&dir);
        let mut bytes = std::fs::read(&log).expect("log readable");
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        std::fs::write(&log, &bytes).expect("log writable");

        let store = open(&dir);
        for (key, body) in &written {
            if let Some(output) = store.get(key) {
                prop_assert_eq!(
                    output.body.as_str(), body.as_str(),
                    "a served record must be byte-identical despite corruption"
                );
            }
        }
        // The store keeps working: a follow-up write round-trips.
        let fresh = JobOutput::new(Arc::new("{\"fresh\":true}".to_owned()));
        if store.put("fresh-key", &fresh) {
            let got = store.get("fresh-key").expect("fresh write readable");
            prop_assert_eq!(got.body.as_str(), "{\"fresh\":true}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Random truncation (a torn tail): open recovers the longest
    /// valid prefix — every record fully before the cut survives
    /// byte-identically — and new writes append cleanly.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        seed in 0u64..u64::MAX,
        records in 1usize..12,
        cut in 0.0f64..1.0,
    ) {
        let dir = fresh_dir(seed ^ 0x1);
        let written = {
            let store = open(&dir);
            fill(&store, records)
        };
        let _ = std::fs::remove_file(dir.join("seg-00000001.idx"));
        let log = active_log(&dir);
        let len = std::fs::metadata(&log).expect("log exists").len();
        let keep = ((len as f64) * cut) as u64;
        let file = std::fs::OpenOptions::new().write(true).open(&log).expect("log opens");
        file.set_len(keep).expect("truncates");
        drop(file);

        // Frames are sequential, so the number of surviving records is
        // the count of whole frames within `keep` bytes.
        let store = open(&dir);
        let mut survivors = 0usize;
        for (key, body) in &written {
            if let Some(output) = store.get(key) {
                prop_assert_eq!(output.body.as_str(), body.as_str());
                survivors += 1;
            }
        }
        // Prefix property: if record i survived, records 0..i did too.
        let served: Vec<bool> = written.iter().map(|(k, _)| store.contains(k)).collect();
        if let Some(first_gap) = served.iter().position(|s| !s) {
            prop_assert!(
                served[first_gap..].iter().all(|s| !s),
                "recovery must keep a prefix, not a subset: {served:?}"
            );
        }
        prop_assert_eq!(survivors, served.iter().filter(|s| **s).count());

        let fresh = JobOutput::new(Arc::new("{\"after\":\"truncate\"}".to_owned()));
        prop_assert!(store.put("post-truncate", &fresh), "store must accept writes after recovery");
        let got = store.get("post-truncate").expect("post-recovery write readable");
        prop_assert_eq!(got.body.as_str(), "{\"after\":\"truncate\"}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Duplicate and partial records appended past a valid log (what a
    /// crashed writer that retried might leave): open never panics and
    /// the original records still serve their exact bytes.
    #[test]
    fn duplicate_and_partial_tails_are_harmless(
        seed in 0u64..u64::MAX,
        records in 1usize..8,
        partial in 1usize..64,
        junk in prop::collection::vec(0u8..=255, 0..128),
    ) {
        let dir = fresh_dir(seed ^ 0x2);
        let written = {
            let store = open(&dir);
            fill(&store, records)
        };
        let _ = std::fs::remove_file(dir.join("seg-00000001.idx"));
        let log = active_log(&dir);
        let bytes = std::fs::read(&log).expect("log readable");
        let mut tail = bytes.clone();
        // A duplicate of the first record's frame, then a partial copy
        // of it, then arbitrary junk.
        let first_frame_len = bytes.len() / records.max(1);
        tail.extend_from_slice(&bytes[..first_frame_len.max(1)]);
        tail.extend_from_slice(&bytes[..partial.min(bytes.len())]);
        tail.extend_from_slice(&junk);
        std::fs::write(&log, &tail).expect("log writable");

        let store = open(&dir);
        for (key, body) in &written {
            if let Some(output) = store.get(key) {
                prop_assert_eq!(output.body.as_str(), body.as_str());
            }
        }
        // The first record sits wholly before any damage: it must serve.
        let (key0, body0) = &written[0];
        let got = store.get(key0).expect("first record must survive an appended tail");
        prop_assert_eq!(got.body.as_str(), body0.as_str());

        let fresh = JobOutput::new(Arc::new("{\"after\":\"tail\"}".to_owned()));
        prop_assert!(store.put("post-tail", &fresh));
        let got = store.get("post-tail").expect("post-tail write readable");
        prop_assert_eq!(got.body.as_str(), "{\"after\":\"tail\"}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
