//! Property tests for the consistent-hash ring: ownership must be a
//! pure function of the membership *set* (never list order), stay
//! balanced, and move as few keys as mathematically necessary when
//! membership changes — the properties the cluster's peer cache-fill
//! and replication placement lean on.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use noc_svc::cluster::Ring;
use noc_svc::hash::content_hash;

fn node_names(count: usize, salt: u64) -> Vec<String> {
    (0..count)
        .map(|i| format!("10.{salt}.0.{i}:8533"))
        .collect()
}

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| content_hash(&format!("key-{i}"))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ownership_ignores_peer_order_and_duplicates(
        count in 1usize..6,
        salt in 0u64..50,
        rotation in 0usize..6,
    ) {
        let nodes = node_names(count, salt);
        let ring = Ring::new(nodes.clone());
        let mut shuffled = nodes.clone();
        shuffled.rotate_left(rotation % count);
        shuffled.push(shuffled[0].clone()); // a duplicate entry
        let reordered = Ring::new(shuffled);
        for key in keys(64) {
            prop_assert_eq!(ring.owner(&key), reordered.owner(&key));
        }
    }

    #[test]
    fn removing_a_node_remaps_only_its_own_keys(
        count in 2usize..6,
        salt in 0u64..50,
        victim in 0usize..6,
    ) {
        let nodes = node_names(count, salt);
        let victim = victim % count;
        let ring = Ring::new(nodes.clone());
        let mut rest = nodes.clone();
        rest.remove(victim);
        let shrunk = Ring::new(rest);
        for key in keys(256) {
            let before = ring.owner(&key);
            if before != nodes[victim] {
                prop_assert_eq!(before, shrunk.owner(&key),
                    "keys not owned by the removed node must not move");
            }
        }
    }

    #[test]
    fn adding_a_node_steals_keys_only_for_itself(
        count in 1usize..5,
        salt in 0u64..50,
    ) {
        let nodes = node_names(count, salt);
        let ring = Ring::new(nodes.clone());
        let newcomer = format!("10.{salt}.1.99:8533");
        let mut grown_nodes = nodes;
        grown_nodes.push(newcomer.clone());
        let grown = Ring::new(grown_nodes);
        for key in keys(256) {
            let after = grown.owner(&key);
            if after != newcomer {
                prop_assert_eq!(ring.owner(&key), after,
                    "keys the newcomer did not claim must not move");
            }
        }
    }

    #[test]
    fn owner_chain_is_distinct_and_led_by_the_owner(
        count in 1usize..6,
        salt in 0u64..50,
        n in 1usize..4,
    ) {
        let ring = Ring::new(node_names(count, salt));
        for key in keys(32) {
            let chain = ring.owner_chain(&key, n);
            prop_assert_eq!(chain.len(), n.min(count));
            prop_assert_eq!(chain[0], ring.owner(&key));
            let distinct: HashSet<&&str> = chain.iter().collect();
            prop_assert_eq!(distinct.len(), chain.len(), "chain nodes must be distinct");
        }
    }
}

/// Balance is checked exhaustively over a grid of realistic
/// memberships rather than property-sampled: a balance bound is a
/// statistical statement about the vnode hash, and sampling random
/// exotic names would make the test's verdict depend on the seed.
#[test]
fn key_spread_stays_within_2x_of_ideal_across_memberships() {
    let keys = keys(2048);
    for count in 2usize..=5 {
        for salt in 0u64..12 {
            let nodes = node_names(count, salt);
            let ring = Ring::new(nodes.clone());
            let mut loads: HashMap<&str, usize> = HashMap::new();
            for key in &keys {
                *loads.entry(ring.owner(key)).or_insert(0) += 1;
            }
            let ideal = keys.len() / count;
            for node in &nodes {
                let load = loads.get(node.as_str()).copied().unwrap_or(0);
                assert!(
                    load <= ideal * 2,
                    "{count} nodes (salt {salt}): {node} owns {load} of {} keys (ideal {ideal})",
                    keys.len()
                );
            }
        }
    }
}
