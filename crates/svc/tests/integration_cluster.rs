//! Three in-process nodes exercising the cluster tier end to end:
//! cross-node byte determinism with zero recomputation, replication to
//! the owner chain, owner death leaving survivors able to serve the
//! exact bytes from replicated records, and a network-fault partition
//! matrix (one-way partition, peer flap, slow peer) run through the
//! in-process [`ChaosProxy`].

use std::collections::HashMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use noc_svc::client::Client;
use noc_svc::cluster::Ring;
use noc_svc::net::chaos::ChaosProxy;
use noc_svc::{Server, ServiceConfig};

/// Reserves `n` distinct loopback ports by binding ephemeral
/// listeners, then releases them for the servers to claim. The gap is
/// racy in principle; in practice the kernel does not reissue a
/// just-released ephemeral port to another process this quickly.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("binds"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn start_node(addr: &str, peers: &[String]) -> Server {
    Server::start(ServiceConfig {
        addr: addr.to_owned(),
        http_workers: 2,
        sched_workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        threads: 1,
        peers: peers.to_vec(),
        self_addr: Some(addr.to_owned()),
        ..ServiceConfig::default()
    })
    .expect("node starts")
}

fn client_for(addr: &str) -> Client {
    Client::connect_retry(addr.parse().expect("socket addr"), Duration::from_secs(5))
        .expect("connects")
}

fn graph_json(seed: u64, tasks: usize) -> String {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform");
    let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed);
    cfg.task_count = tasks;
    let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generates");
    serde_json::to_string(&graph).expect("serializes")
}

fn schedule_body(graph: &str, scheduler: &str) -> String {
    format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#)
}

/// Scrapes one counter/gauge value from a node's `/metrics`.
fn scrape(client: &mut Client, metric: &str) -> u64 {
    let resp = client.get("/metrics").expect("scrapes");
    assert_eq!(resp.status, 200);
    resp.body
        .lines()
        .find_map(|l| l.strip_prefix(metric).and_then(|v| v.trim().parse().ok()))
        .unwrap_or_else(|| panic!("{metric} missing from /metrics"))
}

/// Waits until `addr` answers `/v1/internal/lookup/<id>` with 200 —
/// i.e. replication of `id` to that node has settled.
fn await_record(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut client = client_for(addr);
    loop {
        match client.get(&format!("/v1/internal/lookup/{id}")) {
            Ok(resp) if resp.status == 200 => return,
            _ if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("record {id} never replicated to {addr}: last answer {other:?}"),
        }
    }
}

#[test]
fn every_node_answers_identical_bytes_with_zero_recompute() {
    let peers = free_addrs(3);
    let servers: Vec<Server> = peers.iter().map(|a| start_node(a, &peers)).collect();
    let ring = Ring::new(peers.clone());

    // Four distinct problems, all filled through node 0.
    let bodies: Vec<String> = [(41u64, "edf"), (41, "dls"), (42, "edf"), (42, "dls")]
        .iter()
        .map(|(seed, scheduler)| schedule_body(&graph_json(*seed, 10), scheduler))
        .collect();
    let mut via_node0 = client_for(&peers[0]);
    let mut reference: Vec<(String, String)> = Vec::new(); // (id, body)
    for body in &bodies {
        let resp = via_node0.post("/v1/schedule", body).expect("fills");
        assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
        let id = resp
            .header("x-request-hash")
            .expect("hash header")
            .to_owned();
        reference.push((id, resp.body));
    }

    // Replication must land the record at the owner and successor.
    for (id, _) in &reference {
        for node in ring.owner_chain(id, 2) {
            await_record(node, id);
        }
    }

    // Every other node answers every problem with the exact bytes —
    // from its replica ("hit") or a peer fill ("peer"), never a
    // recompute.
    for addr in &peers[1..] {
        let mut client = client_for(addr);
        for (body, (id, expected)) in bodies.iter().zip(&reference) {
            let resp = client.post("/v1/schedule", body).expect("answers");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.header("x-request-hash"),
                Some(id.as_str()),
                "nodes must agree on the request identity"
            );
            assert_eq!(
                &resp.body, expected,
                "node {addr} answered different bytes for {id}"
            );
            let label = resp.header("x-cache").expect("cache label").to_owned();
            assert!(
                label == "hit" || label == "peer",
                "node {addr} answered {id} via `{label}` — that is a recompute"
            );
        }
    }

    // The cluster as a whole computed each problem exactly once.
    let executed: u64 = peers
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    assert_eq!(
        executed,
        bodies.len() as u64,
        "cluster must compute each distinct problem exactly once"
    );
    // And the peer-fill path was genuinely exercised.
    let fills: u64 = peers
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_cluster_peer_fill_total "))
        .sum();
    let received: u64 = peers
        .iter()
        .map(|a| {
            scrape(
                &mut client_for(a),
                "noc_svc_cluster_replication_received_total ",
            )
        })
        .sum();
    assert!(
        fills + received > 0,
        "cross-node answers must come from fills or replicas"
    );
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn owner_death_leaves_survivors_serving_replicated_bytes() {
    let peers = free_addrs(3);
    let mut servers: HashMap<String, Server> = peers
        .iter()
        .map(|a| (a.clone(), start_node(a, &peers)))
        .collect();
    let ring = Ring::new(peers.clone());

    let body = schedule_body(&graph_json(77, 12), "edf");
    let mut via_node0 = client_for(&peers[0]);
    let resp = via_node0.post("/v1/schedule", &body).expect("fills");
    assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
    let id = resp
        .header("x-request-hash")
        .expect("hash header")
        .to_owned();
    let expected = resp.body;
    drop(via_node0);

    // Wait for the record to reach the full owner chain, then kill
    // the owner.
    let owner = ring.owner(&id).to_owned();
    for node in ring.owner_chain(&id, 2) {
        await_record(node, &id);
    }
    let survivors: Vec<String> = peers.iter().filter(|a| **a != owner).cloned().collect();
    let executed_before: u64 = survivors
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    servers.remove(&owner).expect("owner is a node").shutdown();

    // Every survivor still answers the exact bytes without computing:
    // the successor holds the replica, everyone else peer-fills from
    // it after the dead owner fails fast.
    for addr in &survivors {
        let mut client = client_for(addr);
        let resp = client
            .post("/v1/schedule", &body)
            .expect("survivor answers");
        assert_eq!(resp.status, 200, "survivor {addr} failed: {}", resp.body);
        assert_eq!(
            resp.body, expected,
            "survivor {addr} answered different bytes after owner death"
        );
        let label = resp.header("x-cache").expect("cache label").to_owned();
        assert!(
            label == "hit" || label == "peer",
            "survivor {addr} answered via `{label}` — that is a recompute"
        );
    }
    let executed_after: u64 = survivors
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    assert_eq!(
        executed_before, executed_after,
        "owner death must not force a recompute anywhere"
    );
    for server in servers.into_values() {
        server.shutdown();
    }
}

/// A cluster whose inter-node traffic runs through [`ChaosProxy`]s:
/// each node's ring identity is its proxy's address, its listener is a
/// hidden direct address, and test clients dial the direct addresses
/// so faults hit only peer-to-peer traffic.
struct ProxiedCluster {
    /// Ring identities — the proxy addresses, as the peers dial them.
    identities: Vec<String>,
    /// The nodes' real listener addresses (bypass the proxies).
    direct: Vec<String>,
    proxies: Vec<ChaosProxy>,
    servers: Vec<Server>,
    ring: Ring,
}

impl ProxiedCluster {
    /// `anti_entropy` of `None` disables the sweep, isolating the
    /// retry-queue path.
    fn start(n: usize, peer_timeout: Duration, anti_entropy: Option<Duration>) -> ProxiedCluster {
        let identities = free_addrs(n);
        let direct = free_addrs(n);
        let proxies: Vec<ChaosProxy> = identities
            .iter()
            .zip(&direct)
            .map(|(public, real)| {
                ChaosProxy::start(public, real.parse().expect("addr")).expect("proxy starts")
            })
            .collect();
        let servers: Vec<Server> = direct
            .iter()
            .zip(&identities)
            .map(|(real, identity)| {
                Server::start(ServiceConfig {
                    addr: real.clone(),
                    http_workers: 2,
                    sched_workers: 2,
                    queue_capacity: 8,
                    cache_capacity: 64,
                    threads: 1,
                    peers: identities.clone(),
                    self_addr: Some(identity.clone()),
                    peer_timeout,
                    probe_interval: Duration::from_millis(50),
                    anti_entropy_interval: anti_entropy.unwrap_or(Duration::ZERO),
                    ..ServiceConfig::default()
                })
                .expect("node starts")
            })
            .collect();
        let ring = Ring::new(identities.clone());
        ProxiedCluster {
            identities,
            direct,
            proxies,
            servers,
            ring,
        }
    }

    /// Fills `body` through node `via` (direct), returning the record
    /// id and the reference bytes.
    fn fill(&self, via: usize, body: &str) -> (String, String) {
        let mut client = client_for(&self.direct[via]);
        let resp = client.post("/v1/schedule", body).expect("fills");
        assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
        let id = resp
            .header("x-request-hash")
            .expect("hash header")
            .to_owned();
        (id, resp.body)
    }

    fn shutdown(mut self) {
        for server in self.servers.drain(..) {
            server.shutdown();
        }
        for mut proxy in self.proxies.drain(..) {
            proxy.shutdown();
        }
    }
}

/// Waits until the summed replication retry backlog across all nodes
/// reaches zero.
fn await_lag_drained(direct: &[String]) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let lag: u64 = direct
            .iter()
            .map(|a| scrape(&mut client_for(a), "noc_svc_cluster_replication_lag "))
            .sum();
        if lag == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replication lag stuck at {lag} after heal"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn one_way_partition_heals_into_full_replication_without_recompute() {
    let cluster = ProxiedCluster::start(
        3,
        Duration::from_millis(500),
        Some(Duration::from_millis(300)),
    );

    // One-way partition: node 0's *inbound* proxy denies everything,
    // but node 0 can still dial out to its peers' proxies.
    cluster.proxies[0].policy().set_deny(true);

    // Fill through a survivor while the partition is up. Every fill
    // must answer 200 — a dead peer can never fail a request.
    let bodies: Vec<String> = [(201u64, "edf"), (201, "dls"), (202, "edf"), (203, "dls")]
        .iter()
        .map(|(seed, scheduler)| schedule_body(&graph_json(*seed, 10), scheduler))
        .collect();
    let mut reference: Vec<(String, String)> = Vec::new();
    for body in &bodies {
        reference.push(cluster.fill(1, body));
    }

    // The other survivor answers everything byte-identically while
    // the partition is still up — zero wrong answers mid-fault.
    let mut via_node2 = client_for(&cluster.direct[2]);
    for (body, (id, expected)) in bodies.iter().zip(&reference) {
        let resp = via_node2.post("/v1/schedule", body).expect("answers");
        assert_eq!(resp.status, 200, "survivor failed mid-partition");
        assert_eq!(
            &resp.body, expected,
            "survivor diverged on {id} mid-partition"
        );
    }

    // Heal. Anti-entropy (plus the retry queues) must land every
    // record on its full owner chain with no operator action.
    cluster.proxies[0].policy().set_deny(false);
    for (id, _) in &reference {
        for node in cluster.ring.owner_chain(id, 2) {
            await_record(node, id);
        }
    }
    await_lag_drained(&cluster.direct);

    // The previously partitioned node now answers everything without
    // recomputing: its replica ("hit") or a peer fill ("peer").
    let mut via_node0 = client_for(&cluster.direct[0]);
    for (body, (id, expected)) in bodies.iter().zip(&reference) {
        let resp = via_node0.post("/v1/schedule", body).expect("answers");
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body, expected, "node 0 diverged on {id} after heal");
        let label = resp.header("x-cache").expect("cache label").to_owned();
        assert!(
            label == "hit" || label == "peer",
            "node 0 answered {id} via `{label}` after heal — that is a recompute"
        );
    }
    cluster.shutdown();
}

#[test]
fn peer_flap_during_replication_drains_the_retry_queue_after_recovery() {
    // Anti-entropy off: convergence here must come from the retry
    // queue plus the failure detector's probe path alone.
    let cluster = ProxiedCluster::start(3, Duration::from_millis(500), None);

    // Flap node 0 down before any traffic.
    cluster.proxies[0].policy().set_deny(true);

    // Fill through node 1 until at least one record's owner chain
    // includes node 0 — those deliveries must queue, not vanish.
    let mut reference: Vec<(String, String, String)> = Vec::new(); // (id, body, bytes)
    let mut targets_node0 = false;
    for seed in 0..24u64 {
        let body = schedule_body(&graph_json(300 + seed, 10), "edf");
        let (id, bytes) = cluster.fill(1, &body);
        let chain = cluster.ring.owner_chain(&id, 2);
        targets_node0 |= chain.contains(&cluster.identities[0].as_str());
        reference.push((id, body, bytes));
        if targets_node0 && reference.len() >= 4 {
            break;
        }
    }
    assert!(
        targets_node0,
        "24 problems all missed node 0's ring ranges — rings this lopsided are a bug"
    );

    // The failed deliveries are counted and queued on node 1.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let failures = scrape(
            &mut client_for(&cluster.direct[1]),
            "noc_svc_cluster_replication_delivery_failures_total ",
        );
        if failures > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "deliveries to the flapped peer never failed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Heal the flap: a detector probe lets the queue drain, every
    // queued record lands, and the lag returns to zero.
    cluster.proxies[0].policy().set_deny(false);
    for (id, _, _) in &reference {
        for node in cluster.ring.owner_chain(id, 2) {
            await_record(node, id);
        }
    }
    await_lag_drained(&cluster.direct);
    let recoveries: u64 = cluster
        .direct
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_cluster_peer_recoveries_total "))
        .sum();
    assert!(
        recoveries > 0,
        "the detector must record the peer coming back Up"
    );

    // And the records the flapped node now holds serve the exact
    // reference bytes.
    let mut via_node0 = client_for(&cluster.direct[0]);
    for (id, body, expected) in &reference {
        let resp = via_node0.post("/v1/schedule", body).expect("answers");
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body, expected, "node 0 diverged on {id} after flap");
    }
    cluster.shutdown();
}

#[test]
fn slow_peer_under_the_timeout_serves_while_over_it_falls_to_the_successor() {
    // 1 s peer timeout per the cluster default; the proxy injects
    // 900 ms — slow but legal — then 2.5 s — over the timeout.
    let cluster = ProxiedCluster::start(3, Duration::from_secs(1), None);

    // Find two records whose owner chain *excludes* node 2, so a read
    // via node 2 must peer-fill through the (about to be slowed)
    // proxies of nodes 0 and 1.
    let mut remote: Vec<(String, String, String)> = Vec::new(); // (id, body, bytes)
    for seed in 0..24u64 {
        let body = schedule_body(&graph_json(400 + seed, 10), "edf");
        let (id, bytes) = cluster.fill(0, &body);
        let chain = cluster.ring.owner_chain(&id, 2);
        if !chain.contains(&cluster.identities[2].as_str()) {
            remote.push((id, body, bytes));
            if remote.len() == 2 {
                break;
            }
        }
    }
    assert_eq!(remote.len(), 2, "no records landed off node 2's ranges");
    for (id, _, _) in &remote {
        for node in cluster.ring.owner_chain(id, 2) {
            await_record(node, id);
        }
    }

    // 900 ms of injected latency on both owners: the peer fill is slow
    // but inside the 1 s budget, so it must still be served as a fill,
    // with the peers still counted Up (no failures, no fallback).
    cluster.proxies[0]
        .policy()
        .set_latency(Duration::from_millis(900));
    cluster.proxies[1]
        .policy()
        .set_latency(Duration::from_millis(900));
    let mut via_node2 = client_for(&cluster.direct[2]);
    let (id, body, expected) = &remote[0];
    let sent = Instant::now();
    let resp = via_node2.post("/v1/schedule", body).expect("answers");
    let elapsed = sent.elapsed();
    assert_eq!(resp.status, 200);
    assert_eq!(&resp.body, expected, "slow-peer fill diverged on {id}");
    assert_eq!(
        resp.header("x-cache"),
        Some("peer"),
        "a record off node 2's ranges must arrive by peer fill"
    );
    assert!(
        elapsed >= Duration::from_millis(700),
        "the injected latency never applied (took {elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(4),
        "a slow-but-legal peer must not cascade into timeouts (took {elapsed:?})"
    );

    // 2.5 s of injected latency: over the timeout, the owner fill
    // fails, and the answer still arrives — recomputed or from the
    // successor — byte-identical, bounded by timeout + compute.
    cluster.proxies[0]
        .policy()
        .set_latency(Duration::from_millis(2500));
    cluster.proxies[1]
        .policy()
        .set_latency(Duration::from_millis(2500));
    let (id, body, expected) = &remote[1];
    let resp = via_node2.post("/v1/schedule", body).expect("answers");
    assert_eq!(resp.status, 200);
    assert_eq!(&resp.body, expected, "over-timeout read diverged on {id}");
    let errors = scrape(
        &mut client_for(&cluster.direct[2]),
        "noc_svc_cluster_peer_fill_errors_total ",
    );
    assert!(
        errors > 0,
        "an over-timeout peer must be counted as a fill failure"
    );
    cluster.shutdown();
}

/// A peer-filled request must be reconstructable as one connected
/// span tree across the cluster: the target's root and `peer_fill`
/// hop plus the owner's `/v1/internal/lookup` serving span, all under
/// the trace id the target's `X-Noc-Trace` response header names.
#[test]
fn peer_fill_reconstructs_one_cross_node_span_tree() {
    let peers = free_addrs(3);
    let servers: Vec<Server> = peers.iter().map(|a| start_node(a, &peers)).collect();
    let ring = Ring::new(peers.clone());

    // Hunt (deterministically — ids are content hashes) for a problem
    // whose owner chain contains the filling node 0, so the one node
    // outside the chain holds neither a replica nor a cache entry and
    // must answer via a peer fill.
    let mut via_node0 = client_for(&peers[0]);
    let mut chosen: Option<(String, String, String)> = None; // (id, body, target)
    for seed in 60..80u64 {
        let body = schedule_body(&graph_json(seed, 10), "edf");
        let resp = via_node0.post("/v1/schedule", &body).expect("fills");
        assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
        let id = resp.header("x-request-hash").expect("hash").to_owned();
        let chain = ring.owner_chain(&id, 2);
        if chain.contains(&peers[0].as_str()) {
            let target = peers
                .iter()
                .find(|p| !chain.contains(&p.as_str()))
                .expect("3 nodes, chain of 2")
                .clone();
            chosen = Some((id, body, target));
            break;
        }
    }
    let (id, body, target) = chosen.expect("some seed lands its owner chain on node 0");
    for node in ring.owner_chain(&id, 2) {
        await_record(node, &id);
    }

    // The cross-node request: answered via peer fill, and stamped
    // with the trace id the whole tree hangs under.
    let mut via_target = client_for(&target);
    let resp = via_target.post("/v1/schedule", &body).expect("answers");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("x-cache"),
        Some("peer"),
        "the off-chain node must answer via peer fill"
    );
    let trace_id = resp
        .header("x-noc-trace")
        .expect("traced response names its trace")
        .to_owned();

    // Scrape every node's flight recorder and pool the spans.
    let mut spans: Vec<noc_svc::obs::SpanWire> = Vec::new();
    let mut contributing = 0usize;
    for addr in &peers {
        let mut client = client_for(addr);
        let resp = client
            .get(&format!("/v1/internal/trace/{trace_id}"))
            .expect("scrapes recorder");
        if resp.status != 200 {
            continue;
        }
        let dump: noc_svc::obs::TraceDump =
            serde_json::from_str(&resp.body).expect("trace dump parses");
        assert!(!dump.spans.is_empty());
        contributing += 1;
        spans.extend(dump.spans);
    }
    assert!(
        contributing >= 2,
        "a peer-filled request must leave spans on at least two nodes"
    );

    // One connected tree: exactly one root, every parent resolves.
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.span).collect();
    let roots: Vec<&noc_svc::obs::SpanWire> = spans.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "expected a single root span, got {roots:?}");
    assert_eq!(roots[0].stage, "/v1/schedule");
    for span in &spans {
        assert!(
            span.parent_span == 0 || known.contains(&span.parent_span),
            "span {:x} on {} references unknown parent {:x}",
            span.span,
            span.node,
            span.parent_span
        );
        assert_eq!(span.trace, trace_id);
    }
    let stages: Vec<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.contains(&"peer_fill"), "stages: {stages:?}");
    assert!(
        stages.contains(&"/v1/internal/lookup"),
        "the owner's serving span must join the tree: {stages:?}"
    );
    for server in servers {
        server.shutdown();
    }
}

/// The flight recorder must never change response bytes: a server
/// with the recorder at 4096 entries and one with it disabled answer
/// identical bodies and cache labels for the same request sequence —
/// the only difference is the `X-Noc-Trace` header itself.
#[test]
fn recorder_toggle_never_changes_response_bytes() {
    let start = |entries: usize| {
        Server::start(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            http_workers: 2,
            sched_workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            threads: 1,
            flight_recorder_entries: entries,
            ..ServiceConfig::default()
        })
        .expect("starts")
    };
    let traced = start(4096);
    let plain = start(0);
    let mut traced_client = client_for(&traced.addr().to_string());
    let mut plain_client = client_for(&plain.addr().to_string());

    let bodies: Vec<String> = [(51u64, "edf"), (51, "dls"), (52, "edf")]
        .iter()
        .map(|(seed, scheduler)| schedule_body(&graph_json(*seed, 10), scheduler))
        .collect();
    // Two passes: cold computes, then cache hits — both must match.
    for pass in 0..2 {
        for (i, body) in bodies.iter().enumerate() {
            let t = traced_client.post("/v1/schedule", body).expect("traced");
            let p = plain_client.post("/v1/schedule", body).expect("plain");
            assert_eq!(t.status, p.status, "pass {pass} body {i}");
            assert_eq!(
                t.header("x-cache"),
                p.header("x-cache"),
                "pass {pass} body {i}"
            );
            assert_eq!(
                t.body, p.body,
                "recorder toggle changed response bytes (pass {pass}, body {i})"
            );
            assert!(
                t.header("x-noc-trace").is_some(),
                "recorder-on answers carry their trace id"
            );
            assert!(
                p.header("x-noc-trace").is_none(),
                "recorder-off answers must not pay for trace minting"
            );
        }
    }
    traced.shutdown();
    plain.shutdown();
}
